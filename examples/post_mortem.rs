//! Post-mortem analysis of an ftsh run (§4: "the frequency of each
//! failure branch, and so forth"), demonstrated on a replicated fetch
//! with one dead mirror, plus ftsh functions from the cookbook.
//!
//! ```text
//! cargo run --example post_mortem
//! ```

use ethernet_grid::ftsh::{parse, SimClock, Vm, VmDriver};

fn main() {
    // A function wrapping the paper's probe-then-fetch idiom; the
    // mirror list is tried in order, with bounded patience per mirror.
    let src = "\
function fetch_one
  try for 5 seconds
    wget http://${1}/flag
  end
  try for 60 seconds
    wget http://${1}/data
  end
end

try for 10 minutes
  forany mirror in dead-mirror flaky-mirror good-mirror
    fetch_one ${mirror}
  end
end
";
    let script = parse(src).expect("script parses");
    let mut driver = VmDriver::new(Vm::with_seed(&script, 42), SimClock::new());

    let mut flaky_left = 2;
    let out = driver.run_to_completion(|spec| {
        let url = &spec.argv[1];
        if url.contains("dead-mirror") {
            Err("connection refused".into())
        } else if url.contains("flaky-mirror") && flaky_left > 0 {
            flaky_left -= 1;
            Err("reset by peer".into())
        } else {
            Ok(String::new())
        }
    });

    println!(
        "script outcome: {}\n",
        if out.success() { "ok" } else { "failed" }
    );

    let log = driver.vm().log();
    let s = log.summary();
    println!(
        "summary: {} commands ({} ok, {} failed), {} attempts, {} backoffs totalling {}\n",
        s.commands_started,
        s.commands_succeeded,
        s.commands_failed,
        s.attempts,
        s.backoffs,
        s.total_backoff
    );

    println!("per-program breakdown:");
    for (prog, st) in log.per_program() {
        println!(
            "  {prog:<10} started {:>3}  ok {:>3}  failed {:>3}  killed {:>3}",
            st.started, st.succeeded, st.failed, st.cancelled
        );
    }

    println!("\nforany alternative frequency (who carried the load):");
    for (value, n) in log.alternative_frequency() {
        println!("  {value:<14} tried {n} time(s)");
    }
}
