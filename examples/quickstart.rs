//! Quickstart: parse an ftsh script and run it three ways.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. against a toy in-process executor on a virtual clock (instant);
//! 2. against real POSIX processes (`/bin/sh` and friends);
//! 3. inspecting the execution log the shell keeps.

use ethernet_grid::ftsh::{parse, pretty, Clock, SimClock, Vm, VmDriver};
use ethernet_grid::procman::{run_script, RealOptions};

fn main() {
    // The motivating example from §1 of the paper: retry a fetch for
    // up to an hour, trying three hosts for five minutes each.
    let source = "\
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file ${host} filename
    end
  end
end
";
    let script = parse(source).expect("the paper's script parses");
    println!("canonical form:\n{}", pretty(&script));

    // --- 1. Virtual time + toy executor -----------------------------
    // Here `fetch-file` fails on xxx, succeeds on yyy. Backoff delays
    // cost nothing: the clock is simulated.
    let mut driver = VmDriver::new(Vm::with_seed(&script, 7), SimClock::new());
    let outcome = driver.run_to_completion(|spec| {
        println!("  [sim] {}", spec.argv.join(" "));
        if spec.argv.get(1).map(|s| s.as_str()) == Some("yyy") {
            Ok(String::new())
        } else {
            Err("connection refused".into())
        }
    });
    println!(
        "simulated run: {} (virtual time {:.1}s)\n",
        if outcome.success() { "ok" } else { "failed" },
        driver.clock().now().as_secs_f64()
    );

    // --- 2. Real processes ------------------------------------------
    // A script with real commands: capture output into a variable and
    // branch on it, exactly like the paper's carrier-sense fragment.
    let real = parse(
        "echo 2048 -> n\n\
         if ${n} .ge. 1000\n\
           echo carrier clear, proceeding\n\
         else\n\
           failure\n\
         end\n",
    )
    .unwrap();
    let report = run_script(&real, &RealOptions::default());
    println!(
        "real run: {} in {:?}",
        if report.success { "ok" } else { "failed" },
        report.elapsed
    );

    // --- 3. The execution log ----------------------------------------
    let s = report.log.summary();
    println!(
        "log: {} commands started, {} succeeded, {} attempts",
        s.commands_started, s.commands_succeeded, s.attempts
    );
}
