//! The paper's first case study at your fingertips: N submitters vs.
//! one schedd, with the kernel FD table as the contended resource.
//!
//! ```text
//! cargo run --release --example job_submission [n_clients]
//! ```
//!
//! Runs a five-minute window for each discipline and prints the
//! Figure-1-style row, then shows the broadcast-jam effect from the
//! timeline of the Aloha run.

use ethernet_grid::gridworld::{run_submission, SubmitParams};
use ethernet_grid::retry::{Discipline, Dur};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(450);

    println!("submitters: {n}, window: 5 minutes, FD table: 8000\n");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>12}",
        "discipline", "jobs", "crashes", "min free", "failed conn"
    );
    for d in Discipline::ALL {
        let o = run_submission(
            SubmitParams {
                n_clients: n,
                discipline: d,
                ..SubmitParams::default()
            },
            Dur::from_mins(5),
        );
        println!(
            "{:>10} {:>8} {:>8} {:>10} {:>12}",
            d.label(),
            o.jobs_submitted,
            o.crashes,
            o.min_free_fds,
            o.failed_connects
        );
    }

    // Show the first minute of the Aloha FD timeline: the initial
    // consumption crash and the upward spikes when the schedd dies.
    let o = run_submission(
        SubmitParams {
            n_clients: n,
            discipline: Discipline::Aloha,
            ..SubmitParams::default()
        },
        Dur::from_mins(5),
    );
    println!("\nAloha available-FD timeline (first samples):");
    for &(t, v) in o.fd_series.points.iter().take(24) {
        let bar = "#".repeat((v / 200.0) as usize);
        println!("{t:>6.0}s {v:>6.0} {bar}");
    }
}
