//! Run ftsh scripts against real processes: deadlines really kill
//! process trees, output really lands in shell variables.
//!
//! ```text
//! cargo run --example real_shell
//! ```

use ethernet_grid::ftsh::parse;
use ethernet_grid::procman::{run_script, RealOptions};
use std::time::Duration;

fn run(title: &str, src: &str) {
    println!("--- {title} ---");
    let script = parse(src).expect("script parses");
    let report = run_script(
        &script,
        &RealOptions {
            kill_grace: Duration::from_millis(200),
            seed: Some(1),
            ..RealOptions::default()
        },
    );
    let s = report.log.summary();
    println!(
        "result: {} in {:?} ({} commands, {} attempts, {} kills)\n",
        if report.success { "ok" } else { "failed" },
        report.elapsed,
        s.commands_started,
        s.attempts,
        s.commands_cancelled,
    );
}

fn main() {
    // 1. A deadline killing a whole process tree: sh spawns a sleeping
    // grandchild; the try's one-second limit terminates the session.
    run(
        "deadline kills a process tree",
        "try for 1 seconds or 1 times\n\
           sh -c \"sleep 30 & wait\"\n\
         end\n",
    );

    // 2. The I/O transaction: repeated attempts do not interleave
    // partial output because it is held in a variable.
    run(
        "capture to variable + condition",
        "date +%s -> now\n\
         if ${now} .gt. 0\n\
           echo captured ${now}\n\
         end\n",
    );

    // 3. forany over real commands: first success wins.
    run(
        "forany picks the working alternative",
        "forany cmd in false false true\n\
           ${cmd}\n\
         end\n",
    );

    // 4. forall: parallel branches, failure aborts the rest.
    run(
        "forall runs in parallel",
        "forall t in 0.2 0.2 0.2\n\
           sleep ${t}\n\
         end\n",
    );
}
