//! The paper's second case study: producers sharing a 120 MB output
//! buffer drained by a 1 MB/s consumer (the Kangaroo pattern).
//!
//! ```text
//! cargo run --release --example output_buffer [n_producers]
//! ```
//!
//! Prints throughput and collision counts per discipline and the
//! Ethernet producer's carrier-sense behaviour.

use ethernet_grid::gridworld::{run_buffer, BufferParams};
use ethernet_grid::retry::{Discipline, Dur};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    println!("producers: {n}, buffer: 120 MB, consumer: 1 MB/s, run: 180 s\n");
    println!(
        "{:>10} {:>9} {:>9} {:>11} {:>10}",
        "discipline", "produced", "consumed", "collisions", "deferrals"
    );
    for d in Discipline::ALL {
        let o = run_buffer(
            BufferParams {
                n_producers: n,
                discipline: d,
                ..BufferParams::default()
            },
            Dur::from_secs(180),
        );
        println!(
            "{:>10} {:>9} {:>9} {:>11} {:>10}",
            d.label(),
            o.files_produced,
            o.files_consumed,
            o.collisions,
            o.deferrals
        );
    }

    println!(
        "\nThe Ethernet producer estimates free space as:\n  \
         df_free - (incomplete files x average complete size)\n\
         and defers (fails fast, backs off) when its own file would not fit.\n\
         Collisions are mid-write ENOSPC events: the partial file is deleted\n\
         and the work is lost — exactly the waste Figure 5 counts."
    );
}
