//! The paper's third case study: replica selection with a black hole.
//!
//! ```text
//! cargo run --release --example black_hole
//! ```
//!
//! Three clients fetch a 100 MB file from three single-threaded
//! servers; one server accepts connections but never sends a byte.
//! The Aloha reader burns its 60-second timeout on it; the Ethernet
//! reader probes a 1-byte flag file first.

use ethernet_grid::gridworld::{run_blackhole, BlackHoleParams};
use ethernet_grid::retry::{Discipline, Dur};

fn main() {
    println!("3 clients, servers xxx yyy zzz (zzz is a black hole), 900 s\n");
    println!(
        "{:>10} {:>10} {:>11} {:>10} {:>14}",
        "discipline", "transfers", "collisions", "deferrals", "longest stall"
    );
    for d in [Discipline::Aloha, Discipline::Ethernet] {
        let o = run_blackhole(
            BlackHoleParams {
                discipline: d,
                ..BlackHoleParams::default()
            },
            Dur::from_secs(900),
        );
        println!(
            "{:>10} {:>10} {:>11} {:>10} {:>14}",
            d.label(),
            o.transfers,
            o.collisions,
            o.deferrals,
            format!("{}", o.longest_stall),
        );
    }

    println!(
        "\nThe scripts are the paper's own (§5): the Ethernet variant adds\n\
         \n  try for 5 seconds\n    wget http://${{host}}/flag\n  end\n\
         \nbefore committing 60 seconds to the data transfer. The flag fetch\n\
         costs milliseconds on a live server and exposes a black hole in 5 s."
    );
}
