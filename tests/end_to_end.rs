//! Integration tests spanning the workspace: the same ftsh scripts,
//! parsed once, exercised against the in-process executor, the real
//! POSIX driver, and the discrete-event grid worlds.

use ethernet_grid::ftsh::{parse, pretty, LogKind, SimClock, Vm, VmDriver};
use ethernet_grid::gridworld::{
    run_blackhole, run_buffer, run_submission, BlackHoleParams, BufferParams, SubmitParams,
};
use ethernet_grid::procman::{run_script, RealOptions};
use ethernet_grid::retry::{Discipline, Dur};
use std::time::Duration;

#[test]
fn paper_fragment_parses_pretties_and_reparses() {
    // Every ftsh fragment printed in the paper, §1–§5.
    let fragments = [
        "try for 1 hour\n forany host in xxx yyy zzz\n  try for 5 minutes\n   fetch-file ${host} filename\n  end\n end\nend\n",
        "wget http://server/file.tar.gz\ngunzip file.tar.gz\ntar xvf file.tar\n",
        "try for 30 minutes\n wget http://server/file.tar.gz\n gunzip file.tar.gz\n tar xvf file.tar\nend\n",
        "try 5 times\n wget http://server/file.tar.gz\ncatch\n rm -f file.tar.gz\n failure\nend\n",
        "forany server in xxx yyy zzz\n wget http://${server}/file.tar.gz\nend\necho \"got file from ${server}\"\n",
        "forall file in xxx yyy zzz\n wget http://${server}/${file}\nend\n",
        "try for 30 minutes\n try for 5 minutes\n  wget http://server/file.tar.gz\n end\n try for 1 minute or 3 times\n  gunzip file.tar.gz\n  tar xvf file.tar\n end\nend\n",
        "try 5 times\n run-simulation >& tmp\nend\ncat < tmp\n",
        "try 5 times\n run-simulation ->& tmp\nend\ncat -< tmp\n",
        "try for 5 minutes\n condor_submit submit.job\nend\n",
        "try for 5 minutes\n cut -f2 /proc/sys/fs/file-nr -> n\n if ${n} .lt. 1000\n  failure\n else\n  condor_submit submit.job\n end\nend\n",
        "try for 900 seconds\n forany host in xxx yyy zzz\n  try for 60 seconds\n   wget http://${host}/data\n  end\n end\nend\n",
        "try for 900 seconds\n forany host in xxx yyy zzz\n  try for 5 seconds\n   wget http://${host}/flag\n  end\n  try for 60 seconds\n   wget http://${host}/data\n  end\n end\nend\n",
    ];
    for (i, src) in fragments.iter().enumerate() {
        let a = parse(src).unwrap_or_else(|e| panic!("fragment {i}: {e}"));
        let b = parse(&pretty(&a)).unwrap_or_else(|e| panic!("fragment {i} reparse: {e}"));
        assert_eq!(a, b, "fragment {i} roundtrip");
    }
}

#[test]
fn same_script_runs_simulated_and_real() {
    let src = "try for 1 minutes or 3 times\n\
               ${cmd} one\n\
               end\n";
    let script = parse(src).unwrap();

    // Simulated: cmd=flaky-twice.
    let mut env = ethernet_grid::ftsh::Env::new();
    env.set("cmd", "anything");
    let mut d = VmDriver::new(Vm::with_env_seed(&script, env, 3), SimClock::new());
    let mut failures = 1;
    let out = d.run_to_completion(|_| {
        if failures > 0 {
            failures -= 1;
            Err("x".into())
        } else {
            Ok(String::new())
        }
    });
    assert!(out.success());

    // Real: cmd=true succeeds immediately.
    let src_real = "true one\n";
    let report = run_script(&parse(src_real).unwrap(), &RealOptions::default());
    assert!(report.success);
}

#[test]
fn real_deadline_kill_is_visible_in_log() {
    let script = parse("try for 1 seconds or 1 times\n sleep 20\nend\n").unwrap();
    let report = run_script(
        &script,
        &RealOptions {
            kill_grace: Duration::from_millis(100),
            seed: Some(1),
            ..RealOptions::default()
        },
    );
    assert!(!report.success);
    assert!(report.elapsed < Duration::from_secs(8));
    let kinds: Vec<_> = report.log.events().iter().map(|e| &e.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, LogKind::TryTimeout)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, LogKind::CmdCancelled { .. })));
}

#[test]
fn figure1_shape_holds_in_miniature() {
    // The core claim of Figure 1, at reduced scale: under overload,
    // Ethernet > Aloha > Fixed, and Fixed collapses.
    let run = |d: Discipline| {
        run_submission(
            SubmitParams {
                n_clients: 450,
                discipline: d,
                ..SubmitParams::default()
            },
            Dur::from_secs(120),
        )
    };
    let e = run(Discipline::Ethernet);
    let a = run(Discipline::Aloha);
    let f = run(Discipline::Fixed);
    assert!(
        e.jobs_submitted > a.jobs_submitted && a.jobs_submitted > f.jobs_submitted,
        "E={} A={} F={}",
        e.jobs_submitted,
        a.jobs_submitted,
        f.jobs_submitted
    );
    assert_eq!(e.crashes, 0, "ethernet never crashes the schedd");
    assert!(f.crashes > 0, "fixed crash-loops the schedd");
}

#[test]
fn figure2_and_3_shapes_hold_in_miniature() {
    let run = |d: Discipline| {
        run_submission(
            SubmitParams {
                n_clients: 450,
                discipline: d,
                ..SubmitParams::default()
            },
            Dur::from_secs(240),
        )
    };
    // Figure 2: the Aloha run crashes the schedd at least once; at the
    // crash, free FDs spike upward (the broadcast jam).
    let a = run(Discipline::Aloha);
    assert!(a.crashes >= 1, "aloha should crash at least once at 450");
    // Figure 3: the Ethernet run keeps free FDs above a floor related
    // to the threshold.
    let e = run(Discipline::Ethernet);
    assert!(
        e.min_free_fds >= 500,
        "ethernet floor: min free = {}",
        e.min_free_fds
    );
}

#[test]
fn figure4_and_5_shapes_hold_in_miniature() {
    let run = |d: Discipline| {
        run_buffer(
            BufferParams {
                n_producers: 40,
                discipline: d,
                ..BufferParams::default()
            },
            Dur::from_secs(240),
        )
    };
    let e = run(Discipline::Ethernet);
    let a = run(Discipline::Aloha);
    let f = run(Discipline::Fixed);
    // Throughput ordering and collision ordering.
    assert!(
        e.files_consumed >= a.files_consumed && a.files_consumed > f.files_consumed,
        "consumed E={} A={} F={}",
        e.files_consumed,
        a.files_consumed,
        f.files_consumed
    );
    assert!(
        e.collisions < a.collisions && a.collisions < f.collisions,
        "collisions E={} A={} F={}",
        e.collisions,
        a.collisions,
        f.collisions
    );
}

#[test]
fn figure6_and_7_shapes_hold() {
    let run = |d: Discipline| {
        run_blackhole(
            BlackHoleParams {
                discipline: d,
                ..BlackHoleParams::default()
            },
            Dur::from_secs(900),
        )
    };
    let a = run(Discipline::Aloha);
    let e = run(Discipline::Ethernet);
    assert!(a.longest_stall >= Dur::from_secs(55), "aloha hiccups");
    assert!(e.longest_stall < Dur::from_secs(55), "ethernet is smooth");
    assert!(e.transfers > a.transfers);
    assert_eq!(e.collisions, 0, "the probe shields the transfer");
    assert!(e.deferrals > 0);
}

#[test]
fn carrier_sense_threshold_zero_degenerates_to_aloha() {
    // Ablation: with threshold 0 the Ethernet script's carrier sense
    // never defers, so it behaves like Aloha (plus probe overhead).
    let eth0 = run_submission(
        SubmitParams {
            n_clients: 450,
            discipline: Discipline::Ethernet,
            threshold: 0,
            ..SubmitParams::default()
        },
        Dur::from_secs(120),
    );
    let eth1000 = run_submission(
        SubmitParams {
            n_clients: 450,
            discipline: Discipline::Ethernet,
            threshold: 1000,
            ..SubmitParams::default()
        },
        Dur::from_secs(120),
    );
    assert_eq!(eth0.deferrals, 0);
    assert!(eth1000.deferrals > 0);
    assert!(
        eth1000.jobs_submitted > eth0.jobs_submitted,
        "sensing pays: {} vs {}",
        eth1000.jobs_submitted,
        eth0.jobs_submitted
    );
}

#[test]
fn scenarios_are_deterministic_across_processes() {
    // Not just within a run: fixed constants that lock in the seeds.
    let o = run_submission(
        SubmitParams {
            n_clients: 100,
            discipline: Discipline::Aloha,
            seed: 77,
            ..SubmitParams::default()
        },
        Dur::from_secs(60),
    );
    let o2 = run_submission(
        SubmitParams {
            n_clients: 100,
            discipline: Discipline::Aloha,
            seed: 77,
            ..SubmitParams::default()
        },
        Dur::from_secs(60),
    );
    assert_eq!(o.jobs_submitted, o2.jobs_submitted);
    assert_eq!(o.fd_series, o2.fd_series);
}

#[test]
fn figure_shapes_are_seed_robust() {
    // The headline orderings must hold across seeds, not just the one
    // the figures use.
    for seed in [11, 222, 3333] {
        let run = |d: Discipline| {
            run_submission(
                SubmitParams {
                    n_clients: 450,
                    discipline: d,
                    seed,
                    ..SubmitParams::default()
                },
                Dur::from_secs(120),
            )
        };
        let e = run(Discipline::Ethernet);
        let f = run(Discipline::Fixed);
        assert!(
            e.jobs_submitted > 3 * f.jobs_submitted,
            "seed {seed}: ethernet {} vs fixed {}",
            e.jobs_submitted,
            f.jobs_submitted
        );
        assert_eq!(e.crashes, 0, "seed {seed}");
        assert!(f.crashes > 0, "seed {seed}");

        let b = |d| {
            run_buffer(
                BufferParams {
                    n_producers: 40,
                    discipline: d,
                    seed,
                    ..BufferParams::default()
                },
                Dur::from_secs(180),
            )
        };
        let be = b(Discipline::Ethernet);
        let bf = b(Discipline::Fixed);
        assert!(
            be.collisions * 10 < bf.collisions.max(1),
            "seed {seed}: buffer collisions {} vs {}",
            be.collisions,
            bf.collisions
        );
    }
}
