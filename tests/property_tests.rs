//! Property-based tests on the core invariants, spanning crates.

use ethernet_grid::ftsh::{parse, pretty, Seg, Word};
use ethernet_grid::ftsh::{Command, Cond, CondOp, Script, Stmt, TrySpec};
use ethernet_grid::retry::{BackoffPolicy, Dur, NextAttempt, Time, TryBudget, TrySession};
use ethernet_grid::simgrid::{DiskBuffer, EventQueue, FdTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// retry: backoff bounds and budget monotonicity
// ---------------------------------------------------------------------

proptest! {
    /// The jittered delay is always within [pure, 2*pure] where pure is
    /// the unjittered, capped exponential delay.
    #[test]
    fn backoff_jitter_bounds(failures in 1u32..64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = BackoffPolicy::ethernet();
        let pure = p.without_jitter().delay_after(failures, &mut rng);
        let d = p.delay_after(failures, &mut rng);
        prop_assert!(d >= pure);
        prop_assert!(d.as_micros() <= pure.as_micros().saturating_mul(2) + 1);
    }

    /// Backoff delays never exceed the cap times the maximum jitter.
    #[test]
    fn backoff_never_exceeds_cap(failures in 1u32..10_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = BackoffPolicy::ethernet().delay_after(failures, &mut rng);
        prop_assert!(d <= Dur::from_hours(2));
    }

    /// A time-limited session never allows an attempt to begin at or
    /// after its deadline, and never schedules a wake at or past it.
    #[test]
    fn try_session_respects_deadline(
        limit_s in 1u64..3600,
        seed in any::<u64>(),
        failures in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budget = TryBudget::for_time(Dur::from_secs(limit_s));
        let mut s = TrySession::start(budget, Time::from_secs(5));
        let deadline = s.deadline().unwrap();
        let mut now = Time::from_secs(5);
        for _ in 0..failures {
            if !s.begin_attempt(now) {
                prop_assert!(now >= deadline);
                return Ok(());
            }
            prop_assert!(now < deadline);
            match s.on_failure(now, &mut rng) {
                NextAttempt::RetryAt(t) => {
                    prop_assert!(t < deadline, "wake {t:?} at/past deadline {deadline:?}");
                    now = t;
                }
                NextAttempt::Exhausted => return Ok(()),
            }
        }
    }

    /// An attempt-limited session makes exactly its limit of attempts.
    #[test]
    fn try_session_attempt_limit_exact(n in 1u32..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = TrySession::start(TryBudget::times(n), Time::ZERO);
        let mut now = Time::ZERO;
        let mut attempts = 0;
        loop {
            if !s.begin_attempt(now) {
                break;
            }
            attempts += 1;
            match s.on_failure(now, &mut rng) {
                NextAttempt::RetryAt(t) => now = t,
                NextAttempt::Exhausted => break,
            }
        }
        prop_assert_eq!(attempts, n);
    }
}

// ---------------------------------------------------------------------
// simgrid: event order, FD conservation, disk accounting
// ---------------------------------------------------------------------

proptest! {
    /// Pops come out in nondecreasing time order regardless of insert
    /// order, with ties broken by insertion sequence.
    #[test]
    fn event_queue_is_totally_ordered(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_secs(t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last_time);
            if t > last_time {
                seen_at_time.clear();
            }
            // Ties: indices increase (insertion order).
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(i > prev, "tie broken out of order");
            }
            seen_at_time.push(i);
            last_time = t;
        }
    }

    /// Alloc/release sequences conserve descriptors and never go
    /// negative or above capacity.
    #[test]
    fn fd_table_conserves(ops in proptest::collection::vec((0u64..200, any::<bool>()), 1..200)) {
        let mut t = FdTable::new(1000);
        let mut held: Vec<u64> = Vec::new();
        for (n, release) in ops {
            if release && !held.is_empty() {
                let n = held.pop().unwrap();
                t.release(n);
            } else if t.alloc(n).is_ok() {
                held.push(n);
            }
            let total: u64 = held.iter().sum();
            prop_assert_eq!(t.in_use(), total);
            prop_assert!(t.in_use() <= t.capacity());
        }
    }

    /// Disk usage equals the sum of live file sizes at all times and
    /// never exceeds capacity, across arbitrary create/write/complete/
    /// delete interleavings.
    #[test]
    fn disk_buffer_accounting(ops in proptest::collection::vec((0u8..5, 0u64..4096), 1..300)) {
        let mut d = DiskBuffer::new(64 * 1024);
        let mut live: Vec<ethernet_grid::simgrid::FileId> = Vec::new();
        let mut sizes = std::collections::HashMap::<_, u64>::default();
        for (op, arg) in ops {
            match op {
                0 => {
                    let id = d.create();
                    live.push(id);
                    sizes.insert(id, 0);
                }
                1 if !live.is_empty() => {
                    let id = live[arg as usize % live.len()];
                    match d.write(id, arg) {
                        Ok(()) => {
                            *sizes.get_mut(&id).unwrap() += arg;
                        }
                        Err(_) => {
                            // ENOSPC deletes the file; other errors keep it.
                            if d.size_of(id).is_none() {
                                live.retain(|&x| x != id);
                                sizes.remove(&id);
                            }
                        }
                    }
                }
                2 if !live.is_empty() => {
                    let id = live[arg as usize % live.len()];
                    let _ = d.complete(id);
                }
                3 if !live.is_empty() => {
                    let id = live[arg as usize % live.len()];
                    if d.delete(id).is_ok() {
                        live.retain(|&x| x != id);
                        sizes.remove(&id);
                    }
                }
                _ => {}
            }
            let expect: u64 = sizes.values().sum();
            prop_assert_eq!(d.used(), expect);
            prop_assert!(d.used() <= d.capacity());
        }
    }
}

// ---------------------------------------------------------------------
// ftsh: parser <-> pretty-printer round trip on generated ASTs
// ---------------------------------------------------------------------

/// Words that survive the trip bare or quoted: avoid keywords in
/// command position by construction.
fn arb_word() -> impl Strategy<Value = Word> {
    let lit = "[a-z][a-z0-9._/:-]{0,8}".prop_map(|s| Seg::Lit(s.into()));
    let var = "[a-z][a-z0-9_]{0,5}".prop_map(|s| Seg::Var(s.into()));
    let spaced = "[a-z][a-z ]{0,8}[a-z]".prop_map(|s| Seg::Lit(s.into()));
    proptest::collection::vec(prop_oneof![3 => lit, 2 => var, 1 => spaced], 1..3)
        .prop_map(Word::from_segs)
}

/// argv0 must be a non-keyword bare literal so it parses as a command.
fn arb_prog() -> impl Strategy<Value = Word> {
    "[a-z][a-z0-9_-]{2,8}"
        .prop_filter("not a keyword", |s| {
            !matches!(
                s.as_str(),
                "try"
                    | "forany"
                    | "forall"
                    | "if"
                    | "else"
                    | "end"
                    | "catch"
                    | "failure"
                    | "success"
                    | "for"
                    | "in"
                    | "times"
                    | "every"
                    | "or"
            )
        })
        .prop_map(Word::lit)
}

fn arb_command() -> impl Strategy<Value = Stmt> {
    (arb_prog(), proptest::collection::vec(arb_word(), 0..3)).prop_map(|(p, mut args)| {
        let mut words = vec![p];
        words.append(&mut args);
        Stmt::Command(Command {
            words,
            redirs: vec![],
        })
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            5 => arb_command(),
            1 => Just(Stmt::Failure),
            1 => Just(Stmt::Success),
        ]
        .boxed()
    } else {
        let inner = proptest::collection::vec(arb_stmt(depth - 1), 1..3);
        let inner2 = proptest::collection::vec(arb_stmt(depth - 1), 1..3);
        let try_stmt = (
            proptest::option::of(1u64..120),
            proptest::option::of(1u32..9),
            inner.clone(),
            proptest::option::of(inner2.clone()),
        )
            .prop_map(|(mins, times, body, catch)| Stmt::Try {
                spec: TrySpec {
                    time: mins.map(Dur::from_mins),
                    attempts: times,
                    every: None,
                    ..TrySpec::default()
                },
                body: body.into(),
                catch: catch.map(Into::into),
            });
        let forany = (
            "[a-z][a-z0-9_]{0,5}",
            proptest::collection::vec(arb_word(), 1..4),
            inner.clone(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAny {
                var,
                values,
                body: body.into(),
            });
        let forall = (
            "[a-z][a-z0-9_]{0,5}",
            proptest::collection::vec(arb_word(), 1..4),
            inner.clone(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAll {
                var,
                values,
                body: body.into(),
            });
        let ifstmt = (
            arb_word(),
            prop_oneof![
                Just(CondOp::NumLt),
                Just(CondOp::NumGe),
                Just(CondOp::StrEq),
                Just(CondOp::StrNe),
            ],
            arb_word(),
            inner.clone(),
            proptest::option::of(inner2),
        )
            .prop_map(|(lhs, op, rhs, then, els)| Stmt::If {
                cond: Cond { lhs, op, rhs },
                then: then.into(),
                els: els.map(Into::into),
            });
        prop_oneof![
            4 => arb_command(),
            2 => try_stmt,
            2 => forany,
            1 => forall,
            2 => ifstmt,
            1 => Just(Stmt::Failure),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(pretty(ast)) == ast for generated scripts.
    #[test]
    fn pretty_parse_roundtrip(stmts in proptest::collection::vec(arb_stmt(2), 1..5)) {
        let script = Script { stmts: stmts.into() };
        let printed = pretty(&script);
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
        prop_assert_eq!(script, reparsed, "printed:\n{}", printed);
    }

    /// The pretty-printer is idempotent: printing the reparse gives
    /// byte-identical text.
    #[test]
    fn pretty_is_idempotent(stmts in proptest::collection::vec(arb_stmt(2), 1..4)) {
        let script = Script { stmts: stmts.into() };
        let once = pretty(&script);
        let twice = pretty(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
