//! A small, self-contained pseudo-random number layer exposing the
//! subset of the `rand` crate API this workspace uses, so builds work
//! without a crates.io registry. The workspace imports it under the
//! name `rand` via Cargo dependency renaming.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for
//! simulation workloads. It is **not** cryptographically secure.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling conveniences available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// A value drawn uniformly from `range` (half-open).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a natural uniform distribution.
pub trait UniformSample: Sized {
    /// Draw one value from `rng`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for u128 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformSample for bool {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from `rng` within `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, n)` via Lemire's widening-multiply method.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = f64::sample_uniform(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f32 = f32::sample_uniform(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// SplitMix64: expands seed material into well-mixed words.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from ambient entropy (time, thread, addresses) —
/// the stand-in for `rand::rng()`. Each call returns an independent
/// stream; use [`SeedableRng::seed_from_u64`] when determinism matters.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let tick = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let stack_probe = &tick as *const _ as u64;
    rngs::StdRng::seed_from_u64(nanos ^ tick.rotate_left(32) ^ stack_probe)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = r.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dyn_rng_usable_unsized() {
        fn draw(rng: &mut dyn Rng) -> u64 {
            rng.random_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(6);
        assert!(draw(&mut r) < 100);
    }

    #[test]
    fn entropy_rng_streams_differ() {
        let mut a = super::rng();
        let mut b = super::rng();
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }
}
