//! Minimal raw bindings to the C library for the handful of POSIX
//! calls this workspace uses (session management, signalling, and
//! readiness-based I/O for the `gridd` event loop), so builds work
//! without a crates.io registry. The workspace imports it under the
//! name `libc` via Cargo dependency renaming. Linux x86-64 / aarch64
//! signal numbers and epoll constants.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// POSIX process id.
pub type pid_t = i32;
/// Signal-handler slot as passed to `signal(2)` (function pointer cast
/// to a word).
pub type sighandler_t = usize;

/// Termination request (catchable).
pub const SIGTERM: c_int = 15;
/// Forced kill (uncatchable).
pub const SIGKILL: c_int = 9;
/// Interrupt from keyboard.
pub const SIGINT: c_int = 2;
/// Hangup.
pub const SIGHUP: c_int = 1;

/// `errno` value: no such process (Linux).
pub const ESRCH: c_int = 3;
/// `errno` value: interrupted system call (Linux).
pub const EINTR: c_int = 4;
/// `errno` value: resource temporarily unavailable (Linux).
pub const EAGAIN: c_int = 11;

// ---- epoll (Linux readiness-based I/O) --------------------------------

/// Interest/readiness flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Interest/readiness flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness flag: error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Readiness flag: hang-up on the fd.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness flag: the peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's interest set.
pub const EPOLL_CTL_MOD: c_int = 3;
/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0x8_0000;

/// `fcntl` command: read the file status flags.
pub const F_GETFL: c_int = 3;
/// `fcntl` command: set the file status flags.
pub const F_SETFL: c_int = 4;
/// Status flag: non-blocking I/O (Linux generic value).
pub const O_NONBLOCK: c_int = 0x800;

/// One epoll readiness record. x86-64 packs this struct (no padding
/// between `events` and the payload); other Linux targets use natural
/// alignment — matching the kernel ABI exactly is what keeps
/// `epoll_wait` from scribbling over the wrong bytes.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Readiness/interest bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-owned token returned verbatim with each readiness record.
    pub u64: u64,
}

extern "C" {
    /// Send `sig` to `pid` (negative: the whole process group).
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// Make the calling process a session leader.
    pub fn setsid() -> pid_t;
    /// Install a signal handler; returns the previous one.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// The calling process id.
    pub fn getpid() -> pid_t;
    /// Create an epoll instance; returns its fd.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Add/modify/remove `fd` in the epoll interest list.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Wait for readiness; returns the number of records written.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout_ms: c_int,
    ) -> c_int;
    /// Manipulate fd flags (variadic third argument in C).
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    /// (Re)arm a listening socket's accept backlog.
    pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    /// Close a file descriptor.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    #[test]
    fn getpid_matches_std() {
        let pid = unsafe { super::getpid() };
        assert_eq!(pid as u32, std::process::id());
    }

    #[test]
    fn kill_signal_zero_probes_self() {
        // Signal 0 performs error checking only: our own pid exists.
        let rc = unsafe { super::kill(super::getpid(), 0) };
        assert_eq!(rc, 0);
    }

    #[test]
    fn epoll_roundtrip_sees_pipe_readability() {
        use super::*;
        use std::io::Write as _;
        use std::os::unix::io::AsRawFd as _;
        // A connected socket pair: write one byte, epoll must report
        // the read end readable with our token.
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        assert!(epfd >= 0);
        let mut ev = epoll_event {
            events: EPOLLIN,
            u64: 0xDEAD_BEEF,
        };
        let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, b.as_raw_fd(), &mut ev) };
        assert_eq!(rc, 0);
        let mut out = [epoll_event { events: 0, u64: 0 }; 4];
        let n = unsafe { epoll_wait(epfd, out.as_mut_ptr(), 4, 0) };
        assert_eq!(n, 0, "nothing readable yet");
        a.write_all(b"x").unwrap();
        let n = unsafe { epoll_wait(epfd, out.as_mut_ptr(), 4, 1000) };
        assert_eq!(n, 1);
        let events = out[0].events;
        let token = out[0].u64;
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(token, 0xDEAD_BEEF);
        unsafe { close(epfd) };
    }

    #[test]
    fn fcntl_toggles_nonblocking() {
        use super::*;
        use std::os::unix::io::AsRawFd as _;
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let fd = a.as_raw_fd();
        let flags = unsafe { fcntl(fd, F_GETFL) };
        assert!(flags >= 0);
        assert_eq!(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }, 0);
        let now = unsafe { fcntl(fd, F_GETFL) };
        assert_ne!(now & O_NONBLOCK, 0);
    }
}
