//! Minimal raw bindings to the C library for the handful of POSIX
//! calls this workspace uses (session management and signalling), so
//! builds work without a crates.io registry. The workspace imports it
//! under the name `libc` via Cargo dependency renaming. Linux x86-64 /
//! aarch64 signal numbers.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// POSIX process id.
pub type pid_t = i32;
/// Signal-handler slot as passed to `signal(2)` (function pointer cast
/// to a word).
pub type sighandler_t = usize;

/// Termination request (catchable).
pub const SIGTERM: c_int = 15;
/// Forced kill (uncatchable).
pub const SIGKILL: c_int = 9;
/// Interrupt from keyboard.
pub const SIGINT: c_int = 2;
/// Hangup.
pub const SIGHUP: c_int = 1;

/// `errno` value: no such process (Linux).
pub const ESRCH: c_int = 3;

extern "C" {
    /// Send `sig` to `pid` (negative: the whole process group).
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// Make the calling process a session leader.
    pub fn setsid() -> pid_t;
    /// Install a signal handler; returns the previous one.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// The calling process id.
    pub fn getpid() -> pid_t;
}

#[cfg(test)]
mod tests {
    #[test]
    fn getpid_matches_std() {
        let pid = unsafe { super::getpid() };
        assert_eq!(pid as u32, std::process::id());
    }

    #[test]
    fn kill_signal_zero_probes_self() {
        // Signal 0 performs error checking only: our own pid exists.
        let rc = unsafe { super::kill(super::getpid(), 0) };
        assert_eq!(rc, 0);
    }
}
