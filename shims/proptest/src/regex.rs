//! A tiny regex-subset *generator*: `&str` strategies sample strings
//! matching the pattern. Supported syntax: literal characters, escapes
//! (`\n`, `\t`, `\\`, `\.` …), `.` (any printable ASCII), character
//! classes with ranges and negation, groups with alternation, and the
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded ones capped at
//! 8 repetitions).

use crate::test_runner::TestRng;

/// Generate one string matching `pattern`. Panics on syntax this
/// subset does not understand.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
        pattern,
    };
    let node = p.alternation();
    assert!(
        p.pos == p.chars.len(),
        "unsupported regex (stopped at byte {}): {pattern:?}",
        p.pos
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

enum Node {
    /// Alternatives, one chosen at random.
    Alt(Vec<Node>),
    /// Concatenation.
    Seq(Vec<Node>),
    /// A repeated node with an inclusive count range.
    Repeat(Box<Node>, u32, u32),
    /// One literal character.
    Char(char),
    /// One character drawn from a set.
    Class { set: Vec<char>, negated: bool },
    /// `.`: any printable ASCII character.
    Dot,
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn alternation(&mut self) -> Node {
        let mut alts = vec![self.sequence()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.sequence());
        }
        if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            Node::Alt(alts)
        }
    }

    fn sequence(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            items.push(self.quantified(atom));
        }
        Node::Seq(items)
    }

    fn atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                let inner = self.alternation();
                assert_eq!(self.bump(), ')', "unclosed group in {:?}", self.pattern);
                inner
            }
            '[' => self.class(),
            '.' => Node::Dot,
            '\\' => Node::Char(unescape(self.bump())),
            c => Node::Char(c),
        }
    }

    fn class(&mut self) -> Node {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => panic!("unclosed character class in {:?}", self.pattern),
            };
            first = false;
            let c = if c == '\\' { unescape(self.bump()) } else { c };
            // A range needs `-` followed by something other than `]`.
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1) != Some(&']')
                && self.chars.get(self.pos + 1).is_some()
            {
                self.bump();
                let hi = self.bump();
                let hi = if hi == '\\' {
                    unescape(self.bump())
                } else {
                    hi
                };
                assert!(c <= hi, "inverted class range in {:?}", self.pattern);
                for v in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(v) {
                        set.push(ch);
                    }
                }
            } else {
                set.push(c);
            }
        }
        assert!(
            !set.is_empty(),
            "empty character class in {:?}",
            self.pattern
        );
        Node::Class { set, negated }
    }

    fn quantified(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.bump();
                let mut lo = String::new();
                while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    lo.push(self.bump());
                }
                let lo: u32 = lo.parse().expect("repeat count");
                let hi = if self.peek() == Some(',') {
                    self.bump();
                    let mut hi = String::new();
                    while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        hi.push(self.bump());
                    }
                    hi.parse().expect("repeat bound")
                } else {
                    lo
                };
                assert_eq!(self.bump(), '}', "unclosed repeat in {:?}", self.pattern);
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

const PRINTABLE: std::ops::Range<u32> = 0x20..0x7F;

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let pick = rng.below(alts.len() as u64) as usize;
            emit(&alts[pick], rng, out);
        }
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Char(c) => out.push(*c),
        Node::Class { set, negated } => {
            if *negated {
                for _ in 0..1000 {
                    let c = char::from_u32(
                        PRINTABLE.start
                            + rng.below((PRINTABLE.end - PRINTABLE.start) as u64) as u32,
                    )
                    .unwrap();
                    if !set.contains(&c) {
                        out.push(c);
                        return;
                    }
                }
                panic!("negated class excludes all printable ASCII");
            }
            let pick = rng.below(set.len() as u64) as usize;
            out.push(set[pick]);
        }
        Node::Dot => {
            let c = char::from_u32(
                PRINTABLE.start + rng.below((PRINTABLE.end - PRINTABLE.start) as u64) as u32,
            )
            .unwrap();
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::new(42);
        (0..200).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn fixed_repeat_class() {
        for s in gen_many("[a-z]{1,6}") {
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn grouped_repeat() {
        for s in gen_many("[a-z][a-z0-9]{0,6}( [a-z0-9./:-]{1,8}){0,3}") {
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn dot_is_printable() {
        for s in gen_many(".{0,200}") {
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn class_with_escapes_and_literals() {
        for s in gen_many("[a-z \n${}\"']{0,120}") {
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || " \n${}\"'".contains(c),
                    "unexpected {c:?}"
                );
            }
        }
    }

    #[test]
    fn alternation_picks_each_arm() {
        let all = gen_many("(ab|cd)");
        assert!(all.iter().any(|s| s == "ab"));
        assert!(all.iter().any(|s| s == "cd"));
    }

    #[test]
    fn optional_and_star() {
        for s in gen_many("a?b*c+") {
            assert!(s.contains('c'));
        }
    }
}
