//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (resampling otherwise).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// A weighted union of strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Uniform full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`…).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// String strategies from a regex subset (see [`crate::regex`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
