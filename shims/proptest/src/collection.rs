//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A number-of-elements specification for [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let n = self.size.min + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
