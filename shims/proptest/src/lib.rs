//! A small, self-contained property-testing framework exposing the
//! subset of the `proptest` API this workspace uses, so builds work
//! without a crates.io registry. The workspace imports it under the
//! name `proptest` via Cargo dependency renaming.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reruns explore the same inputs), and failures
//! are reported without input shrinking — the failing values are
//! printed as-is.

pub mod collection;
pub mod option;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; the body may use `prop_assert!`-style macros and `?` on
/// [`test_runner::TestCaseError`] results.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    let mut __proptest_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __proptest_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fail the current case (by returning a [`test_runner::TestCaseError`])
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} == {:?}: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}

/// A union of strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
