//! The case loop, its RNG, and failure reporting.

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion (or explicit `fail`) tripped.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discard request carrying `message`.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator strategies draw from.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs the case loop for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        TestRunner { config, name }
    }

    /// Run `case` once per configured case with a per-case RNG. Panics
    /// on the first failing case, reporting its index and seed.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Derive a stable per-test base seed from the test name so
        // different tests explore different corners, reproducibly.
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for i in 0..self.config.cases {
            let seed = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {}/{} of '{}' failed (seed {seed:#x}): {msg}",
                        i + 1,
                        self.config.cases,
                        self.name,
                    );
                }
            }
        }
    }
}
