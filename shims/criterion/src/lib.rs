//! A small, self-contained benchmarking harness exposing the subset of
//! the `criterion` API this workspace uses, so `cargo bench` works
//! without a crates.io registry. The workspace imports it under the
//! name `criterion` via Cargo dependency renaming.
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a small measurement window; the mean ns/iter is
//! printed in a `name ... time: [...]` line similar to criterion's.

use std::time::{Duration, Instant};

/// Top-level benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.sample_size, self.measurement, &mut f);
        report(&name.into(), &stats);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let stats = run_bench(samples, self.criterion.measurement, &mut f);
        report(&format!("{}/{}", self.name, name.into()), &stats);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn run_bench<F: FnMut(&mut Bencher)>(samples: usize, window: Duration, f: &mut F) -> Stats {
    // Calibrate: how many iterations fit one sample slot?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let slot = window / samples.max(1) as u32;
    let iters = (slot.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    Stats {
        mean_ns: mean,
        min_ns: per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min),
        max_ns: per_iter_ns.iter().copied().fold(0.0, f64::max),
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, stats: &Stats) {
    println!(
        "{name:<40} time: [{} {} {}]",
        human(stats.min_ns),
        human(stats.mean_ns),
        human(stats.max_ns)
    );
}

/// Register benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            sample_size: 3,
            measurement: Duration::from_millis(3),
        };
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_honours_sample_size() {
        let mut c = Criterion {
            sample_size: 3,
            measurement: Duration::from_millis(3),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("x", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
