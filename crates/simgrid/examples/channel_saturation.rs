//! The §3 remark, mechanically: sweep offered load on a shared slotted
//! channel and watch pure backoff (Aloha) saturate far below a
//! carrier-sensing station, while immediate retransmission (Fixed)
//! livelocks entirely.
//!
//! ```text
//! cargo run -p eg-simgrid --example channel_saturation
//! ```

use simgrid::{simulate_channel, ChannelDiscipline};
use std::fmt::Write as _;

fn main() {
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "G(new/s)", "Fixed", "Aloha", "Ethernet"
    );
    for p in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let mut row = format!("{:>8.2}", 50.0 * p);
        for d in [
            ChannelDiscipline::Fixed,
            ChannelDiscipline::Aloha,
            ChannelDiscipline::Ethernet,
        ] {
            let s = simulate_channel(d, 50, p, 50_000, 1);
            let _ = write!(row, " {:>10.3}", s.throughput());
        }
        println!("{row}");
    }
    println!("\nThroughput S = successful slots / total slots, 50 stations.");
}
