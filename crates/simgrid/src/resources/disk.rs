//! The shared filesystem output buffer of the producer-consumer
//! scenario.
//!
//! §5: producers write output files of unknown size into a 120 MB
//! buffer; completed files are atomically renamed to `x.done` so the
//! consumer (draining at 1 MB/s) knows they are whole. A write that
//! hits ENOSPC mid-file is a *collision*: the partial file is deleted
//! and the producer backs off. The Ethernet producer estimates free
//! space by assuming each incomplete file will grow to the average size
//! of the completed ones.

use std::collections::BTreeMap;

/// Identifier of a file in the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(u64);

/// Why a write failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// No space left on device — the paper's collision.
    NoSpace,
    /// The file does not exist (deleted or consumed).
    NoSuchFile,
    /// The file was already completed (renamed `.done`) and is
    /// immutable.
    AlreadyComplete,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::NoSpace => write!(f, "no space left on device"),
            WriteError::NoSuchFile => write!(f, "no such file"),
            WriteError::AlreadyComplete => write!(f, "file already complete"),
        }
    }
}

impl std::error::Error for WriteError {}

#[derive(Clone, Copy, Debug)]
struct FileState {
    size: u64,
    complete: bool,
}

/// A bounded shared buffer of in-progress and complete files.
///
/// ```
/// use simgrid::{DiskBuffer, WriteError};
///
/// let mut d = DiskBuffer::new(10);
/// let f = d.create();
/// d.write(f, 8).unwrap();
/// d.complete(f).unwrap();
/// // A second file colliding with ENOSPC is deleted and counted.
/// let g = d.create();
/// assert_eq!(d.write(g, 5), Err(WriteError::NoSpace));
/// assert_eq!(d.collisions(), 1);
/// assert_eq!(d.used(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct DiskBuffer {
    capacity: u64,
    used: u64,
    files: BTreeMap<FileId, FileState>,
    next_id: u64,
    collisions: u64,
}

impl DiskBuffer {
    /// A buffer with `capacity` bytes (the paper uses 120 MB).
    pub fn new(capacity: u64) -> DiskBuffer {
        DiskBuffer {
            capacity,
            used: 0,
            files: BTreeMap::new(),
            next_id: 0,
            collisions: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied (complete + in-progress).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free — what `df` would report.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Mid-write ENOSPC events so far (the collision counter of
    /// Figure 5).
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Open a new in-progress file of size zero.
    pub fn create(&mut self) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            FileState {
                size: 0,
                complete: false,
            },
        );
        id
    }

    /// Append `bytes` to an in-progress file. On ENOSPC the partial
    /// file is deleted (as the paper's producers do), the collision is
    /// counted, and the error returned.
    pub fn write(&mut self, id: FileId, bytes: u64) -> Result<(), WriteError> {
        let state = self.files.get_mut(&id).ok_or(WriteError::NoSuchFile)?;
        if state.complete {
            return Err(WriteError::AlreadyComplete);
        }
        if self.used + bytes > self.capacity {
            self.collisions += 1;
            let state = self.files.remove(&id).expect("present above");
            self.used -= state.size;
            return Err(WriteError::NoSpace);
        }
        state.size += bytes;
        self.used += bytes;
        Ok(())
    }

    /// Forcibly fail an in-progress write with ENOSPC regardless of
    /// actual occupancy (fault injection — a server lying about, or
    /// suddenly losing, its space): the partial file is deleted and
    /// the collision counted, exactly as a real mid-write ENOSPC.
    pub fn force_enospc(&mut self, id: FileId) -> Result<(), WriteError> {
        let state = self.files.remove(&id).ok_or(WriteError::NoSuchFile)?;
        self.used -= state.size;
        self.collisions += 1;
        Ok(())
    }

    /// Atomically rename to `.done`: the file becomes visible to the
    /// consumer and immutable.
    pub fn complete(&mut self, id: FileId) -> Result<(), WriteError> {
        let state = self.files.get_mut(&id).ok_or(WriteError::NoSuchFile)?;
        if state.complete {
            return Err(WriteError::AlreadyComplete);
        }
        state.complete = true;
        Ok(())
    }

    /// Delete a file (producer abandoning a partial, or consumer
    /// removing what it has read), freeing its space.
    pub fn delete(&mut self, id: FileId) -> Result<u64, WriteError> {
        let state = self.files.remove(&id).ok_or(WriteError::NoSuchFile)?;
        self.used -= state.size;
        Ok(state.size)
    }

    /// Size of a file, if it exists.
    pub fn size_of(&self, id: FileId) -> Option<u64> {
        self.files.get(&id).map(|s| s.size)
    }

    /// The oldest complete file (what the consumer reads next) and its
    /// size.
    pub fn oldest_complete(&self) -> Option<(FileId, u64)> {
        self.files
            .iter()
            .find(|(_, s)| s.complete)
            .map(|(&id, s)| (id, s.size))
    }

    /// Count and total size of complete files.
    pub fn complete_stats(&self) -> (u64, u64) {
        let mut n = 0;
        let mut bytes = 0;
        for s in self.files.values() {
            if s.complete {
                n += 1;
                bytes += s.size;
            }
        }
        (n, bytes)
    }

    /// Number of in-progress (incomplete) files.
    pub fn incomplete_count(&self) -> u64 {
        self.files.values().filter(|s| !s.complete).count() as u64
    }

    /// The paper's Ethernet carrier-sense estimate: assume every
    /// incomplete file will grow to the average size of the complete
    /// ones, subtract that projected demand from the reported free
    /// space. Negative means "expect a collision: defer".
    pub fn ethernet_estimate_free(&self) -> i64 {
        let (n_done, done_bytes) = self.complete_stats();
        let avg = if n_done > 0 {
            done_bytes as f64 / n_done as f64
        } else {
            0.0
        };
        let projected = avg * self.incomplete_count() as f64;
        self.free() as i64 - projected as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn create_write_complete_consume_cycle() {
        let mut d = DiskBuffer::new(120 * MB);
        let f = d.create();
        d.write(f, 5 * MB).unwrap();
        assert_eq!(d.used(), 5 * MB);
        assert_eq!(d.oldest_complete(), None, "incomplete files are invisible");
        d.complete(f).unwrap();
        assert_eq!(d.oldest_complete(), Some((f, 5 * MB)));
        let freed = d.delete(f).unwrap();
        assert_eq!(freed, 5 * MB);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn enospc_deletes_partial_and_counts_collision() {
        let mut d = DiskBuffer::new(10 * MB);
        let a = d.create();
        d.write(a, 8 * MB).unwrap();
        let b = d.create();
        d.write(b, MB).unwrap();
        // b tries to grow past capacity.
        assert_eq!(d.write(b, 2 * MB), Err(WriteError::NoSpace));
        assert_eq!(d.collisions(), 1);
        assert_eq!(d.size_of(b), None, "partial deleted on collision");
        assert_eq!(d.used(), 8 * MB, "a unaffected");
    }

    #[test]
    fn exact_fit_is_not_a_collision() {
        let mut d = DiskBuffer::new(MB);
        let f = d.create();
        d.write(f, MB).unwrap();
        assert_eq!(d.free(), 0);
        assert_eq!(d.collisions(), 0);
    }

    #[test]
    fn complete_files_are_immutable() {
        let mut d = DiskBuffer::new(MB);
        let f = d.create();
        d.write(f, 1).unwrap();
        d.complete(f).unwrap();
        assert_eq!(d.write(f, 1), Err(WriteError::AlreadyComplete));
        assert_eq!(d.complete(f), Err(WriteError::AlreadyComplete));
    }

    #[test]
    fn missing_files_error() {
        let mut d = DiskBuffer::new(MB);
        let f = d.create();
        d.delete(f).unwrap();
        assert_eq!(d.write(f, 1), Err(WriteError::NoSuchFile));
        assert_eq!(d.delete(f), Err(WriteError::NoSuchFile));
        assert_eq!(d.complete(f), Err(WriteError::NoSuchFile));
    }

    #[test]
    fn oldest_complete_is_fifo() {
        let mut d = DiskBuffer::new(10 * MB);
        let a = d.create();
        let b = d.create();
        d.write(a, MB).unwrap();
        d.write(b, MB).unwrap();
        d.complete(b).unwrap();
        assert_eq!(d.oldest_complete(), Some((b, MB)));
        d.complete(a).unwrap();
        assert_eq!(d.oldest_complete(), Some((a, MB)), "a was created first");
    }

    #[test]
    fn ethernet_estimate_projects_incomplete_growth() {
        let mut d = DiskBuffer::new(10 * MB);
        // Two complete 2 MB files -> average 2 MB.
        for _ in 0..2 {
            let f = d.create();
            d.write(f, 2 * MB).unwrap();
            d.complete(f).unwrap();
        }
        // Three in-progress files of 0 bytes: projected 6 MB demand.
        for _ in 0..3 {
            d.create();
        }
        // free = 6 MB, projected = 6 MB -> estimate 0.
        assert_eq!(d.ethernet_estimate_free(), 0);
        // A fourth in-progress file pushes the estimate negative.
        d.create();
        assert!(d.ethernet_estimate_free() < 0);
    }

    #[test]
    fn estimate_with_no_completes_equals_free() {
        let mut d = DiskBuffer::new(5 * MB);
        d.create();
        assert_eq!(d.ethernet_estimate_free(), 5 * MB as i64);
    }

    #[test]
    fn used_never_exceeds_capacity_under_pressure() {
        let mut d = DiskBuffer::new(3 * MB);
        let mut ids = Vec::new();
        for i in 0..10 {
            let f = d.create();
            let _ = d.write(f, (i % 4) * MB / 2 + 1);
            ids.push(f);
            assert!(d.used() <= d.capacity());
        }
    }
}
