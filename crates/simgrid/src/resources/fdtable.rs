//! The kernel file-descriptor table.
//!
//! §5: *"Most systems go to great lengths to manage the use of physical
//! resources such as disks, memories, and CPUs. This overlooked
//! resource is just as vital in a system under a heavy load."* The
//! submission scenario's carrier sense reads the free count (the
//! second field of `/proc/sys/fs/file-nr`) and defers below a
//! threshold.

/// Error returned when the table is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FdExhausted;

impl std::fmt::Display for FdExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file descriptor table exhausted")
    }
}

impl std::error::Error for FdExhausted {}

/// A bounded descriptor table with conservation accounting.
///
/// ```
/// use simgrid::FdTable;
///
/// let mut t = FdTable::new(100);
/// t.alloc(90).unwrap();
/// assert!(t.alloc(20).is_err());
/// assert_eq!(t.free(), 10);
/// t.release(90);
/// assert_eq!(t.min_free_seen(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct FdTable {
    capacity: u64,
    in_use: u64,
    min_free_seen: u64,
}

impl FdTable {
    /// A table with the given total capacity (Linux of the era
    /// defaulted `fs.file-max` to roughly 8192; the paper's figures top
    /// out near 8000).
    pub fn new(capacity: u64) -> FdTable {
        FdTable {
            capacity,
            in_use: 0,
            min_free_seen: capacity,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Descriptors currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Descriptors currently free — what the carrier-sense probe reads.
    pub fn free(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// The low-water mark of free descriptors over the table's life.
    pub fn min_free_seen(&self) -> u64 {
        self.min_free_seen
    }

    /// Can `n` descriptors be allocated right now?
    pub fn can_alloc(&self, n: u64) -> bool {
        self.free() >= n
    }

    /// Allocate `n` descriptors or fail atomically (no partial
    /// allocation).
    pub fn alloc(&mut self, n: u64) -> Result<(), FdExhausted> {
        if !self.can_alloc(n) {
            return Err(FdExhausted);
        }
        self.in_use += n;
        self.min_free_seen = self.min_free_seen.min(self.free());
        Ok(())
    }

    /// Release `n` descriptors. Releasing more than are allocated is a
    /// bug in the caller.
    pub fn release(&mut self, n: u64) {
        assert!(
            n <= self.in_use,
            "releasing {n} FDs but only {} in use",
            self.in_use
        );
        self.in_use -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_conserve() {
        let mut t = FdTable::new(100);
        t.alloc(30).unwrap();
        t.alloc(50).unwrap();
        assert_eq!(t.in_use(), 80);
        assert_eq!(t.free(), 20);
        t.release(50);
        assert_eq!(t.free(), 70);
        t.release(30);
        assert_eq!(t.in_use(), 0);
    }

    #[test]
    fn alloc_fails_atomically_when_full() {
        let mut t = FdTable::new(10);
        t.alloc(8).unwrap();
        assert_eq!(t.alloc(3), Err(FdExhausted));
        assert_eq!(t.in_use(), 8, "failed alloc must not consume anything");
        t.alloc(2).unwrap();
        assert_eq!(t.free(), 0);
        assert_eq!(t.alloc(1), Err(FdExhausted));
    }

    #[test]
    fn zero_alloc_always_succeeds() {
        let mut t = FdTable::new(0);
        assert!(t.alloc(0).is_ok());
        assert_eq!(t.alloc(1), Err(FdExhausted));
    }

    #[test]
    fn low_water_mark_tracks_minimum() {
        let mut t = FdTable::new(100);
        assert_eq!(t.min_free_seen(), 100);
        t.alloc(90).unwrap();
        assert_eq!(t.min_free_seen(), 10);
        t.release(90);
        assert_eq!(t.min_free_seen(), 10, "mark is sticky");
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut t = FdTable::new(10);
        t.alloc(1).unwrap();
        t.release(2);
    }
}
