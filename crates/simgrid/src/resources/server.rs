//! Single-threaded file servers and black holes.
//!
//! §5's third scenario: *"Each server is single-threaded, allowing only
//! one client at a time to transfer data. One of the three is a
//! permanent black hole. It permits clients to connect, but does not
//! provide data or voluntarily disconnect."* A busy normal server
//! holds later connections in its accept queue; a black hole accepts
//! everyone and serves no one. Clients escape only through their own
//! timeouts (`try for 60 seconds ... end`).

use retry::Dur;
use std::collections::VecDeque;

/// Whether a server serves data or swallows clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerKind {
    /// Serves one client at a time at a fixed bandwidth.
    Normal,
    /// Accepts connections, never transmits, never disconnects.
    BlackHole,
}

/// The outcome of a connection attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The client is now being served; the transfer will take
    /// `size / bandwidth`.
    Serving,
    /// The server is busy; the client waits in the accept queue.
    Queued,
    /// The server is a black hole: the connection is open but no data
    /// will ever flow.
    Hung,
}

/// A single-threaded server keyed by caller-supplied client handles.
#[derive(Clone, Debug)]
pub struct FileServer<C> {
    kind: ServerKind,
    bandwidth: u64, // bytes per second
    current: Option<C>,
    queue: VecDeque<C>,
    hung: Vec<C>,
}

impl<C: PartialEq + Copy> FileServer<C> {
    /// A server of the given kind and bandwidth (bytes/second). The
    /// paper's 100 MB in ~10 s implies 10 MB/s.
    pub fn new(kind: ServerKind, bandwidth: u64) -> FileServer<C> {
        FileServer {
            kind,
            bandwidth,
            current: None,
            queue: VecDeque::new(),
            hung: Vec::new(),
        }
    }

    /// The server's nature.
    pub fn kind(&self) -> ServerKind {
        self.kind
    }

    /// How long a transfer of `bytes` takes once being served.
    pub fn transfer_time(&self, bytes: u64) -> Dur {
        debug_assert!(self.bandwidth > 0, "normal server needs bandwidth");
        Dur::from_secs_f64(bytes as f64 / self.bandwidth as f64)
    }

    /// Is a client currently being served?
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Clients waiting in the accept queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Clients stuck in the black hole.
    pub fn hung_count(&self) -> usize {
        self.hung.len()
    }

    /// A client connects.
    pub fn connect(&mut self, client: C) -> Admission {
        match self.kind {
            ServerKind::BlackHole => {
                self.hung.push(client);
                Admission::Hung
            }
            ServerKind::Normal => {
                if self.current.is_none() {
                    self.current = Some(client);
                    Admission::Serving
                } else {
                    self.queue.push_back(client);
                    Admission::Queued
                }
            }
        }
    }

    /// The current transfer finished: the client leaves and the next
    /// queued client (returned) starts being served.
    pub fn finish_current(&mut self) -> Option<C> {
        debug_assert!(self.current.is_some(), "no transfer in progress");
        self.current = self.queue.pop_front();
        self.current
    }

    /// Toggle the server's nature at runtime (fault injection — a
    /// healthy replica collapsing into a black hole, or one recovering).
    ///
    /// Collapsing (`BlackHole`): the current transfer and the accept
    /// queue fall silent — every connection moves to `hung`, still
    /// open, never to receive a byte. Recovering (`Normal`): the hung
    /// connections re-enter the accept queue in arrival order and, if
    /// the server is idle, the head is promoted and returned so the
    /// caller can start its transfer. Setting the same kind is a no-op.
    pub fn set_kind(&mut self, kind: ServerKind) -> Option<C> {
        if kind == self.kind {
            return None;
        }
        self.kind = kind;
        match kind {
            ServerKind::BlackHole => {
                self.hung.extend(self.current.take());
                self.hung.extend(self.queue.drain(..));
                None
            }
            ServerKind::Normal => {
                self.queue.extend(self.hung.drain(..));
                if self.current.is_none() {
                    self.current = self.queue.pop_front();
                    self.current
                } else {
                    None
                }
            }
        }
    }

    /// A client gives up (its `try` deadline fired): remove it wherever
    /// it is. If it was the one being served, the next queued client
    /// (returned in `promoted`) starts immediately.
    pub fn disconnect(&mut self, client: C) -> Disconnect<C> {
        if self.current == Some(client) {
            self.current = self.queue.pop_front();
            return Disconnect {
                was_connected: true,
                promoted: self.current,
            };
        }
        if let Some(pos) = self.queue.iter().position(|c| *c == client) {
            self.queue.remove(pos);
            return Disconnect {
                was_connected: true,
                promoted: None,
            };
        }
        if let Some(pos) = self.hung.iter().position(|c| *c == client) {
            self.hung.swap_remove(pos);
            return Disconnect {
                was_connected: true,
                promoted: None,
            };
        }
        Disconnect {
            was_connected: false,
            promoted: None,
        }
    }
}

/// Result of [`FileServer::disconnect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnect<C> {
    /// Whether the client was actually connected here.
    pub was_connected: bool,
    /// A queued client promoted to being served, if any.
    pub promoted: Option<C>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_server_serves_one_and_queues_rest() {
        let mut s = FileServer::new(ServerKind::Normal, 10 << 20);
        assert_eq!(s.connect(1), Admission::Serving);
        assert_eq!(s.connect(2), Admission::Queued);
        assert_eq!(s.connect(3), Admission::Queued);
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn finish_promotes_fifo() {
        let mut s = FileServer::new(ServerKind::Normal, 1);
        s.connect(1);
        s.connect(2);
        s.connect(3);
        assert_eq!(s.finish_current(), Some(2));
        assert_eq!(s.finish_current(), Some(3));
        assert_eq!(s.finish_current(), None);
        assert!(!s.is_busy());
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let s: FileServer<u32> = FileServer::new(ServerKind::Normal, 10 << 20);
        let t = s.transfer_time(100 << 20);
        assert!(
            (t.as_secs_f64() - 10.0).abs() < 1e-9,
            "100MB at 10MB/s is 10s"
        );
    }

    #[test]
    fn black_hole_hangs_everyone() {
        let mut s = FileServer::new(ServerKind::BlackHole, 10 << 20);
        assert_eq!(s.connect(1), Admission::Hung);
        assert_eq!(s.connect(2), Admission::Hung);
        assert_eq!(s.hung_count(), 2);
        assert!(!s.is_busy(), "a black hole never serves");
    }

    #[test]
    fn disconnect_current_promotes_next() {
        let mut s = FileServer::new(ServerKind::Normal, 1);
        s.connect(1);
        s.connect(2);
        let d = s.disconnect(1);
        assert!(d.was_connected);
        assert_eq!(d.promoted, Some(2));
        assert!(s.is_busy());
    }

    #[test]
    fn disconnect_queued_and_hung() {
        let mut s = FileServer::new(ServerKind::Normal, 1);
        s.connect(1);
        s.connect(2);
        s.connect(3);
        let d = s.disconnect(2);
        assert!(d.was_connected);
        assert_eq!(d.promoted, None);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.finish_current(), Some(3), "2 left the queue");

        let mut bh = FileServer::new(ServerKind::BlackHole, 1);
        bh.connect(9);
        assert!(bh.disconnect(9).was_connected);
        assert_eq!(bh.hung_count(), 0);
    }

    #[test]
    fn set_kind_collapses_and_recovers() {
        let mut s = FileServer::new(ServerKind::Normal, 1);
        s.connect(1);
        s.connect(2);
        s.connect(3);
        assert_eq!(s.set_kind(ServerKind::BlackHole), None);
        assert!(!s.is_busy());
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.hung_count(), 3, "everyone falls silent");
        assert_eq!(s.connect(4), Admission::Hung);
        assert_eq!(
            s.set_kind(ServerKind::Normal),
            Some(1),
            "head of the line resumes in arrival order"
        );
        assert_eq!(s.queue_len(), 3);
        assert_eq!(s.set_kind(ServerKind::Normal), None, "same kind is a no-op");
        assert_eq!(s.finish_current(), Some(2));
    }

    #[test]
    fn disconnect_unknown_client_is_noop() {
        let mut s = FileServer::new(ServerKind::Normal, 1);
        s.connect(1);
        let d = s.disconnect(42);
        assert!(!d.was_connected);
        assert!(s.is_busy());
    }
}
