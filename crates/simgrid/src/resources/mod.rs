//! Models of the contended resources from the paper's three scenarios.

pub mod disk;
pub mod fdtable;
pub mod server;
