//! A slotted shared channel: the textbook model behind §3's remark.
//!
//! *"The original Aloha network would saturate at an offered load of 18
//! percent."* This module reproduces that curve mechanically — N
//! stations offer frames to a slotted medium; a slot with exactly one
//! transmission succeeds, more than one is a collision — and contrasts
//! three station disciplines mirroring the paper's clients:
//!
//! * **fixed** — retransmit in the very next slot (collisions persist
//!   forever once load is nontrivial);
//! * **aloha** — retransmit after a randomized exponential backoff;
//! * **ethernet** — carrier sense: stations begin transmitting at a
//!   random instant within the slot (mini-slots) and listen first; the
//!   earliest station takes the channel and everyone else defers.
//!   Collisions only happen when two stations start within the same
//!   propagation window, and the same backoff then applies.
//!
//! The ablation bench sweeps offered load and prints throughput so the
//! 18 %-class saturation of pure ALOHA is visible next to the
//! carrier-sensing discipline.

use crate::rng::SimRng;

/// Station discipline on the shared channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelDiscipline {
    /// Retransmit immediately.
    Fixed,
    /// Randomized exponential backoff after collisions.
    Aloha,
    /// Listen-before-talk carrier sense + backoff.
    Ethernet,
}

/// Result of a channel simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelStats {
    /// Slots simulated.
    pub slots: u64,
    /// Slots carrying exactly one frame.
    pub successes: u64,
    /// Slots with two or more frames.
    pub collisions: u64,
    /// Slots left idle.
    pub idle: u64,
    /// Frames offered (new arrivals).
    pub offered: u64,
}

impl ChannelStats {
    /// Throughput S: fraction of slots carrying a successful frame.
    pub fn throughput(&self) -> f64 {
        self.successes as f64 / self.slots.max(1) as f64
    }

    /// Offered load G: new frames per slot.
    pub fn offered_load(&self) -> f64 {
        self.offered as f64 / self.slots.max(1) as f64
    }
}

struct Station {
    /// Pending frame and its scheduled transmission slot.
    pending: Option<u64>,
    collisions: u32,
}

/// Simulate `n_stations` stations for `slots` slots. Each idle station
/// generates a new frame per slot with probability `p_new` (offered
/// load G ≈ n·p_new). Returns the aggregate statistics.
///
/// ```
/// use simgrid::{simulate_channel, ChannelDiscipline};
///
/// let aloha = simulate_channel(ChannelDiscipline::Aloha, 50, 0.05, 10_000, 1);
/// let csma = simulate_channel(ChannelDiscipline::Ethernet, 50, 0.05, 10_000, 1);
/// assert!(csma.throughput() > aloha.throughput());
/// ```
pub fn simulate_channel(
    discipline: ChannelDiscipline,
    n_stations: usize,
    p_new: f64,
    slots: u64,
    seed: u64,
) -> ChannelStats {
    let mut rng = SimRng::new(seed);
    let mut stations: Vec<Station> = (0..n_stations)
        .map(|_| Station {
            pending: None,
            collisions: 0,
        })
        .collect();
    let mut stats = ChannelStats {
        slots,
        successes: 0,
        collisions: 0,
        idle: 0,
        offered: 0,
    };
    // Carrier sense resolution: stations starting within the same
    // mini-slot cannot hear each other in time.
    const MINI_SLOTS: u64 = 16;

    for slot in 0..slots {
        // Arrivals.
        for st in &mut stations {
            if st.pending.is_none() && rng.chance(p_new) {
                st.pending = Some(slot);
                st.collisions = 0;
                stats.offered += 1;
            }
        }
        // Who is due this slot?
        let mut due: Vec<usize> = Vec::new();
        for (i, st) in stations.iter().enumerate() {
            if matches!(st.pending, Some(at) if at <= slot) {
                due.push(i);
            }
        }
        // Ethernet: listen-before-talk. Each due station picks a random
        // start offset; the earliest wins the channel and later ones
        // sense it busy and politely hold for the next slot (no backoff
        // penalty — deferral is not a collision). Ties within the
        // propagation window collide.
        let transmitters: Vec<usize> = if discipline == ChannelDiscipline::Ethernet && due.len() > 1
        {
            let offsets: Vec<u64> = due.iter().map(|_| rng.range_u64(0, MINI_SLOTS)).collect();
            let min = *offsets.iter().min().expect("due nonempty");
            due.iter()
                .zip(&offsets)
                .filter(|&(_, &o)| o == min)
                .map(|(&i, _)| i)
                .collect()
        } else {
            due
        };
        match transmitters.len() {
            0 => {
                stats.idle += 1;
            }
            1 => {
                stats.successes += 1;
                stations[transmitters[0]].pending = None;
            }
            _ => {
                stats.collisions += 1;
                for &i in &transmitters {
                    let st = &mut stations[i];
                    st.collisions = st.collisions.saturating_add(1);
                    let delay = match discipline {
                        ChannelDiscipline::Fixed => 1,
                        ChannelDiscipline::Aloha | ChannelDiscipline::Ethernet => {
                            // Binary exponential backoff, capped window.
                            let window = 1u64 << st.collisions.min(10);
                            1 + rng.range_u64(0, window)
                        }
                    };
                    st.pending = Some(slot + delay);
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_channel_is_idle() {
        let s = simulate_channel(ChannelDiscipline::Aloha, 10, 0.0, 1000, 1);
        assert_eq!(s.successes, 0);
        assert_eq!(s.idle, 1000);
    }

    #[test]
    fn single_station_never_collides() {
        let s = simulate_channel(ChannelDiscipline::Fixed, 1, 0.5, 10_000, 1);
        assert_eq!(s.collisions, 0);
        assert!(s.throughput() > 0.4);
    }

    #[test]
    fn fixed_discipline_livelocks_under_load() {
        // Two stations colliding with immediate retransmit never
        // recover: throughput collapses.
        let s = simulate_channel(ChannelDiscipline::Fixed, 20, 0.2, 10_000, 1);
        assert!(
            s.throughput() < 0.02,
            "fixed should livelock, got S={}",
            s.throughput()
        );
        assert!(s.collisions > 9000);
    }

    #[test]
    fn aloha_saturates_in_the_textbook_range() {
        // Near its optimum, slotted ALOHA with backoff delivers on the
        // order of 1/e ≈ 0.37 for slotted / 0.18 for the classic pure
        // model; our backoff variant must land well above Fixed and
        // meaningfully below Ethernet at high load.
        let s = simulate_channel(ChannelDiscipline::Aloha, 50, 0.02, 20_000, 1);
        let t = s.throughput();
        assert!((0.10..0.60).contains(&t), "aloha S={t}");
    }

    #[test]
    fn ethernet_beats_aloha_at_high_load() {
        let a = simulate_channel(ChannelDiscipline::Aloha, 50, 0.05, 20_000, 1);
        let e = simulate_channel(ChannelDiscipline::Ethernet, 50, 0.05, 20_000, 1);
        assert!(
            e.throughput() > a.throughput(),
            "ethernet {} vs aloha {}",
            e.throughput(),
            a.throughput()
        );
    }

    #[test]
    fn offered_load_accounts_new_frames_only() {
        let s = simulate_channel(ChannelDiscipline::Aloha, 10, 0.1, 5_000, 2);
        // G is computed from arrivals, not retransmissions.
        assert!(s.offered_load() <= 10.0 * 0.1 + 0.1);
        assert!(s.offered > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_channel(ChannelDiscipline::Aloha, 30, 0.03, 10_000, 7);
        let b = simulate_channel(ChannelDiscipline::Aloha, 30, 0.03, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn conservation_of_slots() {
        let s = simulate_channel(ChannelDiscipline::Ethernet, 25, 0.05, 8_000, 3);
        assert_eq!(s.successes + s.collisions + s.idle, s.slots);
    }
}
