//! Deterministic randomness for simulations.
//!
//! One master seed fans out to per-client streams via [`SimRng::fork`],
//! so adding a client or reordering initialization does not perturb the
//! randomness other clients see — a property the figure regressions
//! rely on.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A seeded random stream with simulation-flavoured helpers.
pub struct SimRng {
    inner: StdRng,
    /// The construction seed, kept so [`SimRng::fork`] stays
    /// independent of how many values were drawn.
    tag: u64,
}

impl SimRng {
    /// A stream from a master seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            tag: seed,
        }
    }

    /// Derive an independent stream for sub-entity `index` without
    /// consuming randomness from this stream.
    pub fn fork(&self, index: u64) -> SimRng {
        // SplitMix64 over (our seed-derived tag, index): cheap,
        // well-distributed, and independent of draw order.
        let mut z = self.tag ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform(0.0, 1.0) < p
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

// A tag captured at construction so `fork` is draw-order independent.
// Stored alongside the RNG.
impl SimRng {
    /// Access the underlying rand RNG (e.g. to seed an ftsh VM).
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_independent_of_draw_order() {
        let mut a = SimRng::new(7);
        let b = SimRng::new(7);
        // Draw from `a` first; forks must still match.
        let _ = a.next_u64();
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        for _ in 0..16 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn forks_differ_by_index() {
        let r = SimRng::new(7);
        let mut f1 = r.fork(1);
        let mut f2 = r.fork(2);
        let same = (0..32).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(1.0, 2.0);
            assert!((1.0..2.0).contains(&x));
        }
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
        assert_eq!(r.range_u64(7, 7), 7);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
