//! # simgrid — a discrete-event grid substrate
//!
//! The paper evaluates the Ethernet approach on a real testbed: a
//! Condor scheduler driven to file-descriptor exhaustion, an NFS buffer
//! filled by producers, and replicated web servers, one of which is a
//! black hole. This crate is the synthetic equivalent: a deterministic
//! discrete-event kernel ([`EventQueue`]) plus models of the three
//! contended resources:
//!
//! * [`FdTable`] — a kernel file-descriptor table with conservation
//!   accounting (the unexpected contended resource of §5's first
//!   scenario);
//! * [`DiskBuffer`] — a shared output buffer with in-progress vs.
//!   complete files, mid-write ENOSPC, and the paper's free-space
//!   estimator for carrier sense;
//! * [`FileServer`] — a single-threaded file server with a FIFO accept
//!   queue, or a *black hole* that accepts connections and never sends
//!   a byte.
//!
//! Time is `retry::Time` — the same virtual instants the ftsh VM
//! consumes — so whole populations of VMs can be multiplexed over one
//! queue.

#![warn(missing_docs)]

pub mod channel;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod postmortem;
pub mod resources;
pub mod rng;
pub mod trace;

pub use channel::{simulate_channel, ChannelDiscipline, ChannelStats};
pub use events::EventQueue;
pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use metrics::{json_escape, percentile, Series, SeriesSet};
pub use postmortem::TraceSummary;
pub use resources::disk::{DiskBuffer, FileId, WriteError};
pub use resources::fdtable::{FdExhausted, FdTable};
pub use resources::server::{Admission, FileServer, ServerKind};
pub use rng::SimRng;
pub use trace::{SharedSink, TraceEv, TraceRecord, TraceSink};
