//! The unified structured-trace pipeline (paper §4's event log, grown
//! into a cross-layer artifact).
//!
//! Section 4 treats the ftsh log as a first-class object: attempt
//! counts, failure-branch frequency, post-mortem timelines. This
//! module is the shared vocabulary for that data across every
//! execution mode: the ftsh VM emits one span per `try` attempt
//! (attempt number, budget remaining, backoff delay drawn, outcome),
//! the scenario worlds emit the contention counters the figures plot
//! (deferrals, collisions, carrier-sense reads, schedd crashes, ENOSPC
//! hits), and both the sim driver (`gridworld::driver`) and the real
//! driver (`procman::driver`) route them through one [`TraceSink`].
//!
//! Two properties are load-bearing:
//!
//! * **Traces off ⇒ zero cost.** Emission sites are guarded by a
//!   single `Option` test; no allocation, no formatting, no lock when
//!   no sink is installed. The `engine` bench and `figures --stats`
//!   hold this at ≤ 2% of the committed baseline.
//! * **Bit-determinism per seed.** Records carry integer microsecond
//!   timestamps and serialize with a fixed field order, so two runs at
//!   the same seed produce byte-identical JSONL — traces are
//!   regression-testable artifacts, and a parallel sweep concatenates
//!   per-point buffers in point order to match the sequential run
//!   exactly.

use crate::metrics::json_escape;
use retry::{Dur, Time};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// `client` / `task` value for records not attributable to one client
/// task (world-level counters such as a schedd crash).
pub const NO_ID: i64 = -1;

/// What happened at one traced instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEv {
    /// A `try` frame admitted attempt `attempt` (1-based). `budget` is
    /// the time remaining until the frame's deadline, or `None` for an
    /// unbounded `try`.
    AttemptStart {
        /// 1-based attempt number within the `try` frame.
        attempt: u32,
        /// Time left before the `try` deadline (`None` = unbounded).
        budget: Option<Dur>,
    },
    /// The `try` body succeeded on attempt `attempt`; the span closes.
    AttemptOk {
        /// The attempt that succeeded.
        attempt: u32,
    },
    /// Attempt `attempt` failed and the exponential-backoff policy drew
    /// `delay` before the next admission.
    Backoff {
        /// The attempt that failed.
        attempt: u32,
        /// The randomized delay drawn before the next attempt.
        delay: Dur,
    },
    /// The `try` budget was spent between attempts; the frame failed.
    TryExhausted,
    /// The `try` deadline fired mid-attempt; the body was cancelled.
    TryTimeout,
    /// A failed `try` transferred control to its `catch` block.
    CatchEntered,
    /// An external command was handed to the executor.
    CmdStart {
        /// Program name (argv\[0\]).
        program: String,
    },
    /// An external command completed.
    CmdEnd {
        /// Program name (argv\[0\]).
        program: String,
        /// True when the command exited successfully.
        ok: bool,
    },
    /// An in-flight command was cancelled (deadline or branch loss).
    CmdKilled {
        /// Program name (argv\[0\]).
        program: String,
    },
    /// The client's whole script finished one unit of work.
    UnitDone {
        /// True when the script succeeded.
        ok: bool,
    },
    /// A carrier-sense probe read the contended resource's free level.
    CarrierSense {
        /// The observed free level (FDs, buffer bytes ÷ chunk, …).
        free: u64,
    },
    /// Carrier sense reported the medium busy; the client deferred.
    Deferral,
    /// Two transfers collided on the contended resource.
    Collision,
    /// The overloaded schedd crashed (the paper's broadcast jam).
    ScheddCrash,
    /// A write hit mid-file ENOSPC.
    Enospc,
    /// A fault plan injected a fault (`simgrid::faults`): `kind` is
    /// the [`FaultKind`] tag and `detail` its parameters, rendered in
    /// `key=value` form.
    ///
    /// [`FaultKind`]: crate::faults::FaultKind
    FaultInjected {
        /// The fault-kind tag (e.g. `schedd-kill`, `enospc-window`).
        kind: String,
        /// Parameter summary (e.g. `server=yyy enable=true`).
        detail: String,
    },
    /// The run's event queue clamped past-scheduled events forward to
    /// `now` this many times. Emitted once at the end of a traced run,
    /// and only when the count is nonzero — a healthy run never
    /// schedules into the past.
    QueueClamps {
        /// Past-schedules silently moved to `now`.
        count: u64,
    },
}

impl TraceEv {
    /// The `ev` tag this variant serializes under.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEv::AttemptStart { .. } => "attempt-start",
            TraceEv::AttemptOk { .. } => "attempt-ok",
            TraceEv::Backoff { .. } => "backoff",
            TraceEv::TryExhausted => "try-exhausted",
            TraceEv::TryTimeout => "try-timeout",
            TraceEv::CatchEntered => "catch",
            TraceEv::CmdStart { .. } => "cmd-start",
            TraceEv::CmdEnd { .. } => "cmd-end",
            TraceEv::CmdKilled { .. } => "cmd-killed",
            TraceEv::UnitDone { .. } => "unit-done",
            TraceEv::CarrierSense { .. } => "carrier-sense",
            TraceEv::Deferral => "deferral",
            TraceEv::Collision => "collision",
            TraceEv::ScheddCrash => "schedd-crash",
            TraceEv::Enospc => "enospc",
            TraceEv::FaultInjected { .. } => "fault",
            TraceEv::QueueClamps { .. } => "queue-clamps",
        }
    }
}

/// One structured trace record: an event at a virtual instant,
/// attributed to a client (and task within that client's VM) where one
/// is known, or [`NO_ID`] for world-scope events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual instant of the event.
    pub t: Time,
    /// Client index within the scenario, or [`NO_ID`].
    pub client: i64,
    /// Task id within the client's VM, or [`NO_ID`].
    pub task: i64,
    /// What happened.
    pub ev: TraceEv,
}

impl TraceRecord {
    /// Serialize as one JSONL line (no trailing newline). Field order
    /// is fixed and timestamps are integer microseconds, so equal
    /// records always produce equal bytes.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"t\":{},\"client\":{},\"task\":{},\"ev\":\"{}\"",
            self.t.as_micros(),
            self.client,
            self.task,
            self.ev.tag()
        );
        match &self.ev {
            TraceEv::AttemptStart { attempt, budget } => {
                let _ = write!(out, ",\"attempt\":{attempt},\"budget_us\":");
                match budget {
                    Some(d) => {
                        let _ = write!(out, "{}", d.as_micros());
                    }
                    None => out.push_str("null"),
                }
            }
            TraceEv::AttemptOk { attempt } => {
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            TraceEv::Backoff { attempt, delay } => {
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"delay_us\":{}",
                    delay.as_micros()
                );
            }
            TraceEv::CmdStart { program } | TraceEv::CmdKilled { program } => {
                let _ = write!(out, ",\"program\":\"{}\"", json_escape(program));
            }
            TraceEv::CmdEnd { program, ok } => {
                let _ = write!(out, ",\"program\":\"{}\",\"ok\":{ok}", json_escape(program));
            }
            TraceEv::UnitDone { ok } => {
                let _ = write!(out, ",\"ok\":{ok}");
            }
            TraceEv::CarrierSense { free } => {
                let _ = write!(out, ",\"free\":{free}");
            }
            TraceEv::FaultInjected { kind, detail } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"detail\":\"{}\"",
                    json_escape(kind),
                    json_escape(detail)
                );
            }
            TraceEv::QueueClamps { count } => {
                let _ = write!(out, ",\"count\":{count}");
            }
            TraceEv::TryExhausted
            | TraceEv::TryTimeout
            | TraceEv::CatchEntered
            | TraceEv::Deferral
            | TraceEv::Collision
            | TraceEv::ScheddCrash
            | TraceEv::Enospc => {}
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line produced by [`to_json_line`]. Returns an
    /// error message naming the missing or malformed field.
    ///
    /// [`to_json_line`]: TraceRecord::to_json_line
    pub fn parse_json_line(line: &str) -> Result<TraceRecord, String> {
        let fields = parse_flat_object(line)?;
        let num = |k: &str| -> Result<i64, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, JVal::Num(n))) => Ok(*n),
                Some(_) => Err(format!("field {k:?} is not a number")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let opt_num = |k: &str| -> Result<Option<i64>, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, JVal::Num(n))) => Ok(Some(*n)),
                Some((_, JVal::Null)) => Ok(None),
                Some(_) => Err(format!("field {k:?} is not a number or null")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let text = |k: &str| -> Result<String, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, JVal::Str(s))) => Ok(s.clone()),
                Some(_) => Err(format!("field {k:?} is not a string")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let flag = |k: &str| -> Result<bool, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, JVal::Bool(b))) => Ok(*b),
                Some(_) => Err(format!("field {k:?} is not a bool")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let tag = text("ev")?;
        let ev = match tag.as_str() {
            "attempt-start" => TraceEv::AttemptStart {
                attempt: num("attempt")? as u32,
                budget: opt_num("budget_us")?.map(|us| Dur::from_micros(us as u64)),
            },
            "attempt-ok" => TraceEv::AttemptOk {
                attempt: num("attempt")? as u32,
            },
            "backoff" => TraceEv::Backoff {
                attempt: num("attempt")? as u32,
                delay: Dur::from_micros(num("delay_us")? as u64),
            },
            "try-exhausted" => TraceEv::TryExhausted,
            "try-timeout" => TraceEv::TryTimeout,
            "catch" => TraceEv::CatchEntered,
            "cmd-start" => TraceEv::CmdStart {
                program: text("program")?,
            },
            "cmd-end" => TraceEv::CmdEnd {
                program: text("program")?,
                ok: flag("ok")?,
            },
            "cmd-killed" => TraceEv::CmdKilled {
                program: text("program")?,
            },
            "unit-done" => TraceEv::UnitDone { ok: flag("ok")? },
            "carrier-sense" => TraceEv::CarrierSense {
                free: num("free")? as u64,
            },
            "deferral" => TraceEv::Deferral,
            "collision" => TraceEv::Collision,
            "schedd-crash" => TraceEv::ScheddCrash,
            "enospc" => TraceEv::Enospc,
            "fault" => TraceEv::FaultInjected {
                kind: text("kind")?,
                detail: text("detail")?,
            },
            "queue-clamps" => TraceEv::QueueClamps {
                count: num("count")? as u64,
            },
            other => return Err(format!("unknown ev tag {other:?}")),
        };
        Ok(TraceRecord {
            t: Time::from_micros(num("t")? as u64),
            client: num("client")?,
            task: num("task")?,
            ev,
        })
    }
}

/// A scalar value inside one flat JSON object.
enum JVal {
    Num(i64),
    Str(String),
    Bool(bool),
    Null,
}

/// Minimal scanner for the flat (non-nested) JSON objects this module
/// emits; the workspace deliberately carries no serde dependency.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JVal)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
                continue;
            }
            Some('"') => {}
            _ => return Err("expected key".into()),
        }
        let key = parse_string(&mut chars)?;
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("missing ':' after {key:?}"));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some('"') => JVal::Str(parse_string(&mut chars)?),
            Some('t') => {
                expect_word(&mut chars, "true")?;
                JVal::Bool(true)
            }
            Some('f') => {
                expect_word(&mut chars, "false")?;
                JVal::Bool(false)
            }
            Some('n') => {
                expect_word(&mut chars, "null")?;
                JVal::Null
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut s = String::new();
                while chars
                    .peek()
                    .is_some_and(|c| *c == '-' || c.is_ascii_digit())
                {
                    s.push(chars.next().expect("peeked"));
                }
                JVal::Num(s.parse().map_err(|e| format!("bad number {s:?}: {e}"))?)
            }
            _ => return Err(format!("bad value for {key:?}")),
        };
        fields.push((key, val));
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).ok_or("bad codepoint")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn expect_word(chars: &mut std::iter::Peekable<std::str::Chars>, word: &str) -> Result<(), String> {
    for want in word.chars() {
        if chars.next() != Some(want) {
            return Err(format!("expected {word:?}"));
        }
    }
    Ok(())
}

/// Receives trace records. Implementations must be cheap: emission
/// sites hold a lock only for the duration of one `record` call.
pub trait TraceSink: Send {
    /// Accept one record.
    fn record(&mut self, rec: &TraceRecord);
}

/// A sink handle shareable across a VM population and its world.
/// Cloning is an `Arc` bump; a `None` sink is the traces-off fast
/// path.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Wrap a sink for sharing.
pub fn shared<S: TraceSink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Record `ev` into `sink` if one is installed; the traces-off path is
/// a single `Option` test.
#[inline]
pub fn emit(sink: &Option<SharedSink>, t: Time, client: i64, task: i64, ev: TraceEv) {
    if let Some(s) = sink {
        s.lock().expect("trace sink poisoned").record(&TraceRecord {
            t,
            client,
            task,
            ev,
        });
    }
}

/// A bounded in-memory ring keeping the most recent `cap` records —
/// the "flight recorder" for long real-driver runs where a full trace
/// would be unbounded.
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    /// Total records offered, including those the ring has dropped.
    seen: u64,
}

impl RingSink {
    /// A ring keeping the last `cap` records (`cap` ≥ 1).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.clamp(1, 4096)),
            seen: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records offered over the ring's lifetime (≥ [`len`]).
    ///
    /// [`len`]: RingSink::len
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Drain the ring into a `Vec`, oldest first.
    pub fn into_vec(self) -> Vec<TraceRecord> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
        self.seen += 1;
    }
}

/// An unbounded collector, the building block for per-point trace
/// buffers in parallel sweeps.
#[derive(Default)]
pub struct VecSink {
    recs: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty collector.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The collected records in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.recs
    }

    /// Take the collected records, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.recs)
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.recs.push(rec.clone());
    }
}

/// A JSONL file sink: one record per line, written as it arrives.
///
/// Flushes the underlying writer on drop, so a sink abandoned without
/// [`JsonlSink::into_inner`] — a deadline kill unwinding the driver, a
/// daemon worker dropping its connection state — still lands its final
/// complete line on disk rather than leaving it truncated in a buffer.
pub struct JsonlSink<W: std::io::Write + Send> {
    /// `None` only after `into_inner` has taken the writer.
    w: Option<W>,
    /// First write error, if any (later records are dropped).
    error: Option<std::io::Error>,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wrap a writer. Consider `std::io::BufWriter` for files.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink {
            w: Some(w),
            error: None,
        }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        let mut w = self.w.take().expect("writer taken once");
        w.flush()?;
        Ok(w)
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let Some(w) = self.w.as_mut() else { return };
        let line = rec.to_json_line();
        if let Err(e) = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

impl<W: std::io::Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(w) = self.w.as_mut() {
            // Best effort: drop runs on kill/unwind paths where an
            // error has nowhere to go.
            let _ = w.flush();
        }
    }
}

/// Serialize records as a JSONL document (one line each, trailing
/// newline included when non-empty).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Parse a JSONL document into records, reporting the first bad line.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| TraceRecord::parse_json_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, client: i64, ev: TraceEv) -> TraceRecord {
        TraceRecord {
            t: Time::from_micros(t_us),
            client,
            task: 1,
            ev,
        }
    }

    #[test]
    fn json_roundtrip_every_variant() {
        let evs = vec![
            TraceEv::AttemptStart {
                attempt: 3,
                budget: Some(Dur::from_secs(40)),
            },
            TraceEv::AttemptStart {
                attempt: 1,
                budget: None,
            },
            TraceEv::AttemptOk { attempt: 2 },
            TraceEv::Backoff {
                attempt: 1,
                delay: Dur::from_millis(1500),
            },
            TraceEv::TryExhausted,
            TraceEv::TryTimeout,
            TraceEv::CatchEntered,
            TraceEv::CmdStart {
                program: "wget".into(),
            },
            TraceEv::CmdEnd {
                program: "cut -d\" \" -f2".into(),
                ok: false,
            },
            TraceEv::CmdKilled {
                program: "line\nbreak".into(),
            },
            TraceEv::UnitDone { ok: true },
            TraceEv::CarrierSense { free: 42 },
            TraceEv::Deferral,
            TraceEv::Collision,
            TraceEv::ScheddCrash,
            TraceEv::Enospc,
            TraceEv::FaultInjected {
                kind: "schedd-kill".into(),
                detail: "downtime_us=5000000".into(),
            },
        ];
        for (i, ev) in evs.into_iter().enumerate() {
            let r = rec(i as u64 * 1_000_000, i as i64, ev);
            let line = r.to_json_line();
            let back = TraceRecord::parse_json_line(&line).expect("parses");
            assert_eq!(back, r, "roundtrip failed for {line}");
        }
    }

    #[test]
    fn world_scope_record_uses_no_id() {
        let r = TraceRecord {
            t: Time::from_secs(9),
            client: NO_ID,
            task: NO_ID,
            ev: TraceEv::ScheddCrash,
        };
        let line = r.to_json_line();
        assert_eq!(
            line,
            "{\"t\":9000000,\"client\":-1,\"task\":-1,\"ev\":\"schedd-crash\"}"
        );
        assert_eq!(TraceRecord::parse_json_line(&line).unwrap(), r);
    }

    #[test]
    fn jsonl_roundtrip_and_blank_lines() {
        let recs = vec![
            rec(1, 0, TraceEv::Deferral),
            rec(2, 1, TraceEv::UnitDone { ok: false }),
        ];
        let doc = to_jsonl(&recs);
        assert_eq!(doc.lines().count(), 2);
        let back = from_jsonl(&format!("\n{doc}\n")).expect("parses");
        assert_eq!(back, recs);
        assert!(from_jsonl("{\"t\":bogus}").is_err());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for i in 0..10u64 {
            ring.record(&rec(i, 0, TraceEv::Deferral));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 10);
        let kept: Vec<u64> = ring.records().map(|r| r.t.as_micros()).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(ring.into_vec().len(), 3);
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let buf = Arc::new(Mutex::new(VecSink::new()));
        let sink: SharedSink = buf.clone();
        let none: Option<SharedSink> = None;
        emit(&none, Time::ZERO, 0, 0, TraceEv::Deferral); // no-op
        emit(&Some(sink), Time::from_secs(1), 2, 3, TraceEv::Collision);
        let recs = buf.lock().unwrap().take();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].client, 2);
        assert_eq!(recs[0].ev, TraceEv::Collision);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(5, 0, TraceEv::Enospc));
        sink.record(&rec(6, 1, TraceEv::CarrierSense { free: 7 }));
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed[1].ev, TraceEv::CarrierSense { free: 7 });
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        // Regression: a sink abandoned without `into_inner` (deadline
        // kill, daemon disconnect) must not leave the final record
        // stuck in a buffer as a truncated line on disk.
        let dir = std::env::temp_dir().join(format!("eg_trace_drop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.jsonl");
        {
            let f = std::fs::File::create(&path).unwrap();
            let mut sink = JsonlSink::new(std::io::BufWriter::new(f));
            sink.record(&rec(1, 0, TraceEv::Deferral));
            sink.record(&rec(2, 1, TraceEv::CarrierSense { free: 3 }));
            // Dropped here — no into_inner.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "final line truncated: {text:?}");
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].ev, TraceEv::CarrierSense { free: 3 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_behind_shared_sink() {
        // The `ftsh --trace` path holds the sink as
        // Arc<Mutex<dyn TraceSink>> and relies on the drop at end of
        // main — the flush must fire through the trait object too.
        let dir = std::env::temp_dir().join(format!("eg_trace_drop_dyn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop_dyn.jsonl");
        {
            let f = std::fs::File::create(&path).unwrap();
            let sink: SharedSink = Arc::new(Mutex::new(JsonlSink::new(std::io::BufWriter::new(f))));
            emit(&Some(sink), Time::from_secs(9), 4, 2, TraceEv::Enospc);
            // Arc dropped here; last strong ref runs JsonlSink::drop.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].client, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
