//! Deterministic, seeded fault-injection plans.
//!
//! The paper's argument is that the Ethernet discipline survives
//! *induced* failure — crashed schedds, full disks, black-holed
//! servers — yet the seed repo hard-wired each failure mode into one
//! scenario. A [`FaultPlan`] lifts that physics into data: a list of
//! seeded, time-triggered [`FaultSpec`]s that the sim driver arms at
//! startup and fires deterministically from the virtual clock plus a
//! per-plan RNG stream. Every injection is emitted as a
//! `TraceEv::FaultInjected` record through the structured-trace
//! pipeline, so a post-mortem can always reconstruct *which* faults a
//! run was subjected to.
//!
//! Two families of spec live in one plan:
//!
//! * **Injections** — time-triggered events the driver schedules
//!   (schedd kill/restart, ENOSPC windows, free-space lies, black-hole
//!   toggles, per-channel message loss and latency spikes, VM clock
//!   skew, deterministic first-N command failures).
//! * **Physics** — constants a scenario world reads at construction
//!   ([`FaultKind::ScheddCrashOnStarvation`],
//!   [`FaultKind::EnospcAtCapacity`], [`FaultKind::BlackHoleServers`]).
//!   The three stock scenarios express their built-in failure modes as
//!   exactly these specs, so the default plans reproduce the seed
//!   behaviour bit-for-bit while custom plans can move every knob.
//!
//! Plans serialize to a small JSON document (`PLAN.json`) consumed by
//! `figures --faults` and the conformance harness; see
//! [`FaultPlan::to_json`] for the schema.

use crate::rng::SimRng;
use retry::{Dur, Time};
use std::fmt::Write as _;

/// What a single fault does when it fires (or, for the physics kinds,
/// which constant it pins).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Kill the scenario's schedd (service process) immediately. The
    /// schedd restarts after `downtime`, or after the scenario's own
    /// default downtime when `None`.
    ScheddKill {
        /// Time until automatic restart (`None`: scenario default).
        downtime: Option<Dur>,
    },
    /// Restart the schedd now if it is down (no-op otherwise).
    ScheddRestart,
    /// All disk writes report mid-file ENOSPC for `duration`,
    /// regardless of actual free space.
    EnospcWindow {
        /// How long writes keep failing.
        duration: Dur,
    },
    /// The free-space estimator lies by `delta_bytes` (positive:
    /// reports more free than real; negative: less) for `duration` —
    /// an attack on carrier sense itself.
    FreeSpaceLie {
        /// Bytes added to every estimate while active.
        delta_bytes: i64,
        /// How long the estimator keeps lying.
        duration: Dur,
    },
    /// Turn a named server into a black hole (`enable`) or back into a
    /// normal server (`!enable`). Repeating this spec flaps the server.
    ServerBlackHole {
        /// Server name as the scenario knows it (e.g. `yyy`).
        server: String,
        /// `true`: become a black hole; `false`: recover.
        enable: bool,
    },
    /// While active, completions on `channel` (program name) are lost
    /// with `probability` (drawn from the plan RNG stream): the command
    /// appears to fail, as a dropped reply does.
    MsgLoss {
        /// Program name whose completions are lossy.
        channel: String,
        /// Per-message loss probability in `[0, 1]`.
        probability: f64,
        /// How long the channel stays lossy.
        duration: Dur,
    },
    /// While active, completions on `channel` are delayed by `extra`.
    LatencySpike {
        /// Program name whose completions are delayed.
        channel: String,
        /// Added latency per completion.
        extra: Dur,
        /// How long the spike lasts.
        duration: Dur,
    },
    /// Client `client`'s VM clock runs `skew_us` microseconds ahead
    /// (positive) or behind (negative) the sim clock from the trigger
    /// onward.
    ClockSkew {
        /// Client index within the scenario.
        client: usize,
        /// Offset applied to the VM's view of now, in microseconds.
        skew_us: i64,
    },
    /// Kill client `client`'s VM mid-run: the in-flight work unit is
    /// lost (live commands are cancelled, late completions dropped) and
    /// the client restarts from a fresh VM after `restart`, or stays
    /// dead for the rest of the run when `None` — the rank-kill
    /// primitive coordinated (all-reduce / DAG) workloads are tested
    /// under.
    ClientKill {
        /// Client index within the scenario.
        client: usize,
        /// Delay until the world is asked for a replacement VM
        /// (`None`: the client never comes back).
        restart: Option<Dur>,
    },
    /// The first `n` invocations of `program` fail deterministically —
    /// the injection the sim↔real conformance harness mirrors with
    /// shim commands on the real side.
    CmdFailFirst {
        /// Program name (argv\[0\], basename-matched).
        program: String,
        /// How many leading invocations fail.
        n: u32,
    },
    /// Physics: the schedd crashes when it cannot allocate
    /// `service_fds` transient descriptors for a new service, and
    /// rejects submissions once `backlog` jobs queue (the submit
    /// scenario's built-in failure mode).
    ScheddCrashOnStarvation {
        /// Transient FDs each service slot needs.
        service_fds: u32,
        /// Queue length at which new submissions are refused.
        backlog: usize,
    },
    /// Physics: the shared disk buffer holds `capacity_bytes`; writes
    /// beyond it hit mid-file ENOSPC (the buffer scenario's built-in
    /// failure mode).
    EnospcAtCapacity {
        /// Total buffer capacity in bytes.
        capacity_bytes: u64,
    },
    /// Physics: these named servers start as black holes (the reader
    /// scenario's built-in failure mode).
    BlackHoleServers {
        /// Server names that accept connections but never serve.
        servers: Vec<String>,
    },
}

impl FaultKind {
    /// The tag this kind serializes under (also the `kind` field of
    /// the `FaultInjected` trace event).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::ScheddKill { .. } => "schedd-kill",
            FaultKind::ScheddRestart => "schedd-restart",
            FaultKind::EnospcWindow { .. } => "enospc-window",
            FaultKind::FreeSpaceLie { .. } => "free-space-lie",
            FaultKind::ServerBlackHole { .. } => "black-hole",
            FaultKind::MsgLoss { .. } => "msg-loss",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::ClockSkew { .. } => "clock-skew",
            FaultKind::ClientKill { .. } => "client-kill",
            FaultKind::CmdFailFirst { .. } => "cmd-fail-first",
            FaultKind::ScheddCrashOnStarvation { .. } => "schedd-crash-on-starvation",
            FaultKind::EnospcAtCapacity { .. } => "enospc-at-capacity",
            FaultKind::BlackHoleServers { .. } => "black-hole-servers",
        }
    }

    /// Physics kinds configure a world at construction; they are not
    /// scheduled as time-triggered injections.
    pub fn is_physics(&self) -> bool {
        matches!(
            self,
            FaultKind::ScheddCrashOnStarvation { .. }
                | FaultKind::EnospcAtCapacity { .. }
                | FaultKind::BlackHoleServers { .. }
                | FaultKind::CmdFailFirst { .. }
        )
    }

    /// Parameter summary in `key=value` form (the `detail` field of
    /// the `FaultInjected` trace event).
    pub fn detail(&self) -> String {
        let mut s = String::new();
        match self {
            FaultKind::ScheddKill { downtime } => match downtime {
                Some(d) => {
                    let _ = write!(s, "downtime_us={}", d.as_micros());
                }
                None => s.push_str("downtime_us=default"),
            },
            FaultKind::ScheddRestart => {}
            FaultKind::EnospcWindow { duration } => {
                let _ = write!(s, "duration_us={}", duration.as_micros());
            }
            FaultKind::FreeSpaceLie {
                delta_bytes,
                duration,
            } => {
                let _ = write!(
                    s,
                    "delta_bytes={delta_bytes} duration_us={}",
                    duration.as_micros()
                );
            }
            FaultKind::ServerBlackHole { server, enable } => {
                let _ = write!(s, "server={server} enable={enable}");
            }
            FaultKind::MsgLoss {
                channel,
                probability,
                duration,
            } => {
                let _ = write!(
                    s,
                    "channel={channel} probability={probability} duration_us={}",
                    duration.as_micros()
                );
            }
            FaultKind::LatencySpike {
                channel,
                extra,
                duration,
            } => {
                let _ = write!(
                    s,
                    "channel={channel} extra_us={} duration_us={}",
                    extra.as_micros(),
                    duration.as_micros()
                );
            }
            FaultKind::ClockSkew { client, skew_us } => {
                let _ = write!(s, "client={client} skew_us={skew_us}");
            }
            FaultKind::ClientKill { client, restart } => match restart {
                Some(d) => {
                    let _ = write!(s, "client={client} restart_us={}", d.as_micros());
                }
                None => {
                    let _ = write!(s, "client={client} restart_us=none");
                }
            },
            FaultKind::CmdFailFirst { program, n } => {
                let _ = write!(s, "program={program} n={n}");
            }
            FaultKind::ScheddCrashOnStarvation {
                service_fds,
                backlog,
            } => {
                let _ = write!(s, "service_fds={service_fds} backlog={backlog}");
            }
            FaultKind::EnospcAtCapacity { capacity_bytes } => {
                let _ = write!(s, "capacity_bytes={capacity_bytes}");
            }
            FaultKind::BlackHoleServers { servers } => {
                let _ = write!(s, "servers={}", servers.join(","));
            }
        }
        s
    }
}

/// One fault in a plan: a kind, a first trigger instant, and an
/// optional repeat schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Virtual instant of the first trigger.
    pub at: Time,
    /// Repeat period after the first trigger (`None`: fire once).
    pub every: Option<Dur>,
    /// Total number of triggers (≥ 1; ignored without `every`).
    pub count: u32,
    /// What happens at each trigger.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A spec firing once at `at`.
    pub fn once(at: Time, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            at,
            every: None,
            count: 1,
            kind,
        }
    }

    /// A spec firing `count` times, first at `at`, then every `every`.
    pub fn repeating(at: Time, every: Dur, count: u32, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            at,
            every: Some(every),
            count: count.max(1),
            kind,
        }
    }

    /// A physics spec (applies at construction; never scheduled).
    pub fn physics(kind: FaultKind) -> FaultSpec {
        debug_assert!(kind.is_physics(), "not a physics kind: {}", kind.tag());
        FaultSpec::once(Time::ZERO, kind)
    }
}

/// A seeded collection of [`FaultSpec`]s: the whole adversarial
/// schedule for one run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the plan's private RNG stream (used only by
    /// probabilistic kinds such as [`FaultKind::MsgLoss`]); independent
    /// of every scenario RNG, so arming a plan never perturbs the
    /// workload's own draws.
    pub seed: u64,
    /// The faults, in declaration order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Builder: append a spec.
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// The plan's private RNG stream (decorrelated from scenario
    /// seeds by a fixed tweak).
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.seed ^ 0xFA_17_FA_17)
    }

    /// Append another plan's specs (custom injections on top of a
    /// scenario's built-in physics).
    pub fn extend_from(&mut self, other: &FaultPlan) {
        self.specs.extend(other.specs.iter().cloned());
    }

    /// The time-triggered injection specs, with their indices.
    pub fn injections(&self) -> impl Iterator<Item = (usize, &FaultSpec)> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.kind.is_physics())
    }

    /// The last `ScheddCrashOnStarvation` physics spec, if any.
    pub fn crash_physics(&self) -> Option<(u32, usize)> {
        self.specs.iter().rev().find_map(|s| match s.kind {
            FaultKind::ScheddCrashOnStarvation {
                service_fds,
                backlog,
            } => Some((service_fds, backlog)),
            _ => None,
        })
    }

    /// The last `EnospcAtCapacity` physics spec, if any.
    pub fn capacity_physics(&self) -> Option<u64> {
        self.specs.iter().rev().find_map(|s| match s.kind {
            FaultKind::EnospcAtCapacity { capacity_bytes } => Some(capacity_bytes),
            _ => None,
        })
    }

    /// The last `BlackHoleServers` physics spec, if any.
    pub fn black_hole_physics(&self) -> Option<&[String]> {
        self.specs.iter().rev().find_map(|s| match &s.kind {
            FaultKind::BlackHoleServers { servers } => Some(servers.as_slice()),
            _ => None,
        })
    }

    /// Sum of `CmdFailFirst.n` over specs matching `program` — how
    /// many leading invocations of `program` must fail.
    pub fn fail_first(&self, program: &str) -> u32 {
        self.specs
            .iter()
            .filter_map(|s| match &s.kind {
                FaultKind::CmdFailFirst { program: p, n } if p == program => Some(*n),
                _ => None,
            })
            .sum()
    }

    /// Serialize as the `PLAN.json` document:
    ///
    /// ```json
    /// {
    ///   "seed": 42,
    ///   "specs": [
    ///     {"kind": "schedd-kill", "at_us": 60000000,
    ///      "every_us": 120000000, "count": 5, "downtime_us": 30000000},
    ///     {"kind": "black-hole", "at_us": 10000000,
    ///      "server": "yyy", "enable": true}
    ///   ]
    /// }
    /// ```
    ///
    /// Kind-specific fields: `downtime_us` (schedd-kill, null for the
    /// scenario default); `duration_us` (enospc-window, free-space-lie,
    /// msg-loss, latency-spike); `delta_bytes` (free-space-lie);
    /// `server`, `enable` (black-hole); `channel`, `probability`
    /// (msg-loss); `extra_us` (latency-spike); `client`, `skew_us`
    /// (clock-skew); `client`, `restart_us` (client-kill, null for no
    /// restart); `program`, `n` (cmd-fail-first); `service_fds`,
    /// `backlog` (schedd-crash-on-starvation); `capacity_bytes`
    /// (enospc-at-capacity); `servers` (black-hole-servers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"seed\": {},\n  \"specs\": [", self.seed);
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"kind\": \"{}\", \"at_us\": {}",
                spec.kind.tag(),
                spec.at.as_micros()
            );
            if let Some(e) = spec.every {
                let _ = write!(
                    out,
                    ", \"every_us\": {}, \"count\": {}",
                    e.as_micros(),
                    spec.count
                );
            }
            match &spec.kind {
                FaultKind::ScheddKill { downtime } => match downtime {
                    Some(d) => {
                        let _ = write!(out, ", \"downtime_us\": {}", d.as_micros());
                    }
                    None => out.push_str(", \"downtime_us\": null"),
                },
                FaultKind::ScheddRestart => {}
                FaultKind::EnospcWindow { duration } => {
                    let _ = write!(out, ", \"duration_us\": {}", duration.as_micros());
                }
                FaultKind::FreeSpaceLie {
                    delta_bytes,
                    duration,
                } => {
                    let _ = write!(
                        out,
                        ", \"delta_bytes\": {delta_bytes}, \"duration_us\": {}",
                        duration.as_micros()
                    );
                }
                FaultKind::ServerBlackHole { server, enable } => {
                    let _ = write!(
                        out,
                        ", \"server\": \"{}\", \"enable\": {enable}",
                        crate::metrics::json_escape(server)
                    );
                }
                FaultKind::MsgLoss {
                    channel,
                    probability,
                    duration,
                } => {
                    let _ = write!(
                        out,
                        ", \"channel\": \"{}\", \"probability\": {probability}, \"duration_us\": {}",
                        crate::metrics::json_escape(channel),
                        duration.as_micros()
                    );
                }
                FaultKind::LatencySpike {
                    channel,
                    extra,
                    duration,
                } => {
                    let _ = write!(
                        out,
                        ", \"channel\": \"{}\", \"extra_us\": {}, \"duration_us\": {}",
                        crate::metrics::json_escape(channel),
                        extra.as_micros(),
                        duration.as_micros()
                    );
                }
                FaultKind::ClockSkew { client, skew_us } => {
                    let _ = write!(out, ", \"client\": {client}, \"skew_us\": {skew_us}");
                }
                FaultKind::ClientKill { client, restart } => {
                    let _ = write!(out, ", \"client\": {client}");
                    match restart {
                        Some(d) => {
                            let _ = write!(out, ", \"restart_us\": {}", d.as_micros());
                        }
                        None => out.push_str(", \"restart_us\": null"),
                    }
                }
                FaultKind::CmdFailFirst { program, n } => {
                    let _ = write!(
                        out,
                        ", \"program\": \"{}\", \"n\": {n}",
                        crate::metrics::json_escape(program)
                    );
                }
                FaultKind::ScheddCrashOnStarvation {
                    service_fds,
                    backlog,
                } => {
                    let _ = write!(
                        out,
                        ", \"service_fds\": {service_fds}, \"backlog\": {backlog}"
                    );
                }
                FaultKind::EnospcAtCapacity { capacity_bytes } => {
                    let _ = write!(out, ", \"capacity_bytes\": {capacity_bytes}");
                }
                FaultKind::BlackHoleServers { servers } => {
                    out.push_str(", \"servers\": [");
                    for (j, s) in servers.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{}\"", crate::metrics::json_escape(s));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a `PLAN.json` document (the format [`to_json`] emits).
    ///
    /// [`to_json`]: FaultPlan::to_json
    pub fn parse_json(text: &str) -> Result<FaultPlan, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("plan must be a JSON object")?;
        let seed = match json::get(obj, "seed") {
            Some(v) => v.as_u64().ok_or("\"seed\" must be an integer")?,
            None => 0,
        };
        let mut specs = Vec::new();
        if let Some(sv) = json::get(obj, "specs") {
            let arr = sv.as_array().ok_or("\"specs\" must be an array")?;
            for (i, s) in arr.iter().enumerate() {
                specs.push(parse_spec(s).map_err(|e| format!("specs[{i}]: {e}"))?);
            }
        }
        Ok(FaultPlan { seed, specs })
    }
}

fn parse_spec(v: &json::Value) -> Result<FaultSpec, String> {
    let obj = v.as_object().ok_or("spec must be an object")?;
    let text = |k: &str| -> Result<String, String> {
        json::get(obj, k)
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or(format!("missing string field {k:?}"))
    };
    let int = |k: &str| -> Result<i64, String> {
        json::get(obj, k)
            .and_then(json::Value::as_i64)
            .ok_or(format!("missing integer field {k:?}"))
    };
    let uint = |k: &str| -> Result<u64, String> {
        json::get(obj, k)
            .and_then(json::Value::as_u64)
            .ok_or(format!("missing non-negative integer field {k:?}"))
    };
    let dur = |k: &str| -> Result<Dur, String> { Ok(Dur::from_micros(uint(k)?)) };

    let kind = match text("kind")?.as_str() {
        "schedd-kill" => FaultKind::ScheddKill {
            downtime: match json::get(obj, "downtime_us") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(Dur::from_micros(
                    v.as_u64()
                        .ok_or("\"downtime_us\" must be an integer or null")?,
                )),
            },
        },
        "schedd-restart" => FaultKind::ScheddRestart,
        "enospc-window" => FaultKind::EnospcWindow {
            duration: dur("duration_us")?,
        },
        "free-space-lie" => FaultKind::FreeSpaceLie {
            delta_bytes: int("delta_bytes")?,
            duration: dur("duration_us")?,
        },
        "black-hole" => FaultKind::ServerBlackHole {
            server: text("server")?,
            enable: json::get(obj, "enable")
                .and_then(json::Value::as_bool)
                .ok_or("missing bool field \"enable\"")?,
        },
        "msg-loss" => FaultKind::MsgLoss {
            channel: text("channel")?,
            probability: json::get(obj, "probability")
                .and_then(json::Value::as_f64)
                .ok_or("missing number field \"probability\"")?,
            duration: dur("duration_us")?,
        },
        "latency-spike" => FaultKind::LatencySpike {
            channel: text("channel")?,
            extra: dur("extra_us")?,
            duration: dur("duration_us")?,
        },
        "clock-skew" => FaultKind::ClockSkew {
            client: uint("client")? as usize,
            skew_us: int("skew_us")?,
        },
        "client-kill" => FaultKind::ClientKill {
            client: uint("client")? as usize,
            restart: match json::get(obj, "restart_us") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(Dur::from_micros(
                    v.as_u64()
                        .ok_or("\"restart_us\" must be an integer or null")?,
                )),
            },
        },
        "cmd-fail-first" => FaultKind::CmdFailFirst {
            program: text("program")?,
            n: uint("n")? as u32,
        },
        "schedd-crash-on-starvation" => FaultKind::ScheddCrashOnStarvation {
            service_fds: uint("service_fds")? as u32,
            backlog: uint("backlog")? as usize,
        },
        "enospc-at-capacity" => FaultKind::EnospcAtCapacity {
            capacity_bytes: uint("capacity_bytes")?,
        },
        "black-hole-servers" => {
            let arr = json::get(obj, "servers")
                .and_then(json::Value::as_array)
                .ok_or("missing array field \"servers\"")?;
            let servers = arr
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"servers\" entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            FaultKind::BlackHoleServers { servers }
        }
        other => return Err(format!("unknown fault kind {other:?}")),
    };

    Ok(FaultSpec {
        at: Time::from_micros(uint("at_us").unwrap_or(0)),
        every: match json::get(obj, "every_us") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(Dur::from_micros(
                v.as_u64()
                    .ok_or("\"every_us\" must be an integer or null")?,
            )),
        },
        count: json::get(obj, "count")
            .and_then(json::Value::as_u64)
            .unwrap_or(1)
            .max(1) as u32,
        kind,
    })
}

/// Minimal recursive JSON reader for `PLAN.json` and kin (the trace
/// module's scanner is flat-object-only and integer-only; plans nest
/// one level and carry a float probability). The workspace
/// deliberately carries no serde dependency; other hand-rolled JSON
/// documents (`DagSpec` in the coordinated workloads) parse through
/// this module too.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (integers survive exactly up to 2^53).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in declaration order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's fields, or `None` for non-objects.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        /// The array's items, or `None` for non-arrays.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// The string's contents, or `None` for non-strings.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The boolean, or `None` for non-booleans.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        /// The number, or `None` for non-numbers.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        /// The number as an integer, `None` for fractions and numbers
        /// beyond exact `f64` integer range.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Num(n) if n.fract() == 0.0 && n.abs() <= 9e15 => Some(*n as i64),
                _ => None,
            }
        }
        /// The number as a non-negative integer, or `None`.
        pub fn as_u64(&self) -> Option<u64> {
            self.as_i64().and_then(|n| u64::try_from(n).ok())
        }
    }

    /// Look up `key` in an object's fields (first match wins).
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse one complete JSON document (trailing data is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            chars: text.chars().peekable(),
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err("trailing data after JSON value".into());
        }
        Ok(v)
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn expect(&mut self, want: char) -> Result<(), String> {
            match self.chars.next() {
                Some(c) if c == want => Ok(()),
                other => Err(format!("expected {want:?}, got {other:?}")),
            }
        }

        fn word(&mut self, word: &str) -> Result<(), String> {
            for want in word.chars() {
                self.expect(want)
                    .map_err(|_| format!("expected {word:?}"))?;
            }
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.chars.peek() {
                Some('{') => self.object(),
                Some('[') => self.array(),
                Some('"') => Ok(Value::Str(self.string()?)),
                Some('t') => self.word("true").map(|()| Value::Bool(true)),
                Some('f') => self.word("false").map(|()| Value::Bool(false)),
                Some('n') => self.word("null").map(|()| Value::Null),
                Some(c) if *c == '-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?}")),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect('{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.chars.peek() == Some(&'}') {
                self.chars.next();
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.chars.next() {
                    Some(',') => {}
                    Some('}') => return Ok(Value::Obj(fields)),
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.chars.peek() == Some(&']') {
                self.chars.next();
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.chars.next() {
                    Some(',') => {}
                    Some(']') => return Ok(Value::Arr(items)),
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    None => return Err("unterminated string".into()),
                    Some('"') => return Ok(out),
                    Some('\\') => match self.chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let hex: String = (0..4).filter_map(|_| self.chars.next()).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(c) => out.push(c),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let mut s = String::new();
            while self
                .chars
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                s.push(self.chars.next().expect("peeked"));
            }
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number {s:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new(42)
            .with(FaultSpec::repeating(
                Time::from_secs(60),
                Dur::from_secs(120),
                5,
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(30)),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(10),
                FaultKind::ServerBlackHole {
                    server: "yyy".into(),
                    enable: true,
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(5),
                FaultKind::MsgLoss {
                    channel: "wget".into(),
                    probability: 0.25,
                    duration: Dur::from_secs(40),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(7),
                FaultKind::LatencySpike {
                    channel: "condor_submit".into(),
                    extra: Dur::from_millis(750),
                    duration: Dur::from_secs(20),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(1),
                FaultKind::ClockSkew {
                    client: 3,
                    skew_us: -2_000_000,
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(2),
                FaultKind::EnospcWindow {
                    duration: Dur::from_secs(15),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(3),
                FaultKind::FreeSpaceLie {
                    delta_bytes: -1_000_000,
                    duration: Dur::from_secs(9),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(90),
                FaultKind::ScheddRestart,
            ))
            .with(FaultSpec::once(
                Time::from_secs(12),
                FaultKind::ClientKill {
                    client: 2,
                    restart: Some(Dur::from_secs(4)),
                },
            ))
            .with(FaultSpec::once(
                Time::from_secs(14),
                FaultKind::ClientKill {
                    client: 5,
                    restart: None,
                },
            ))
            .with(FaultSpec::physics(FaultKind::ScheddCrashOnStarvation {
                service_fds: 50,
                backlog: 1000,
            }))
            .with(FaultSpec::physics(FaultKind::EnospcAtCapacity {
                capacity_bytes: 120 << 20,
            }))
            .with(FaultSpec::physics(FaultKind::BlackHoleServers {
                servers: vec!["zzz".into()],
            }))
            .with(FaultSpec::physics(FaultKind::CmdFailFirst {
                program: "unreliable".into(),
                n: 2,
            }))
    }

    #[test]
    fn json_roundtrip_every_kind() {
        let plan = sample_plan();
        let text = plan.to_json();
        let back = FaultPlan::parse_json(&text).expect("parses");
        assert_eq!(back, plan, "JSON roundtrip must be exact:\n{text}");
    }

    #[test]
    fn physics_specs_are_not_injections() {
        let plan = sample_plan();
        let injected: Vec<_> = plan.injections().map(|(i, _)| i).collect();
        assert_eq!(injected, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(plan.crash_physics(), Some((50, 1000)));
        assert_eq!(plan.capacity_physics(), Some(120 << 20));
        assert_eq!(plan.black_hole_physics().unwrap(), ["zzz".to_string()]);
        assert_eq!(plan.fail_first("unreliable"), 2);
        assert_eq!(plan.fail_first("reliable"), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse_json("").is_err());
        assert!(FaultPlan::parse_json("[]").is_err());
        assert!(FaultPlan::parse_json("{\"specs\": [{\"kind\": \"nope\"}]}").is_err());
        assert!(FaultPlan::parse_json("{\"specs\": [{\"at_us\": 5}]}").is_err());
        // Missing seed defaults to 0; missing specs to empty.
        let p = FaultPlan::parse_json("{}").unwrap();
        assert_eq!(p, FaultPlan::new(0));
    }

    #[test]
    fn plan_rng_is_decorrelated_from_scenario_seed() {
        let mut a = FaultPlan::new(0x5eed).rng();
        let mut b = SimRng::new(0x5eed);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn detail_strings_are_stable() {
        assert_eq!(
            FaultKind::ScheddKill {
                downtime: Some(Dur::from_secs(30))
            }
            .detail(),
            "downtime_us=30000000"
        );
        assert_eq!(
            FaultKind::ServerBlackHole {
                server: "yyy".into(),
                enable: false
            }
            .detail(),
            "server=yyy enable=false"
        );
        assert_eq!(FaultKind::ScheddRestart.detail(), "");
        assert_eq!(
            FaultKind::ClientKill {
                client: 4,
                restart: Some(Dur::from_secs(2))
            }
            .detail(),
            "client=4 restart_us=2000000"
        );
        assert_eq!(
            FaultKind::ClientKill {
                client: 4,
                restart: None
            }
            .detail(),
            "client=4 restart_us=none"
        );
    }

    #[test]
    fn extend_appends_custom_injections() {
        let mut base = FaultPlan::new(1).with(FaultSpec::physics(FaultKind::EnospcAtCapacity {
            capacity_bytes: 100,
        }));
        let custom = FaultPlan::new(9).with(FaultSpec::once(
            Time::from_secs(1),
            FaultKind::ScheddRestart,
        ));
        base.extend_from(&custom);
        assert_eq!(base.specs.len(), 2);
        assert_eq!(base.seed, 1, "base seed wins");
    }
}
