//! The discrete-event kernel: a virtual clock driven by a priority
//! queue of timestamped events.
//!
//! Determinism is load-bearing for the reproduction: given the same
//! seed, a scenario must produce bit-identical figure data. Events at
//! equal instants therefore break ties by insertion order (a strictly
//! increasing sequence number), never by heap internals.

use retry::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list with its own clock.
///
/// ```
/// use retry::Time;
/// use simgrid::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_secs(3), "later");
/// q.schedule(Time::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "sooner")));
/// assert_eq!(q.now(), Time::from_secs(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at `T+0`.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Events popped from *this* queue since construction. Per-queue
    /// so one run's throughput is attributable even while sweep
    /// workers run other simulations concurrently.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The current virtual instant (the timestamp of the last popped
    /// event, or zero).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute instant `at`. Scheduling in the
    /// past is a logic error in debug builds; in release it clamps to
    /// `now` (the event fires immediately, preserving progress).
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: retry::Dur, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "clock went backwards");
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(5), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(9), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(9));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), "first");
        q.pop();
        q.schedule_in(Dur::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(4)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_counter_is_per_queue() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for i in 0..5 {
            a.schedule(Time::from_secs(i), ());
        }
        b.schedule(Time::from_secs(1), ());
        while a.pop().is_some() {}
        assert_eq!(a.popped(), 5);
        assert_eq!(b.popped(), 0);
        b.pop();
        assert_eq!(b.popped(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1);
        q.schedule(Time::from_secs(10), 10);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule between now (1s) and the pending 10s event.
        q.schedule(Time::from_secs(5), 5);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 5);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 10);
    }
}
