//! The discrete-event kernel: a virtual clock driven by a sharded
//! future-event list.
//!
//! Determinism is load-bearing for the reproduction: given the same
//! seed, a scenario must produce bit-identical figure data. Events at
//! equal instants therefore break ties by insertion order (a strictly
//! increasing sequence number), never by heap internals.
//!
//! # Sharding
//!
//! Internally the queue is split into [`EventQueue::shards`] shards so
//! one large world does not funnel every operation through a single
//! comparison-heavy `BinaryHeap`: a population of 100k clients keyed by
//! client id spreads across shards whose heaps are each a fraction of
//! the total, shrinking both the `O(log n)` factor and the working set
//! each push/pop touches. Each shard is a two-level calendar: a *near*
//! heap holding events below the shard's current window and a *far*
//! heap for everything later; when the near heap drains, the window
//! advances to just past the earliest far event and the events that
//! fall inside are migrated over.
//!
//! The cross-shard merge is deterministic by construction: every event
//! is stamped with one **queue-global** sequence number at schedule
//! time, and `pop` takes the minimum `(timestamp, seq)` across shard
//! heads. That is exactly the order the old single-heap kernel
//! produced, so pop order — and therefore every figure byte — is
//! invariant under the shard count and under how events are routed to
//! shards. Routing (`schedule_keyed`) affects locality only, never
//! order.

use retry::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Width of a shard's near window. One virtual second: coarse enough
/// that a drained window refills with a batch of events, fine enough
/// that the near heap stays a fraction of the shard.
const WINDOW_US: u64 = 1_000_000;

/// One calendar shard: `near` holds events strictly below
/// `window_end`, `far` everything at or beyond it. Invariant
/// (maintained by every `&mut` entry point): `near` is non-empty
/// whenever the shard is non-empty, so peeking is pure.
struct Shard<E> {
    near: BinaryHeap<Entry<E>>,
    far: BinaryHeap<Entry<E>>,
    window_end: Time,
}

impl<E> Shard<E> {
    fn new() -> Shard<E> {
        Shard {
            near: BinaryHeap::new(),
            far: BinaryHeap::new(),
            window_end: Time::ZERO,
        }
    }

    fn push(&mut self, e: Entry<E>) {
        if e.at < self.window_end {
            self.near.push(e);
        } else {
            self.far.push(e);
            self.refill();
        }
    }

    /// Restore the invariant after the near heap may have drained:
    /// advance the window to one span past the earliest far event and
    /// migrate everything that now falls inside.
    fn refill(&mut self) {
        if !self.near.is_empty() {
            return;
        }
        let Some(head) = self.far.peek() else { return };
        self.window_end = Time::from_micros(head.at.as_micros().saturating_add(WINDOW_US));
        while self.far.peek().is_some_and(|e| e.at < self.window_end) {
            let e = self.far.pop().expect("peeked");
            self.near.push(e);
        }
    }

    /// The shard's earliest `(timestamp, seq)`, if any.
    fn head(&self) -> Option<(Time, u64)> {
        self.near.peek().map(|e| (e.at, e.seq))
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let e = self.near.pop();
        self.refill();
        e
    }

    fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }
}

/// How many shards a queue built with [`EventQueue::new`] gets:
/// `EG_SIM_SHARDS` when set to a positive integer, else 4. The shard
/// count never affects pop order — only locality — so this is a pure
/// tuning knob.
fn configured_shards() -> usize {
    std::env::var("EG_SIM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// A deterministic future-event list with its own clock.
///
/// ```
/// use retry::Time;
/// use simgrid::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_secs(3), "later");
/// q.schedule(Time::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "sooner")));
/// assert_eq!(q.now(), Time::from_secs(1));
/// ```
pub struct EventQueue<E> {
    shards: Vec<Shard<E>>,
    seq: u64,
    now: Time,
    popped: u64,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at `T+0` with the configured shard count
    /// (`EG_SIM_SHARDS`, default 4).
    pub fn new() -> EventQueue<E> {
        EventQueue::with_shards(configured_shards())
    }

    /// An empty queue at `T+0` with exactly `nshards` shards
    /// (`nshards` ≥ 1 enforced). Pop order is identical for every
    /// shard count.
    pub fn with_shards(nshards: usize) -> EventQueue<E> {
        let nshards = nshards.max(1);
        EventQueue {
            shards: (0..nshards).map(|_| Shard::new()).collect(),
            seq: 0,
            now: Time::ZERO,
            popped: 0,
            clamped: 0,
        }
    }

    /// Number of shards this queue spreads events across.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Events popped from *this* queue since construction. Per-queue
    /// so one run's throughput is attributable even while sweep
    /// workers run other simulations concurrently.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// How many schedules targeted an instant already in the past and
    /// were clamped to `now`. A nonzero count is a latent ordering bug
    /// in the scenario; `figures --stats` and the postmortem surface
    /// it rather than letting the clamp silently "fix" it.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The current virtual instant (the timestamp of the last popped
    /// event, or zero).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute instant `at`. Scheduling in the
    /// past is a logic error in debug builds; in release it clamps to
    /// `now` (the event fires immediately, preserving progress) and
    /// increments [`clamped`].
    ///
    /// [`clamped`]: EventQueue::clamped
    pub fn schedule(&mut self, at: Time, event: E) {
        self.schedule_keyed(0, at, event);
    }

    /// Schedule `event` at `at`, routed to the shard `key` maps to
    /// (`key % shards`). Keying by client/resource id keeps one
    /// client's events on one small heap; the choice of key can never
    /// change pop order, only locality.
    pub fn schedule_keyed(&mut self, key: usize, at: Time, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let shard = key % self.shards.len();
        self.shards[shard].push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: retry::Dur, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Schedule `event` after a delay from now, routed by `key` as in
    /// [`schedule_keyed`].
    ///
    /// [`schedule_keyed`]: EventQueue::schedule_keyed
    pub fn schedule_in_keyed(&mut self, key: usize, delay: retry::Dur, event: E) {
        self.schedule_keyed(key, self.now.saturating_add(delay), event);
    }

    /// The index of the shard holding the global minimum
    /// `(timestamp, seq)`, if any event is pending.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some((at, seq)) = s.head() {
                if best.is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs)) {
                    best = Some((at, seq, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.min_shard()
            .and_then(|i| self.shards[i].head())
            .map(|(at, _)| at)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let i = self.min_shard()?;
        let e = self.shards[i].pop().expect("shard head exists");
        debug_assert!(e.at >= self.now, "clock went backwards");
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.near.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(5), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_by_insertion_order_across_shards() {
        // Same instant, every event on a different shard: the global
        // seq stamp still decides, not shard index or routing.
        let mut q = EventQueue::with_shards(4);
        for i in 0..100usize {
            q.schedule_keyed(103 - i, Time::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_order_is_invariant_under_shard_count() {
        let schedule_all = |q: &mut EventQueue<usize>| {
            for i in 0..200usize {
                let t = Time::from_micros(((i * 37) % 50) as u64 * 700_000);
                q.schedule_keyed(i % 7, t, i);
            }
        };
        let drain = |q: &mut EventQueue<usize>| -> Vec<(Time, usize)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        let mut reference = EventQueue::with_shards(1);
        schedule_all(&mut reference);
        let want = drain(&mut reference);
        for n in [2, 3, 4, 8, 64] {
            let mut q = EventQueue::with_shards(n);
            schedule_all(&mut q);
            assert_eq!(drain(&mut q), want, "shard count {n} changed pop order");
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(9), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(9));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), "first");
        q.pop();
        q.schedule_in(Dur::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(4)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_counter_is_per_queue() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for i in 0..5 {
            a.schedule(Time::from_secs(i), ());
        }
        b.schedule(Time::from_secs(1), ());
        while a.pop().is_some() {}
        assert_eq!(a.popped(), 5);
        assert_eq!(b.popped(), 0);
        b.pop();
        assert_eq!(b.popped(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1);
        q.schedule(Time::from_secs(10), 10);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule between now (1s) and the pending 10s event.
        q.schedule(Time::from_secs(5), 5);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 5);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 10);
    }

    #[test]
    fn far_window_migration_preserves_order() {
        // Spread events far beyond one near window on a single shard
        // so every pop path (drain, refill, migrate) is exercised.
        let mut q = EventQueue::with_shards(1);
        for i in (0..50u64).rev() {
            q.schedule(Time::from_secs(i * 3), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn past_schedule_clamps_and_counts() {
        let mut q = EventQueue::with_shards(2);
        q.schedule(Time::from_secs(10), "a");
        q.pop();
        assert_eq!(q.clamped(), 0);
        // Only compiled-away debug_assert guards this in release; the
        // runtime contract is clamp-to-now plus an observable count.
        if cfg!(debug_assertions) {
            return;
        }
        q.schedule(Time::from_secs(3), "late");
        assert_eq!(q.clamped(), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_secs(10), "late"));
    }
}
