//! Post-mortem analysis of structured traces (§4's "the log is the
//! artifact" workflow): reconstruct per-client timelines and aggregate
//! retry/backoff distributions from a trace file, with no access to
//! the run that produced it.

use crate::metrics::percentile;
use crate::trace::{TraceEv, TraceRecord, NO_ID};
use retry::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregates over one trace: span outcomes, backoff-delay samples,
/// command results and the scenario contention counters.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total records consumed.
    pub records: u64,
    /// Distinct client ids seen (excluding [`NO_ID`]), ascending.
    pub clients: Vec<i64>,
    /// Earliest and latest instants in the trace.
    pub window: Option<(Time, Time)>,
    /// `try` attempts admitted.
    pub attempts: u64,
    /// `try` spans that closed successfully; the attempt number each
    /// one succeeded on (the paper's attempts-per-success metric).
    pub success_attempts: Vec<u64>,
    /// Backoff delays drawn, in microseconds.
    pub backoff_us: Vec<u64>,
    /// `try` frames that spent their whole budget between attempts.
    pub exhausted: u64,
    /// `try` deadlines that fired mid-attempt.
    pub timeouts: u64,
    /// Failed `try` frames that entered a `catch` block.
    pub catches: u64,
    /// Commands started.
    pub cmd_starts: u64,
    /// Commands that completed successfully.
    pub cmd_ok: u64,
    /// Commands that completed with failure.
    pub cmd_failed: u64,
    /// Commands cancelled in flight.
    pub cmd_killed: u64,
    /// Whole script units completed.
    pub units_done: u64,
    /// Units that completed successfully.
    pub units_ok: u64,
    /// Carrier-sense probes of the contended resource.
    pub carrier_reads: u64,
    /// Clients that deferred after sensing a busy medium.
    pub deferrals: u64,
    /// Collisions on the contended resource.
    pub collisions: u64,
    /// Schedd crashes (the paper's broadcast jam).
    pub crashes: u64,
    /// Mid-write ENOSPC hits.
    pub enospc: u64,
    /// Faults injected by an armed fault plan, counted per kind tag
    /// (`schedd-kill`, `msg-loss`, …) in first-seen order.
    pub faults_injected: Vec<(String, u64)>,
    /// Past-scheduled events the engine clamped forward to `now`
    /// (summed over the trace's `queue-clamps` records; nonzero means
    /// something asked for an instant already in the past).
    pub queue_clamps: u64,
    /// Attempts admitted per client.
    pub attempts_by_client: BTreeMap<i64, u64>,
}

impl TraceSummary {
    /// Aggregate a record stream.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut clients = std::collections::BTreeSet::new();
        for r in records {
            s.records += 1;
            if r.client != NO_ID {
                clients.insert(r.client);
            }
            s.window = Some(match s.window {
                None => (r.t, r.t),
                Some((lo, hi)) => (lo.min(r.t), hi.max(r.t)),
            });
            match &r.ev {
                TraceEv::AttemptStart { .. } => {
                    s.attempts += 1;
                    *s.attempts_by_client.entry(r.client).or_insert(0) += 1;
                }
                TraceEv::AttemptOk { attempt } => s.success_attempts.push(u64::from(*attempt)),
                TraceEv::Backoff { delay, .. } => s.backoff_us.push(delay.as_micros()),
                TraceEv::TryExhausted => s.exhausted += 1,
                TraceEv::TryTimeout => s.timeouts += 1,
                TraceEv::CatchEntered => s.catches += 1,
                TraceEv::CmdStart { .. } => s.cmd_starts += 1,
                TraceEv::CmdEnd { ok, .. } => {
                    if *ok {
                        s.cmd_ok += 1;
                    } else {
                        s.cmd_failed += 1;
                    }
                }
                TraceEv::CmdKilled { .. } => s.cmd_killed += 1,
                TraceEv::UnitDone { ok } => {
                    s.units_done += 1;
                    if *ok {
                        s.units_ok += 1;
                    }
                }
                TraceEv::CarrierSense { .. } => s.carrier_reads += 1,
                TraceEv::Deferral => s.deferrals += 1,
                TraceEv::Collision => s.collisions += 1,
                TraceEv::ScheddCrash => s.crashes += 1,
                TraceEv::Enospc => s.enospc += 1,
                TraceEv::FaultInjected { kind, .. } => {
                    match s.faults_injected.iter_mut().find(|(k, _)| k == kind) {
                        Some((_, n)) => *n += 1,
                        None => s.faults_injected.push((kind.clone(), 1)),
                    }
                }
                TraceEv::QueueClamps { count } => s.queue_clamps += count,
            }
        }
        s.clients = clients.into_iter().collect();
        s
    }

    /// `(min, p50, p95, max)` of the backoff delays drawn, in seconds.
    pub fn backoff_stats_s(&self) -> Option<(f64, f64, f64, f64)> {
        let mut v: Vec<f64> = self.backoff_us.iter().map(|&us| us as f64 / 1e6).collect();
        Some((
            percentile(&mut v, 0.0)?,
            percentile(&mut v, 0.5)?,
            percentile(&mut v, 0.95)?,
            percentile(&mut v, 1.0)?,
        ))
    }

    /// `(p50, p95, max)` of attempts needed per successful `try` span.
    pub fn attempts_per_success(&self) -> Option<(f64, f64, f64)> {
        let mut v: Vec<f64> = self.success_attempts.iter().map(|&a| a as f64).collect();
        Some((
            percentile(&mut v, 0.5)?,
            percentile(&mut v, 0.95)?,
            percentile(&mut v, 1.0)?,
        ))
    }

    /// The aligned text report the `figures postmortem` subcommand
    /// prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== trace post-mortem ==");
        let _ = writeln!(out, "{:<22} {}", "records", self.records);
        let _ = writeln!(out, "{:<22} {}", "clients", self.clients.len());
        if let Some((lo, hi)) = self.window {
            let _ = writeln!(
                out,
                "{:<22} {:.1}s .. {:.1}s",
                "window",
                lo.as_secs_f64(),
                hi.as_secs_f64()
            );
        }
        match self.attempts_per_success() {
            Some((p50, p95, max)) => {
                let _ = writeln!(
                    out,
                    "{:<22} {} ({} spans succeeded; attempts/success p50 {p50:.0}, p95 {p95:.0}, max {max:.0})",
                    "try attempts",
                    self.attempts,
                    self.success_attempts.len(),
                );
            }
            None => {
                let _ = writeln!(out, "{:<22} {}", "try attempts", self.attempts);
            }
        }
        match self.backoff_stats_s() {
            Some((min, p50, p95, max)) => {
                let _ = writeln!(
                    out,
                    "{:<22} {} (delay s: min {min:.2}, p50 {p50:.2}, p95 {p95:.2}, max {max:.2})",
                    "backoffs drawn",
                    self.backoff_us.len(),
                );
            }
            None => {
                let _ = writeln!(out, "{:<22} 0", "backoffs drawn");
            }
        }
        let _ = writeln!(
            out,
            "{:<22} {} exhausted, {} timed out, {} entered catch",
            "failed tries", self.exhausted, self.timeouts, self.catches
        );
        let _ = writeln!(
            out,
            "{:<22} {} started, {} ok, {} failed, {} killed",
            "commands", self.cmd_starts, self.cmd_ok, self.cmd_failed, self.cmd_killed
        );
        let _ = writeln!(
            out,
            "{:<22} {} ({} ok)",
            "units completed", self.units_done, self.units_ok
        );
        let _ = writeln!(out, "{:<22} {}", "carrier-sense reads", self.carrier_reads);
        let _ = writeln!(out, "{:<22} {}", "deferrals", self.deferrals);
        let _ = writeln!(out, "{:<22} {}", "collisions", self.collisions);
        let _ = writeln!(out, "{:<22} {}", "schedd crashes", self.crashes);
        let _ = writeln!(out, "{:<22} {}", "enospc hits", self.enospc);
        let total: u64 = self.faults_injected.iter().map(|(_, n)| n).sum();
        let _ = writeln!(out, "{:<22} {}", "faults injected", total);
        for (kind, n) in &self.faults_injected {
            let _ = writeln!(out, "{:<22} {}", format!("  {kind}"), n);
        }
        if self.queue_clamps > 0 {
            let _ = writeln!(
                out,
                "{:<22} {} (events scheduled into the past, moved to now)",
                "queue clamps", self.queue_clamps
            );
        }
        out
    }
}

/// One human-readable line body for a trace event.
fn describe(ev: &TraceEv) -> String {
    match ev {
        TraceEv::AttemptStart { attempt, budget } => match budget {
            Some(d) => format!("try attempt #{attempt} (budget {:.1}s)", d.as_secs_f64()),
            None => format!("try attempt #{attempt} (unbounded)"),
        },
        TraceEv::AttemptOk { attempt } => format!("try succeeded on attempt #{attempt}"),
        TraceEv::Backoff { attempt, delay } => format!(
            "attempt #{attempt} failed, backing off {:.2}s",
            delay.as_secs_f64()
        ),
        TraceEv::TryExhausted => "try budget exhausted".into(),
        TraceEv::TryTimeout => "try deadline fired mid-attempt".into(),
        TraceEv::CatchEntered => "entered catch block".into(),
        TraceEv::CmdStart { program } => format!("exec {program}"),
        TraceEv::CmdEnd { program, ok } => {
            format!("{program} {}", if *ok { "ok" } else { "failed" })
        }
        TraceEv::CmdKilled { program } => format!("{program} killed"),
        TraceEv::UnitDone { ok } => {
            format!("unit done ({})", if *ok { "success" } else { "failure" })
        }
        TraceEv::CarrierSense { free } => format!("carrier sense: free={free}"),
        TraceEv::Deferral => "medium busy, deferring".into(),
        TraceEv::Collision => "collision".into(),
        TraceEv::ScheddCrash => "schedd crashed".into(),
        TraceEv::Enospc => "ENOSPC mid-write".into(),
        TraceEv::FaultInjected { kind, detail } => {
            if detail.is_empty() {
                format!("fault injected: {kind}")
            } else {
                format!("fault injected: {kind} ({detail})")
            }
        }
        TraceEv::QueueClamps { count } => {
            format!("{count} past-scheduled events clamped to now")
        }
    }
}

/// Reconstruct per-client timelines: one block per client (emission
/// order preserved within a client), world-scope events under their
/// own heading. Pass `only` to restrict to a single client.
pub fn render_timeline(records: &[TraceRecord], only: Option<i64>) -> String {
    let mut by_client: BTreeMap<i64, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        if only.is_some_and(|c| c != r.client) {
            continue;
        }
        by_client.entry(r.client).or_default().push(r);
    }
    let mut out = String::new();
    for (client, recs) in &by_client {
        if *client == NO_ID {
            let _ = writeln!(out, "== world ==");
        } else {
            let _ = writeln!(out, "== client {client} ==");
        }
        for r in recs {
            let task = if r.task == NO_ID {
                "      ".to_string()
            } else {
                format!("task {}", r.task)
            };
            let _ = writeln!(
                out,
                "  [{:>10.3}s] {task}  {}",
                r.t.as_secs_f64(),
                describe(&r.ev)
            );
        }
    }
    out
}

/// Reconstruct the coordinated-workload view of a trace: each
/// client's `UnitDone` records are its rounds (successes advance the
/// round counter, failures are rounds lost), and a round is *globally*
/// complete when every participating client has finished it — the
/// barrier semantics of `gridworld::coord`. Reports the per-rank
/// round timeline plus a time-to-global-completion summary
/// (count, p50, max over the global completion instants).
pub fn render_rounds(records: &[TraceRecord]) -> String {
    // Per client: completion instants of successful rounds (in
    // emission order, which is time order within a client) and the
    // count of failed units (rounds lost).
    let mut done_at: BTreeMap<i64, Vec<Time>> = BTreeMap::new();
    let mut lost: BTreeMap<i64, u64> = BTreeMap::new();
    for r in records {
        if r.client == NO_ID {
            continue;
        }
        if let TraceEv::UnitDone { ok } = r.ev {
            if ok {
                done_at.entry(r.client).or_default().push(r.t);
            } else {
                *lost.entry(r.client).or_insert(0) += 1;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== rounds ==");
    if done_at.is_empty() && lost.is_empty() {
        let _ = writeln!(out, "no units completed");
        return out;
    }
    for (client, times) in &done_at {
        let last = times.last().map_or(0.0, |t| t.as_secs_f64());
        let _ = writeln!(
            out,
            "rank {client:>3}: {} done, {} lost, last at {last:.3}s",
            times.len(),
            lost.get(client).copied().unwrap_or(0),
        );
    }
    for (client, n) in &lost {
        if !done_at.contains_key(client) {
            let _ = writeln!(out, "rank {client:>3}: 0 done, {n} lost");
        }
    }
    // Round k is globally complete when every rank that completed
    // anything has a k-th success; its instant is the straggler's.
    let global_rounds = done_at.values().map(Vec::len).min().unwrap_or(0);
    let mut globals: Vec<f64> = (0..global_rounds)
        .map(|k| {
            done_at
                .values()
                .map(|ts| ts[k].as_secs_f64())
                .fold(0.0, f64::max)
        })
        .collect();
    for (k, t) in globals.iter().enumerate() {
        let _ = writeln!(out, "round {:>2} globally complete at {t:.3}s", k + 1);
    }
    let (p50, max) = (
        percentile(&mut globals, 0.5).unwrap_or(0.0),
        percentile(&mut globals, 1.0).unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "time-to-global-completion: count {global_rounds}, p50 {p50:.3}s, max {max:.3}s"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::Dur;

    fn rec(t_s: u64, client: i64, ev: TraceEv) -> TraceRecord {
        TraceRecord {
            t: Time::from_secs(t_s),
            client,
            task: if client == NO_ID { NO_ID } else { 1 },
            ev,
        }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            rec(
                1,
                0,
                TraceEv::AttemptStart {
                    attempt: 1,
                    budget: Some(Dur::from_secs(60)),
                },
            ),
            rec(
                1,
                0,
                TraceEv::CmdStart {
                    program: "wget".into(),
                },
            ),
            rec(
                3,
                0,
                TraceEv::CmdEnd {
                    program: "wget".into(),
                    ok: false,
                },
            ),
            rec(
                3,
                0,
                TraceEv::Backoff {
                    attempt: 1,
                    delay: Dur::from_secs(2),
                },
            ),
            rec(
                5,
                0,
                TraceEv::AttemptStart {
                    attempt: 2,
                    budget: Some(Dur::from_secs(56)),
                },
            ),
            rec(6, 0, TraceEv::AttemptOk { attempt: 2 }),
            rec(6, 0, TraceEv::UnitDone { ok: true }),
            rec(2, 1, TraceEv::CarrierSense { free: 3 }),
            rec(2, 1, TraceEv::Deferral),
            rec(4, NO_ID, TraceEv::ScheddCrash),
        ]
    }

    #[test]
    fn summary_counts_everything() {
        let s = TraceSummary::from_records(&sample());
        assert_eq!(s.records, 10);
        assert_eq!(s.clients, vec![0, 1]);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.success_attempts, vec![2]);
        assert_eq!(s.backoff_us, vec![2_000_000]);
        assert_eq!(s.cmd_starts, 1);
        assert_eq!(s.cmd_failed, 1);
        assert_eq!(s.units_done, 1);
        assert_eq!(s.units_ok, 1);
        assert_eq!(s.carrier_reads, 1);
        assert_eq!(s.deferrals, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.window, Some((Time::from_secs(1), Time::from_secs(6))));
        assert_eq!(s.attempts_by_client.get(&0), Some(&2));
        let (min, p50, _, max) = s.backoff_stats_s().unwrap();
        assert_eq!((min, p50, max), (2.0, 2.0, 2.0));
        let report = s.render();
        assert!(report.contains("try attempts"));
        assert!(report.contains("deferrals"));
        assert!(report.contains("schedd crashes"));
        assert!(report
            .lines()
            .any(|l| l.starts_with("schedd crashes") && l.ends_with('1')));
    }

    #[test]
    fn timeline_groups_by_client() {
        let t = render_timeline(&sample(), None);
        assert!(t.contains("== client 0 =="));
        assert!(t.contains("== client 1 =="));
        assert!(t.contains("== world =="));
        assert!(t.contains("try attempt #1 (budget 60.0s)"));
        assert!(t.contains("medium busy, deferring"));
        let only1 = render_timeline(&sample(), Some(1));
        assert!(!only1.contains("client 0"));
        assert!(only1.contains("carrier sense: free=3"));
    }

    #[test]
    fn faults_counted_per_kind() {
        let recs = vec![
            rec(
                1,
                NO_ID,
                TraceEv::FaultInjected {
                    kind: "schedd-kill".into(),
                    detail: "downtime_us=default".into(),
                },
            ),
            rec(
                2,
                NO_ID,
                TraceEv::FaultInjected {
                    kind: "schedd-kill".into(),
                    detail: "downtime_us=default".into(),
                },
            ),
            rec(
                3,
                NO_ID,
                TraceEv::FaultInjected {
                    kind: "msg-loss".into(),
                    detail: "channel=wget probability=0.5 duration_us=1".into(),
                },
            ),
        ];
        let s = TraceSummary::from_records(&recs);
        assert_eq!(
            s.faults_injected,
            vec![("schedd-kill".to_string(), 2), ("msg-loss".to_string(), 1)]
        );
        let report = s.render();
        assert!(report
            .lines()
            .any(|l| l.starts_with("faults injected") && l.ends_with('3')));
        assert!(report.contains("  schedd-kill"));
        let t = render_timeline(&recs, None);
        assert!(t.contains("fault injected: msg-loss (channel=wget"));
    }

    #[test]
    fn rounds_report_finds_the_straggler() {
        // Two ranks, two rounds. Rank 1 loses a round mid-way and is
        // the straggler on both global completions.
        let recs = vec![
            rec(5, 0, TraceEv::UnitDone { ok: true }),
            rec(8, 1, TraceEv::UnitDone { ok: true }),
            rec(10, 0, TraceEv::UnitDone { ok: true }),
            rec(12, 1, TraceEv::UnitDone { ok: false }),
            rec(20, 1, TraceEv::UnitDone { ok: true }),
        ];
        let out = render_rounds(&recs);
        assert!(out.contains("rank   0: 2 done, 0 lost, last at 10.000s"));
        assert!(out.contains("rank   1: 2 done, 1 lost, last at 20.000s"));
        assert!(out.contains("round  1 globally complete at 8.000s"));
        assert!(out.contains("round  2 globally complete at 20.000s"));
        assert!(out.contains("time-to-global-completion: count 2, p50 8.000s, max 20.000s"));
    }

    #[test]
    fn rounds_report_handles_empty_and_lossy_traces() {
        assert!(render_rounds(&[]).contains("no units completed"));
        // A rank that never succeeded still shows its losses.
        let recs = vec![
            rec(3, 0, TraceEv::UnitDone { ok: true }),
            rec(4, 7, TraceEv::UnitDone { ok: false }),
        ];
        let out = render_rounds(&recs);
        assert!(out.contains("rank   7: 0 done, 1 lost"));
        assert!(out.contains("time-to-global-completion: count 1"));
    }

    #[test]
    fn empty_trace_renders() {
        let s = TraceSummary::from_records(&[]);
        assert_eq!(s.records, 0);
        assert!(s.backoff_stats_s().is_none());
        assert!(s.render().contains("records"));
        assert_eq!(render_timeline(&[], None), "");
    }
}
