//! Measurement collection: named time series, exactly what the paper's
//! figures plot (cumulative jobs, available FDs, transfers,
//! collisions…). Serializable so the figure harness can emit JSON.

use retry::Time;
use std::fmt::Write;

/// Escape a string for inclusion in a JSON document. Shared by the
/// figure serializers here and the structured-trace JSONL sink
/// ([`crate::trace::JsonlSink`]).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (finite values only; non-finite
/// values are clamped to null, which JSON cannot represent as a float).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A named series of `(seconds, value)` points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in time order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn push(&mut self, t: Time, v: f64) {
        self.points.push((t.as_secs_f64(), v));
    }

    /// Append an (x, y) sample where x is not a time (e.g. "number of
    /// submitters").
    pub fn push_xy(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Largest value in the series.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Smallest value in the series.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Arithmetic mean of values.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Compact JSON, shaped like `{"name":…,"points":[[x,y],…]}`.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|&(x, y)| format!("[{},{}]", json_f64(x), json_f64(y)))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"points\":[{}]}}",
            json_escape(&self.name),
            points.join(",")
        )
    }
}

/// Percentile of a sample set (nearest-rank; `q` in [0, 1]). Returns
/// `None` on an empty set.
pub fn percentile(samples: &mut [f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    Some(samples[rank - 1])
}

/// A group of series belonging to one figure.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSet {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The member series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// An empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> SeriesSet {
        SeriesSet {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a member series and return a handle to it.
    pub fn add(&mut self, s: Series) -> &mut Series {
        self.series.push(s);
        self.series.last_mut().expect("just pushed")
    }

    /// Look up a member series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Compact JSON for the whole figure.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self.series.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"title\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[{}]}}",
            json_escape(&self.title),
            json_escape(&self.x_label),
            json_escape(&self.y_label),
            series.join(",")
        )
    }

    /// Indented JSON for the whole figure (one series per line block,
    /// points kept compact).
    pub fn to_json_pretty(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(out, "  \"x_label\": \"{}\",", json_escape(&self.x_label));
        let _ = writeln!(out, "  \"y_label\": \"{}\",", json_escape(&self.y_label));
        let _ = writeln!(out, "  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            let comma = if i + 1 < self.series.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{}", s.to_json(), comma);
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Render an ASCII line chart (roughly the paper's figure, in the
    /// terminal): one glyph per series, shared axes, legend below.
    pub fn to_ascii_chart(&self, width: usize, height: usize) -> String {
        const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
        let width = width.max(16);
        let height = height.max(6);
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() || !y_max.is_finite() {
            return format!("# {} (no data)\n", self.title);
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let g = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = g;
            }
        }
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{y_max:>10.1} ┤");
        for row in &grid {
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{:>10} │{}", "", line);
        }
        let _ = writeln!(out, "{y_min:>10.1} ┼{}", "─".repeat(width));
        let _ = writeln!(
            out,
            "{:>11}{x_min:<12.1}{:>width$.1}",
            "",
            x_max,
            width = width.saturating_sub(12)
        );
        let _ = write!(out, "{:>11}{}:", "", self.x_label);
        for (si, s) in self.series.iter().enumerate() {
            let _ = write!(out, "  [{}] {}", GLYPHS[si % GLYPHS.len()], s.name);
        }
        out.push('\n');
        out
    }

    /// Render as CSV (header row: x label then series names) for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = write!(out, "{}", esc(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", esc(&s.name));
        }
        out.push('\n');
        let n = self.series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..n {
            let Some(x) = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
            else {
                continue;
            };
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, v)) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as aligned text columns (the "same rows the paper
    /// reports" output of the figure harness).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.name);
        }
        out.push('\n');
        // Union of x values in order of first appearance (series are
        // sampled on a shared grid in our harness, so this is aligned).
        let n = self.series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..n {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0));
            let Some(x) = x else { continue };
            let _ = write!(out, "{x:>12.1}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, v)) => {
                        let _ = write!(out, " {v:>14.1}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.5), Some(3.0));
        assert_eq!(percentile(&mut v, 0.0), Some(1.0));
        assert_eq!(percentile(&mut v, 1.0), Some(5.0));
        assert_eq!(percentile(&mut v, 0.9), Some(5.0));
        assert_eq!(percentile(&mut [], 0.5), None);
    }

    #[test]
    fn push_and_stats() {
        let mut s = Series::new("jobs");
        s.push(Time::from_secs(1), 10.0);
        s.push(Time::from_secs(2), 30.0);
        s.push(Time::from_secs(3), 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some(20.0));
        assert_eq!(s.max(), Some(30.0));
        assert_eq!(s.min(), Some(10.0));
        assert_eq!(s.mean(), Some(20.0));
    }

    #[test]
    fn empty_stats() {
        let s = Series::new("x");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn set_lookup_and_table() {
        let mut set = SeriesSet::new("Fig 1", "submitters", "jobs");
        let a = set.add(Series::new("Ethernet"));
        a.push_xy(100.0, 800.0);
        a.push_xy(200.0, 700.0);
        let b = set.add(Series::new("Fixed"));
        b.push_xy(100.0, 750.0);
        b.push_xy(200.0, 0.0);
        assert!(set.get("Ethernet").is_some());
        assert!(set.get("Aloha").is_none());
        let t = set.to_table();
        assert!(t.contains("Fig 1"));
        assert!(t.contains("Ethernet"));
        assert!(t.contains("800.0"));
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4); // title + header + 2 rows
    }

    #[test]
    fn ascii_chart_renders_and_scales() {
        let mut set = SeriesSet::new("Fig", "x", "y");
        let a = set.add(Series::new("up"));
        for i in 0..10 {
            a.push_xy(i as f64, i as f64 * 10.0);
        }
        let chart = set.to_ascii_chart(40, 10);
        assert!(chart.contains("# Fig"));
        assert!(chart.contains('*'), "points plotted");
        assert!(chart.contains("90.0"), "y max labelled");
        assert!(chart.contains("[*] up"), "legend present");
        // Empty set degrades gracefully.
        let empty = SeriesSet::new("E", "x", "y");
        assert!(empty.to_ascii_chart(40, 10).contains("no data"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut set = SeriesSet::new("t", "x,axis", "y");
        let a = set.add(Series::new("A"));
        a.push_xy(1.0, 2.0);
        a.push_xy(3.0, 4.0);
        let csv = set.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "\"x,axis\",A");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "3,4");
    }

    #[test]
    fn serializes_to_json() {
        let mut s = Series::new("t");
        s.push(Time::from_secs(1), 2.0);
        let j = s.to_json();
        assert!(j.contains("\"name\":\"t\""));
        assert_eq!(j, "{\"name\":\"t\",\"points\":[[1,2]]}");
    }

    #[test]
    fn json_escapes_special_characters() {
        let s = Series::new("a\"b\\c\nd");
        assert_eq!(s.to_json(), "{\"name\":\"a\\\"b\\\\c\\nd\",\"points\":[]}");
    }

    #[test]
    fn set_json_nests_series() {
        let mut set = SeriesSet::new("Fig 1", "x", "y");
        set.add(Series::new("A")).push_xy(1.0, 2.5);
        let j = set.to_json();
        assert!(j.contains("\"title\":\"Fig 1\""));
        assert!(j.contains("[1,2.5]"));
        let p = set.to_json_pretty();
        assert!(p.contains("\"series\": ["));
        assert!(p.ends_with('}'));
    }
}
