//! Differential property test for the sharded event kernel: for
//! arbitrary interleavings of schedules and pops, every shard count
//! must yield the identical `(time, event)` sequence as a reference
//! single-heap queue — the legacy kernel the shards replaced.

use proptest::prelude::*;
use retry::Time;
use simgrid::EventQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The legacy kernel, restated: one global max-heap, inverted on
/// `(timestamp, insertion seq)`.
#[derive(Default)]
struct LegacyQueue {
    heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    now: Time,
}

impl LegacyQueue {
    fn schedule(&mut self, at: Time, event: u32) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, u32)> {
        let Reverse((at, _, ev)) = self.heap.pop()?;
        self.now = at;
        Some((at, ev))
    }
}

/// One step of an interleaving: schedule an event some microseconds
/// past the current clock (routed by `key`), or pop the head.
#[derive(Clone, Debug)]
enum Op {
    Schedule { delta_us: u64, key: usize },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..3_000_000, 0usize..64).prop_map(|(delta_us, key)| Op::Schedule {
            delta_us,
            key
        }),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    /// The sharded kernel is observationally identical to the legacy
    /// single heap under any schedule/pop interleaving and any shard
    /// count, including the final drain.
    #[test]
    fn sharded_matches_legacy_queue(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        nshards in 1usize..9,
    ) {
        let mut legacy = LegacyQueue::default();
        let mut sharded = EventQueue::with_shards(nshards);
        let mut next_event = 0u32;
        for op in &ops {
            match *op {
                Op::Schedule { delta_us, key } => {
                    // Both clocks advance identically, so `at` is never
                    // in the past for either queue.
                    let at = Time::from_micros(
                        legacy.now.as_micros().saturating_add(delta_us),
                    );
                    legacy.schedule(at, next_event);
                    sharded.schedule_keyed(key, at, next_event);
                    next_event += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(sharded.pop(), legacy.pop());
                    prop_assert_eq!(sharded.now(), legacy.now);
                }
            }
        }
        loop {
            let (s, l) = (sharded.pop(), legacy.pop());
            prop_assert_eq!(&s, &l);
            if s.is_none() {
                break;
            }
        }
        prop_assert!(sharded.is_empty());
        prop_assert_eq!(sharded.len(), 0);
    }
}
