//! Interned immutable strings for the interpreter hot path.
//!
//! Word expansion is the allocation engine of a VM population: every
//! attempt re-expands the same literal argv words, captures the same
//! variable names, and logs the same program names. [`Istr`] makes all
//! of that reference counting instead of copying — an `Arc<str>` whose
//! clone is a refcount bump, shared freely between the AST, the
//! environment, command specs and the event log. A fully-literal word
//! expands to a clone of the `Istr` already sitting in the AST: zero
//! allocations per expansion, however many million times it runs.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An immutable, cheaply-cloneable string (`Arc<str>` underneath).
///
/// Compares, hashes and orders exactly like the `str` it wraps, so it
/// can key a `HashMap` that is still queried with `&str`.
#[derive(Clone)]
pub struct Istr(Arc<str>);

impl Istr {
    /// The shared empty string (allocated once per process).
    pub fn empty() -> Istr {
        static EMPTY: OnceLock<Istr> = OnceLock::new();
        EMPTY.get_or_init(|| Istr(Arc::from(""))).clone()
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for Istr {
    fn default() -> Istr {
        Istr::empty()
    }
}

impl Deref for Istr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Istr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl AsRef<std::ffi::OsStr> for Istr {
    fn as_ref(&self) -> &std::ffi::OsStr {
        self.as_str().as_ref()
    }
}

impl AsRef<std::path::Path> for Istr {
    fn as_ref(&self) -> &std::path::Path {
        self.as_str().as_ref()
    }
}

impl Borrow<str> for Istr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Istr {
        if s.is_empty() {
            Istr::empty()
        } else {
            Istr(Arc::from(s))
        }
    }
}

impl From<String> for Istr {
    fn from(s: String) -> Istr {
        Istr::from(s.as_str())
    }
}

impl From<&String> for Istr {
    fn from(s: &String) -> Istr {
        Istr::from(s.as_str())
    }
}

impl From<Istr> for String {
    fn from(s: Istr) -> String {
        s.as_str().to_string()
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Istr) -> bool {
        // Pointer equality first: interned clones share one allocation.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Istr {}

impl PartialEq<str> for Istr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}
impl PartialEq<&str> for Istr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}
impl PartialEq<Istr> for str {
    fn eq(&self, other: &Istr) -> bool {
        self == &*other.0
    }
}
impl PartialEq<Istr> for &str {
    fn eq(&self, other: &Istr) -> bool {
        *self == &*other.0
    }
}
impl PartialEq<String> for Istr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}
impl PartialEq<Istr> for String {
    fn eq(&self, other: &Istr) -> bool {
        self.as_str() == &*other.0
    }
}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Istr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Istr {
    fn cmp(&self, other: &Istr) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Istr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` for the `Borrow<str>` contract.
        (*self.0).hash(state);
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};

    #[test]
    fn clones_share_the_allocation() {
        let a = Istr::from("condor_submit");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn compares_like_str() {
        let a = Istr::from("wget");
        assert_eq!(a, "wget");
        assert_eq!("wget", a);
        assert_eq!(a, "wget".to_string());
        assert_ne!(a, "curl");
        let (a, b) = (Istr::from("a"), Istr::from("b"));
        assert!(a < b);
    }

    #[test]
    fn hashes_like_str_and_keys_maps() {
        let hash = |x: &dyn Fn(&mut DefaultHasher)| {
            let mut h = DefaultHasher::new();
            x(&mut h);
            h.finish()
        };
        let i = Istr::from("n");
        assert_eq!(hash(&|h| i.hash(h)), hash(&|h| "n".hash(h)));
        let mut m: HashMap<Istr, u32> = HashMap::new();
        m.insert(Istr::from("n"), 7);
        // Borrow<str> lets a plain &str query the map.
        assert_eq!(m.get("n"), Some(&7));
    }

    #[test]
    fn empty_is_shared() {
        let a = Istr::empty();
        let b = Istr::from("");
        let c = Istr::from(String::new());
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(a.as_str(), "");
        assert_eq!(Istr::default(), a);
    }

    #[test]
    fn display_and_into_string() {
        let a = Istr::from("x y");
        assert_eq!(format!("{a}"), "x y");
        assert_eq!(String::from(a), "x y");
    }
}
