//! Shell variables and word expansion.
//!
//! ftsh keeps variables in the interpreter itself (not the process
//! environment): they are the target of the `->` capture redirections,
//! the binding of `forany`/`forall` loop variables, and the operands of
//! `if` comparisons. Unset variables expand to the empty string, as in
//! the Bourne shell.

use crate::ast::{Seg, Word};
use std::collections::HashMap;

/// A variable scope. Cloned for `forall` branches so that branch-local
/// mutations stay branch-local (branches are notionally separate
/// processes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    vars: HashMap<String, String>,
}

impl Env {
    /// An empty scope.
    pub fn new() -> Env {
        Env::default()
    }

    /// Look up a variable; unset variables read as `""`.
    pub fn get(&self, name: &str) -> &str {
        self.vars.get(name).map(String::as_str).unwrap_or("")
    }

    /// Whether the variable has been set.
    pub fn is_set(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Bind a variable.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Append to a variable (the `->>` capture form).
    pub fn append(&mut self, name: &str, value: &str) {
        self.vars
            .entry(name.to_string())
            .or_default()
            .push_str(value);
    }

    /// Remove a binding.
    pub fn unset(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Number of bindings (for diagnostics).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Snapshot the positional bindings (`0`–`99…`, `*`) for a
    /// function call.
    pub fn snapshot_positionals(&self) -> Vec<(String, String)> {
        self.vars
            .iter()
            .filter(|(k, _)| k.as_str() == "*" || k.chars().all(|c| c.is_ascii_digit()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Remove every positional binding.
    pub fn clear_positionals(&mut self) {
        self.vars
            .retain(|k, _| k != "*" && !k.chars().all(|c| c.is_ascii_digit()));
    }

    /// Expand a word against this scope.
    pub fn expand(&self, w: &Word) -> String {
        let mut out = String::new();
        for seg in w.segs() {
            match seg {
                Seg::Lit(l) => out.push_str(l),
                Seg::Var(v) => out.push_str(self.get(v)),
            }
        }
        out
    }

    /// Expand a slice of words.
    pub fn expand_all(&self, ws: &[Word]) -> Vec<String> {
        ws.iter().map(|w| self.expand(w)).collect()
    }
}

/// Trim *all* trailing newlines (including CRLF pairs) from captured
/// command output, as Bourne command substitution does. Interior
/// newlines are preserved.
pub fn trim_capture(s: &str) -> &str {
    s.trim_end_matches(['\n', '\r'])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_reads_empty() {
        let env = Env::new();
        assert_eq!(env.get("nope"), "");
        assert!(!env.is_set("nope"));
    }

    #[test]
    fn set_get_unset() {
        let mut env = Env::new();
        env.set("host", "xxx");
        assert_eq!(env.get("host"), "xxx");
        assert!(env.is_set("host"));
        env.unset("host");
        assert!(!env.is_set("host"));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut env = Env::new();
        env.append("log", "a");
        env.append("log", "b");
        assert_eq!(env.get("log"), "ab");
    }

    #[test]
    fn expansion_mixes_segments() {
        let mut env = Env::new();
        env.set("server", "yyy");
        let w = Word::from_segs(vec![
            Seg::Lit("http://".into()),
            Seg::Var("server".into()),
            Seg::Lit("/file".into()),
        ]);
        assert_eq!(env.expand(&w), "http://yyy/file");
    }

    #[test]
    fn expansion_of_unset_is_empty() {
        let env = Env::new();
        assert_eq!(env.expand(&Word::var("missing")), "");
    }

    #[test]
    fn clone_isolates_scopes() {
        let mut parent = Env::new();
        parent.set("x", "1");
        let mut child = parent.clone();
        child.set("x", "2");
        child.set("y", "3");
        assert_eq!(parent.get("x"), "1");
        assert!(!parent.is_set("y"));
    }

    #[test]
    fn trim_capture_variants() {
        assert_eq!(trim_capture("1234\n"), "1234");
        assert_eq!(trim_capture("1234\r\n"), "1234");
        assert_eq!(trim_capture("1234"), "1234");
        assert_eq!(trim_capture("a\nb\n"), "a\nb");
        assert_eq!(trim_capture(""), "");
        // Bourne command substitution strips every trailing newline,
        // not just the last one.
        assert_eq!(trim_capture("1234\n\n\n"), "1234");
        assert_eq!(trim_capture("a\r\n\r\n"), "a");
        assert_eq!(trim_capture("a\nb\n\n"), "a\nb");
        assert_eq!(trim_capture("\n\n"), "");
        assert_eq!(trim_capture("abc\r"), "abc");
        assert_eq!(trim_capture("a\r\nb"), "a\r\nb");
    }
}
