//! Shell variables and word expansion.
//!
//! ftsh keeps variables in the interpreter itself (not the process
//! environment): they are the target of the `->` capture redirections,
//! the binding of `forany`/`forall` loop variables, and the operands of
//! `if` comparisons. Unset variables expand to the empty string, as in
//! the Bourne shell.
//!
//! Names and values are interned ([`Istr`]), which makes the two hot
//! expansion shapes allocation-free: a fully-literal word clones the
//! `Istr` stored in the AST, and a bare `${var}` word clones the value
//! stored in the environment. Only genuinely mixed words (literal text
//! around a substitution) build a fresh string.

use crate::ast::{Seg, Word};
use crate::intern::Istr;
use std::collections::HashMap;

/// A variable scope. Cloned for `forall` branches so that branch-local
/// mutations stay branch-local (branches are notionally separate
/// processes); the clone copies the table but shares every name and
/// value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    vars: HashMap<Istr, Istr>,
}

impl Env {
    /// An empty scope.
    pub fn new() -> Env {
        Env::default()
    }

    /// Look up a variable; unset variables read as `""`.
    pub fn get(&self, name: &str) -> &str {
        self.vars.get(name).map(Istr::as_str).unwrap_or("")
    }

    /// Look up a variable as its shared handle (`None` when unset).
    pub fn get_istr(&self, name: &str) -> Option<&Istr> {
        self.vars.get(name)
    }

    /// Whether the variable has been set.
    pub fn is_set(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Bind a variable.
    pub fn set(&mut self, name: impl Into<Istr>, value: impl Into<Istr>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Append to a variable (the `->>` capture form).
    pub fn append(&mut self, name: &str, value: &str) {
        match self.vars.get_mut(name) {
            Some(v) => {
                let mut joined = String::with_capacity(v.len() + value.len());
                joined.push_str(v);
                joined.push_str(value);
                *v = Istr::from(joined);
            }
            None => {
                self.vars.insert(Istr::from(name), Istr::from(value));
            }
        }
    }

    /// Remove a binding.
    pub fn unset(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Number of bindings (for diagnostics).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Iterate every binding (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Istr, &Istr)> {
        self.vars.iter()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Snapshot the positional bindings (`0`–`99…`, `*`) for a
    /// function call.
    pub fn snapshot_positionals(&self) -> Vec<(Istr, Istr)> {
        self.vars
            .iter()
            .filter(|(k, _)| k.as_str() == "*" || k.chars().all(|c| c.is_ascii_digit()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Remove every positional binding.
    pub fn clear_positionals(&mut self) {
        self.vars
            .retain(|k, _| k.as_str() != "*" && !k.chars().all(|c| c.is_ascii_digit()));
    }

    /// Expand a word against this scope. Literal words and bare
    /// `${var}` words are refcount bumps; only mixed words allocate.
    pub fn expand(&self, w: &Word) -> Istr {
        match w.segs() {
            [] => Istr::empty(),
            [Seg::Lit(s)] => s.clone(),
            [Seg::Var(v)] => self.get_istr(v).cloned().unwrap_or_default(),
            segs => {
                let mut out = String::new();
                for seg in segs {
                    match seg {
                        Seg::Lit(l) => out.push_str(l),
                        Seg::Var(v) => out.push_str(self.get(v)),
                    }
                }
                Istr::from(out)
            }
        }
    }

    /// Expand a slice of words.
    pub fn expand_all(&self, ws: &[Word]) -> Vec<Istr> {
        let mut out = Vec::with_capacity(ws.len());
        self.expand_all_into(ws, &mut out);
        out
    }

    /// [`expand_all`](Self::expand_all) into a caller-owned buffer:
    /// `out` is cleared and refilled, reusing its capacity. The VM's
    /// command dispatch recycles argv vectors through this so a
    /// steady-state script execution allocates nothing per command.
    pub fn expand_all_into(&self, ws: &[Word], out: &mut Vec<Istr>) {
        out.clear();
        out.extend(ws.iter().map(|w| self.expand(w)));
    }
}

/// Trim *all* trailing newlines (including CRLF pairs) from captured
/// command output, as Bourne command substitution does. Interior
/// newlines are preserved.
pub fn trim_capture(s: &str) -> &str {
    s.trim_end_matches(['\n', '\r'])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_reads_empty() {
        let env = Env::new();
        assert_eq!(env.get("nope"), "");
        assert!(!env.is_set("nope"));
    }

    #[test]
    fn set_get_unset() {
        let mut env = Env::new();
        env.set("host", "xxx");
        assert_eq!(env.get("host"), "xxx");
        assert!(env.is_set("host"));
        env.unset("host");
        assert!(!env.is_set("host"));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut env = Env::new();
        env.append("log", "a");
        env.append("log", "b");
        assert_eq!(env.get("log"), "ab");
    }

    #[test]
    fn expansion_mixes_segments() {
        let mut env = Env::new();
        env.set("server", "yyy");
        let w = Word::from_segs(vec![
            Seg::Lit("http://".into()),
            Seg::Var("server".into()),
            Seg::Lit("/file".into()),
        ]);
        assert_eq!(env.expand(&w), "http://yyy/file");
    }

    #[test]
    fn expansion_of_unset_is_empty() {
        let env = Env::new();
        assert_eq!(env.expand(&Word::var("missing")), "");
    }

    #[test]
    fn single_segment_expansions_share_storage() {
        let mut env = Env::new();
        env.set("n", "842");
        // Bare-variable expansion returns the stored handle itself.
        let stored = env.get_istr("n").cloned().unwrap();
        assert_eq!(env.expand(&Word::var("n")), stored);
        // Literal expansion returns the AST's handle.
        let w = Word::lit("condor_submit");
        assert_eq!(env.expand(&w), "condor_submit");
    }

    #[test]
    fn clone_isolates_scopes() {
        let mut parent = Env::new();
        parent.set("x", "1");
        let mut child = parent.clone();
        child.set("x", "2");
        child.set("y", "3");
        assert_eq!(parent.get("x"), "1");
        assert!(!parent.is_set("y"));
    }

    #[test]
    fn trim_capture_variants() {
        assert_eq!(trim_capture("1234\n"), "1234");
        assert_eq!(trim_capture("1234\r\n"), "1234");
        assert_eq!(trim_capture("1234"), "1234");
        assert_eq!(trim_capture("a\nb\n"), "a\nb");
        assert_eq!(trim_capture(""), "");
        // Bourne command substitution strips every trailing newline,
        // not just the last one.
        assert_eq!(trim_capture("1234\n\n\n"), "1234");
        assert_eq!(trim_capture("a\r\n\r\n"), "a");
        assert_eq!(trim_capture("a\nb\n\n"), "a\nb");
        assert_eq!(trim_capture("\n\n"), "");
        assert_eq!(trim_capture("abc\r"), "abc");
        assert_eq!(trim_capture("a\r\nb"), "a\r\nb");
    }
}
