//! The ftsh grammar, as implemented by [`crate::parse`].
//!
//! This module contains no code — it is the language reference.
//!
//! # Lexical structure
//!
//! * Statements end at newlines; `\` before a newline continues the
//!   line; `#` starts a comment to end of line.
//! * A **word** is a run of literal characters and substitutions.
//!   `"..."` groups spaces and still substitutes `${var}`; `'...'` is
//!   fully literal; `\c` escapes any character.
//! * `${name}` (or bare `$name` for alphanumeric names) substitutes a
//!   shell variable. Unset variables expand to the empty string.
//!   Inside a function body, `${1}`…`${n}` are the call arguments,
//!   `${0}` the function name, `${*}` all arguments joined by spaces.
//! * The redirection operators `>`, `>>`, `>&`, `<`, `->`, `->>`,
//!   `->&`, `-<` are tokens only when they stand alone between words.
//! * Keywords are recognized *positionally*: only a fully literal word
//!   in command position opens a construct.
//!
//! # Grammar (EBNF)
//!
//! ```text
//! script      ::= { statement }
//! statement   ::= command | assignment | try | forany | forall
//!               | if | function | "failure" | "success"
//!
//! command     ::= word { word } { redirection }
//! redirection ::= ( ">" | ">>" | ">&" ) word      (* stdout to file *)
//!               | "<" word                        (* stdin from file *)
//!               | ( "->" | "->>" | "->&" ) word   (* stdout to variable *)
//!               | "-<" word                       (* stdin from variable *)
//!
//! assignment  ::= name "=" word-tail              (* one word: name=value *)
//!
//! try         ::= "try" [ limits ] NL { statement }
//!                 [ "catch" NL { statement } ] "end" NL
//! limits      ::= forclause [ ["or"] timesclause ] [ everyclause ]
//!               | timesclause [ ["or"] forclause ] [ everyclause ]
//! forclause   ::= "for" number unit
//! timesclause ::= number ( "times" | "time" )
//! everyclause ::= "every" number unit
//! unit        ::= "us" | "ms" | "s" | "sec" | "second(s)"
//!               | "m" | "min" | "minute(s)" | "h" | "hour(s)"
//!               | "d" | "day(s)" | ...
//!
//! forany      ::= "forany" name "in" word { word } NL
//!                 { statement } "end" NL
//! forall      ::= "forall" name "in" word { word } NL
//!                 { statement } "end" NL
//!
//! if          ::= "if" word op word NL { statement }
//!                 [ "else" NL { statement } ] "end" NL
//! op          ::= ".lt." | ".le." | ".gt." | ".ge." | ".eq." | ".ne."
//!               | ".eql." | ".neql."
//!
//! function    ::= "function" name NL { statement } "end" NL
//! ```
//!
//! # Semantics in one paragraph
//!
//! A statement **succeeds or fails**; there are no other values. A
//! group (script, body) runs sequentially and fails fast. `try`
//! re-runs its body under a time/attempt budget with randomized
//! exponential backoff between failures (base 1 s, doubled, capped at
//! 1 h, scaled by a uniform factor in [1, 2); `every` replaces this
//! with a constant interval); a deadline that expires mid-flight
//! forcibly terminates the body's processes. `catch` handles the
//! failure; its own result becomes the try's result. `forany` runs its
//! body once per binding until one succeeds; `forall` runs all
//! bindings in parallel (optionally throttled via
//! [`crate::Vm::set_max_parallel`]) and aborts the stragglers when any
//! branch fails. Numeric comparisons on non-numbers fail like any
//! command. Calling a defined function runs its body with positional
//! parameters bound; recursion beyond depth 64 fails.
