//! The execution log.
//!
//! §4: *"While executing a script, ftsh keeps a log of varying detail
//! about the program. Online or post-mortem analysis may determine more
//! detailed reasons for process failure, the exact resources used to
//! execute the program, the frequency of each failure branch, and so
//! forth."* The VM records one [`LogEvent`] per interesting transition;
//! [`LogSummary`] is the post-mortem analysis.
//!
//! The log has *varying detail* in a literal sense: counters (the
//! [`LogSummary`]) are maintained incrementally on every push, while
//! the per-event record is only stored when the log is in detailed
//! mode. Large VM populations run counters-only
//! ([`EventLog::set_detailed`]`(false)`), so a million ticks of
//! simulation cost zero log allocations; interactive and post-mortem
//! runs keep the full event stream.

use crate::intern::Istr;
use retry::{Dur, Time};

/// Kinds of logged transitions.
#[derive(Clone, Debug, PartialEq)]
pub enum LogKind {
    /// A command was dispatched to the executor.
    CmdStart {
        /// Expanded argv.
        argv: Vec<Istr>,
    },
    /// A command finished.
    CmdEnd {
        /// Expanded `argv[0]` for correlation.
        program: Istr,
        /// Whether it exited successfully.
        success: bool,
    },
    /// A command was cancelled by a deadline.
    CmdCancelled {
        /// Expanded `argv[0]`.
        program: Istr,
    },
    /// A `try` opened an attempt.
    TryAttempt {
        /// 1-based attempt number within the try session.
        attempt: u32,
    },
    /// A failed attempt scheduled a backoff delay.
    Backoff {
        /// How long the client will stay off the medium.
        delay: Dur,
    },
    /// A `try` ran out of budget (time or attempts).
    TryExhausted,
    /// A `try` deadline expired while work was in flight; the work was
    /// forcibly terminated.
    TryTimeout,
    /// Control entered a `catch` handler.
    CatchEntered,
    /// `forany` moved on to its next alternative.
    ForAnyNext {
        /// The value now bound to the loop variable.
        value: Istr,
    },
    /// `forall` spawned its parallel branches.
    ForAllSpawn {
        /// Number of branches.
        branches: usize,
    },
    /// A variable was assigned (assignment or capture).
    VarSet {
        /// Variable name.
        name: Istr,
    },
    /// The whole script finished.
    ScriptDone {
        /// Overall outcome.
        success: bool,
    },
}

/// One logged transition.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEvent {
    /// Virtual instant of the transition.
    pub time: Time,
    /// The VM task that made it (0 is the root; `forall` branches get
    /// fresh ids).
    pub task: usize,
    /// What happened.
    pub kind: LogKind,
}

/// Append-only event log with an incrementally-maintained summary.
///
/// Counters are updated on every push regardless of detail mode; the
/// per-event stream is only retained while `detailed` is true (the
/// default). Counters-only mode makes pushing whose payloads are
/// interned strings completely allocation-free.
#[derive(Clone, Debug)]
pub struct EventLog {
    events: Vec<LogEvent>,
    summary: LogSummary,
    detailed: bool,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog {
            events: Vec::new(),
            summary: LogSummary::default(),
            detailed: true,
        }
    }
}

impl EventLog {
    /// An empty log (detailed mode).
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Switch event retention on or off. Counters keep accumulating in
    /// either mode; events already stored are kept.
    pub fn set_detailed(&mut self, detailed: bool) {
        self.detailed = detailed;
    }

    /// Whether the per-event stream is being retained.
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }

    /// Record an event.
    pub fn push(&mut self, time: Time, task: usize, kind: LogKind) {
        self.count(&kind);
        if self.detailed {
            self.events.push(LogEvent { time, task, kind });
        }
    }

    /// Record a command dispatch without materialising the argv vector
    /// unless it will actually be stored — the hot-path variant of
    /// pushing [`LogKind::CmdStart`].
    pub fn cmd_start(&mut self, time: Time, task: usize, argv: &[Istr]) {
        self.summary.commands_started += 1;
        if self.detailed {
            self.events.push(LogEvent {
                time,
                task,
                kind: LogKind::CmdStart {
                    argv: argv.to_vec(),
                },
            });
        }
    }

    /// Record a `forany` alternative without cloning the value unless
    /// the event will actually be stored — the hot-path variant of
    /// pushing [`LogKind::ForAnyNext`].
    pub fn for_any_next(&mut self, time: Time, task: usize, value: &Istr) {
        self.summary.alternatives_tried += 1;
        if self.detailed {
            self.events.push(LogEvent {
                time,
                task,
                kind: LogKind::ForAnyNext {
                    value: value.clone(),
                },
            });
        }
    }

    /// Record a variable assignment without cloning the name unless
    /// the event will actually be stored — the hot-path variant of
    /// pushing [`LogKind::VarSet`] (which no counter tracks).
    pub fn var_set(&mut self, time: Time, task: usize, name: &Istr) {
        if self.detailed {
            self.events.push(LogEvent {
                time,
                task,
                kind: LogKind::VarSet { name: name.clone() },
            });
        }
    }

    fn count(&mut self, kind: &LogKind) {
        let s = &mut self.summary;
        match kind {
            LogKind::CmdStart { .. } => s.commands_started += 1,
            LogKind::CmdEnd { success, .. } => {
                if *success {
                    s.commands_succeeded += 1;
                } else {
                    s.commands_failed += 1;
                }
            }
            LogKind::CmdCancelled { .. } => s.commands_cancelled += 1,
            LogKind::TryAttempt { .. } => s.attempts += 1,
            LogKind::Backoff { delay } => {
                s.backoffs += 1;
                s.total_backoff += *delay;
            }
            LogKind::TryExhausted => s.exhausted_tries += 1,
            LogKind::TryTimeout => s.timed_out_tries += 1,
            LogKind::CatchEntered => s.catches += 1,
            LogKind::ForAnyNext { .. } => s.alternatives_tried += 1,
            _ => {}
        }
    }

    /// All retained events in order (empty in counters-only mode).
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Post-mortem aggregate — an O(1) copy of the running counters,
    /// valid in both detail modes.
    pub fn summary(&self) -> LogSummary {
        self.summary
    }
}

impl EventLog {
    /// Per-program statistics: (starts, successes, failures,
    /// cancellations), keyed by `argv[0]` — "the frequency of each
    /// failure branch" of §4's post-mortem analysis.
    pub fn per_program(&self) -> std::collections::BTreeMap<String, ProgramStats> {
        let mut map = std::collections::BTreeMap::<String, ProgramStats>::default();
        for e in &self.events {
            match &e.kind {
                LogKind::CmdStart { argv } => {
                    if let Some(p) = argv.first() {
                        map.entry(p.to_string()).or_default().started += 1;
                    }
                }
                LogKind::CmdEnd { program, success } => {
                    let st = map.entry(program.to_string()).or_default();
                    if *success {
                        st.succeeded += 1;
                    } else {
                        st.failed += 1;
                    }
                }
                LogKind::CmdCancelled { program } => {
                    map.entry(program.to_string()).or_default().cancelled += 1;
                }
                _ => {}
            }
        }
        map
    }

    /// How often each `forany` alternative was tried, keyed by the
    /// bound value — which alternates actually carried the load.
    pub fn alternative_frequency(&self) -> std::collections::BTreeMap<String, u64> {
        let mut map = std::collections::BTreeMap::<String, u64>::default();
        for e in &self.events {
            if let LogKind::ForAnyNext { value } = &e.kind {
                *map.entry(value.to_string()).or_default() += 1;
            }
        }
        map
    }
}

impl EventLog {
    /// Bridge this VM-local log into the cross-layer structured-trace
    /// pipeline: replay every event as a [`TraceRecord`] attributed to
    /// `client`. This is the post-hoc path for runs that finished
    /// without a live tracer (e.g. a real-driver run whose log is only
    /// inspected after failure); live tracing via `Vm::set_tracer`
    /// additionally carries span budgets, which the log does not
    /// retain, so replayed `attempt-start` records have no budget and
    /// backoffs borrow the last attempt number seen on the task.
    ///
    /// [`TraceRecord`]: simgrid::trace::TraceRecord
    pub fn replay_into(&self, sink: &mut dyn simgrid::trace::TraceSink, client: i64) {
        use simgrid::trace::{TraceEv, TraceRecord};
        let mut last_attempt = std::collections::HashMap::<usize, u32>::default();
        for e in &self.events {
            let ev = match &e.kind {
                LogKind::CmdStart { argv } => TraceEv::CmdStart {
                    program: argv.first().map(Istr::to_string).unwrap_or_default(),
                },
                LogKind::CmdEnd { program, success } => TraceEv::CmdEnd {
                    program: program.to_string(),
                    ok: *success,
                },
                LogKind::CmdCancelled { program } => TraceEv::CmdKilled {
                    program: program.to_string(),
                },
                LogKind::TryAttempt { attempt } => {
                    last_attempt.insert(e.task, *attempt);
                    TraceEv::AttemptStart {
                        attempt: *attempt,
                        budget: None,
                    }
                }
                LogKind::Backoff { delay } => TraceEv::Backoff {
                    attempt: last_attempt.get(&e.task).copied().unwrap_or(0),
                    delay: *delay,
                },
                LogKind::TryExhausted => TraceEv::TryExhausted,
                LogKind::TryTimeout => TraceEv::TryTimeout,
                LogKind::CatchEntered => TraceEv::CatchEntered,
                LogKind::ScriptDone { success } => TraceEv::UnitDone { ok: *success },
                // Variable and loop bookkeeping has no cross-layer
                // trace counterpart.
                LogKind::ForAnyNext { .. }
                | LogKind::ForAllSpawn { .. }
                | LogKind::VarSet { .. } => continue,
            };
            sink.record(&TraceRecord {
                t: e.time,
                client,
                task: e.task as i64,
                ev,
            });
        }
    }

    /// Render a human-readable per-task timeline — one swimlane per VM
    /// task, with command durations and retry structure:
    ///
    /// ```text
    /// task 0
    ///     0.000s  attempt #1
    ///     0.000s  wget http://x/f ... failed (2.000s)
    ///     2.000s  backoff 1s
    /// ```
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write;
        // Group events per task, preserving order.
        let mut tasks: Vec<usize> = self.events.iter().map(|e| e.task).collect();
        tasks.sort_unstable();
        tasks.dedup();
        let mut out = String::new();
        for task in tasks {
            let _ = writeln!(out, "task {task}");
            let events: Vec<&LogEvent> = self.events.iter().filter(|e| e.task == task).collect();
            let mut cmd_started_at: Option<Time> = None;
            for e in &events {
                let t = e.time.as_secs_f64();
                match &e.kind {
                    LogKind::CmdStart { argv } => {
                        cmd_started_at = Some(e.time);
                        let _ = writeln!(out, "  {t:>9.3}s  run {}", argv.join(" "));
                    }
                    LogKind::CmdEnd { program, success } => {
                        let dur = cmd_started_at
                            .take()
                            .map(|s| e.time.saturating_since(s).as_secs_f64())
                            .unwrap_or(0.0);
                        let verdict = if *success { "ok" } else { "failed" };
                        let _ = writeln!(out, "  {t:>9.3}s  └ {program} {verdict} ({dur:.3}s)");
                    }
                    LogKind::CmdCancelled { program } => {
                        let dur = cmd_started_at
                            .take()
                            .map(|s| e.time.saturating_since(s).as_secs_f64())
                            .unwrap_or(0.0);
                        let _ = writeln!(out, "  {t:>9.3}s  └ {program} KILLED ({dur:.3}s)");
                    }
                    LogKind::TryAttempt { attempt } => {
                        let _ = writeln!(out, "  {t:>9.3}s  attempt #{attempt}");
                    }
                    LogKind::Backoff { delay } => {
                        let _ = writeln!(out, "  {t:>9.3}s  backoff {delay}");
                    }
                    LogKind::TryExhausted => {
                        let _ = writeln!(out, "  {t:>9.3}s  try exhausted");
                    }
                    LogKind::TryTimeout => {
                        let _ = writeln!(out, "  {t:>9.3}s  try deadline expired");
                    }
                    LogKind::CatchEntered => {
                        let _ = writeln!(out, "  {t:>9.3}s  catch");
                    }
                    LogKind::ForAnyNext { value } => {
                        let _ = writeln!(out, "  {t:>9.3}s  forany -> {value}");
                    }
                    LogKind::ForAllSpawn { branches } => {
                        let _ = writeln!(out, "  {t:>9.3}s  forall x{branches}");
                    }
                    LogKind::VarSet { name } => {
                        let _ = writeln!(out, "  {t:>9.3}s  set {name}");
                    }
                    LogKind::ScriptDone { success } => {
                        let verdict = if *success { "SUCCESS" } else { "FAILURE" };
                        let _ = writeln!(out, "  {t:>9.3}s  script done: {verdict}");
                    }
                }
            }
        }
        out
    }
}

/// Per-program counters from [`EventLog::per_program`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Times the program was dispatched.
    pub started: u64,
    /// Times it exited zero.
    pub succeeded: u64,
    /// Times it exited nonzero.
    pub failed: u64,
    /// Times a deadline killed it.
    pub cancelled: u64,
}

/// Aggregated view of an [`EventLog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogSummary {
    /// Commands dispatched.
    pub commands_started: u64,
    /// Commands that exited zero.
    pub commands_succeeded: u64,
    /// Commands that exited nonzero.
    pub commands_failed: u64,
    /// Commands killed by deadlines.
    pub commands_cancelled: u64,
    /// `try` attempts opened.
    pub attempts: u64,
    /// Backoff delays taken.
    pub backoffs: u64,
    /// Total time spent backing off.
    pub total_backoff: Dur,
    /// `try` blocks that ran out of budget.
    pub exhausted_tries: u64,
    /// `try` blocks whose deadline killed in-flight work.
    pub timed_out_tries: u64,
    /// `catch` handlers entered.
    pub catches: u64,
    /// `forany` alternative switches.
    pub alternatives_tried: u64,
}

impl std::ops::AddAssign for LogSummary {
    fn add_assign(&mut self, o: LogSummary) {
        self.commands_started += o.commands_started;
        self.commands_succeeded += o.commands_succeeded;
        self.commands_failed += o.commands_failed;
        self.commands_cancelled += o.commands_cancelled;
        self.attempts += o.attempts;
        self.backoffs += o.backoffs;
        self.total_backoff += o.total_backoff;
        self.exhausted_tries += o.exhausted_tries;
        self.timed_out_tries += o.timed_out_tries;
        self.catches += o.catches;
        self.alternatives_tried += o.alternatives_tried;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_addition_accumulates() {
        let mut a = LogSummary {
            attempts: 2,
            backoffs: 1,
            total_backoff: Dur::from_secs(3),
            ..LogSummary::default()
        };
        let b = LogSummary {
            attempts: 5,
            total_backoff: Dur::from_secs(4),
            ..LogSummary::default()
        };
        a += b;
        assert_eq!(a.attempts, 7);
        assert_eq!(a.backoffs, 1);
        assert_eq!(a.total_backoff, Dur::from_secs(7));
    }

    #[test]
    fn summary_counts() {
        let mut log = EventLog::new();
        let t = Time::ZERO;
        log.push(
            t,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into()],
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: false,
            },
        );
        log.push(
            t,
            0,
            LogKind::Backoff {
                delay: Dur::from_secs(1),
            },
        );
        log.push(t, 0, LogKind::TryAttempt { attempt: 2 });
        log.push(
            t,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into()],
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: true,
            },
        );
        log.push(t, 0, LogKind::ScriptDone { success: true });
        let s = log.summary();
        assert_eq!(s.commands_started, 2);
        assert_eq!(s.commands_succeeded, 1);
        assert_eq!(s.commands_failed, 1);
        assert_eq!(s.backoffs, 1);
        assert_eq!(s.total_backoff, Dur::from_secs(1));
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn per_program_and_alternatives() {
        let mut log = EventLog::new();
        let t = Time::ZERO;
        log.push(
            t,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into(), "u".into()],
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: false,
            },
        );
        log.push(
            t,
            0,
            LogKind::ForAnyNext {
                value: "yyy".into(),
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into(), "v".into()],
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdCancelled {
                program: "wget".into(),
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdStart {
                argv: vec!["tar".into()],
            },
        );
        log.push(
            t,
            0,
            LogKind::CmdEnd {
                program: "tar".into(),
                success: true,
            },
        );
        let per = log.per_program();
        assert_eq!(per["wget"].started, 2);
        assert_eq!(per["wget"].failed, 1);
        assert_eq!(per["wget"].cancelled, 1);
        assert_eq!(per["tar"].succeeded, 1);
        let alts = log.alternative_frequency();
        assert_eq!(alts["yyy"], 1);
    }

    #[test]
    fn timeline_renders_swimlanes() {
        let mut log = EventLog::new();
        log.push(Time::ZERO, 0, LogKind::TryAttempt { attempt: 1 });
        log.push(
            Time::ZERO,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into(), "u".into()],
            },
        );
        log.push(
            Time::from_secs(2),
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: false,
            },
        );
        log.push(
            Time::from_secs(2),
            0,
            LogKind::Backoff {
                delay: Dur::from_secs(1),
            },
        );
        log.push(
            Time::from_secs(3),
            1,
            LogKind::CmdStart {
                argv: vec!["tar".into()],
            },
        );
        log.push(
            Time::from_secs(4),
            1,
            LogKind::CmdCancelled {
                program: "tar".into(),
            },
        );
        let text = log.render_timeline();
        assert!(text.contains("task 0"));
        assert!(text.contains("task 1"));
        assert!(text.contains("run wget u"));
        assert!(text.contains("wget failed (2.000s)"));
        assert!(text.contains("backoff 1s"));
        assert!(text.contains("tar KILLED (1.000s)"));
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.summary(), LogSummary::default());
    }

    #[test]
    fn counters_only_mode_keeps_summary_but_no_events() {
        let mut log = EventLog::new();
        log.set_detailed(false);
        assert!(!log.is_detailed());
        let argv: Vec<Istr> = vec!["wget".into(), "u".into()];
        log.cmd_start(Time::ZERO, 0, &argv);
        log.push(
            Time::ZERO,
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: true,
            },
        );
        log.push(Time::ZERO, 0, LogKind::TryAttempt { attempt: 1 });
        assert!(log.is_empty());
        let s = log.summary();
        assert_eq!(s.commands_started, 1);
        assert_eq!(s.commands_succeeded, 1);
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn cmd_start_matches_pushed_variant() {
        let mut a = EventLog::new();
        let argv: Vec<Istr> = vec!["tar".into(), "xf".into()];
        a.cmd_start(Time::ZERO, 3, &argv);
        let mut b = EventLog::new();
        b.push(Time::ZERO, 3, LogKind::CmdStart { argv: argv.clone() });
        assert_eq!(a.events(), b.events());
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn replay_bridges_log_into_trace() {
        use simgrid::trace::{TraceEv, VecSink};
        let mut log = EventLog::new();
        log.push(Time::ZERO, 0, LogKind::TryAttempt { attempt: 1 });
        log.push(
            Time::ZERO,
            0,
            LogKind::CmdStart {
                argv: vec!["wget".into(), "u".into()],
            },
        );
        log.push(
            Time::from_secs(2),
            0,
            LogKind::CmdEnd {
                program: "wget".into(),
                success: false,
            },
        );
        log.push(
            Time::from_secs(2),
            0,
            LogKind::Backoff {
                delay: Dur::from_secs(1),
            },
        );
        log.push(Time::from_secs(3), 0, LogKind::VarSet { name: "x".into() });
        log.push(
            Time::from_secs(4),
            0,
            LogKind::ScriptDone { success: false },
        );
        let mut sink = VecSink::new();
        log.replay_into(&mut sink, 7);
        let recs = sink.records();
        // VarSet has no trace counterpart; everything else maps 1:1.
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.client == 7));
        assert_eq!(
            recs[0].ev,
            TraceEv::AttemptStart {
                attempt: 1,
                budget: None
            }
        );
        assert_eq!(
            recs[3].ev,
            TraceEv::Backoff {
                attempt: 1,
                delay: Dur::from_secs(1)
            }
        );
        assert_eq!(recs[4].ev, TraceEv::UnitDone { ok: false });
    }
}
