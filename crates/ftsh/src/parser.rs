//! Recursive-descent parser for ftsh.
//!
//! Keywords (`try`, `forany`, `forall`, `if`, `else`, `catch`, `end`,
//! `failure`, `success`) are recognized positionally: only a fully
//! literal word at the start of a statement can open a construct, as in
//! the Bourne shell family.

use crate::ast::{
    Block, Command, Cond, CondOp, Redir, RedirTarget, Script, Span, Stmt, TrySpec, Word,
};
use crate::errors::ParseError;
use crate::lexer::{lex, Token, TokenKind};
use retry::time::parse_duration;

/// Parse a complete script.
///
/// ```
/// use ftsh::{parse, Stmt};
///
/// let s = parse("try for 5 minutes\n  condor_submit job\nend\n").unwrap();
/// assert!(matches!(s.stmts[0], Stmt::Try { .. }));
/// assert!(parse("try without end\n").is_err());
/// ```
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        last_span: Span::default(),
    };
    let stmts = p.stmt_list(&[])?;
    p.expect_eof()?;
    Ok(Script { stmts })
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Span of the last consumed non-newline token; statement spans
    /// run from their first token to this.
    last_span: Span,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        if !matches!(t.kind, TokenKind::Newline | TokenKind::Eof) {
            self.last_span = t.span;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    /// An error at the next token, carrying its span.
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), msg).with_span(self.peek().span)
    }

    /// The literal spelling of the next token if it is a fully literal
    /// word.
    fn peek_lit(&self) -> Option<&str> {
        match &self.peek().kind {
            TokenKind::Word(w) => w.as_lit(),
            _ => None,
        }
    }

    fn eat_newlines(&mut self) {
        while matches!(self.peek().kind, TokenKind::Newline) {
            self.next();
        }
    }

    fn expect_newline(&mut self, what: &str) -> Result<(), ParseError> {
        match self.peek().kind {
            TokenKind::Newline => {
                self.next();
                Ok(())
            }
            TokenKind::Eof => Ok(()),
            _ => Err(self.err(format!("expected end of line after {what}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.eat_newlines();
        match self.peek().kind {
            TokenKind::Eof => Ok(()),
            _ => Err(self.err("unexpected text after script (stray 'end'?)")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek_lit() == Some(kw) {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn next_word(&mut self, what: &str) -> Result<Word, ParseError> {
        match self.next() {
            Token {
                kind: TokenKind::Word(w),
                ..
            } => Ok(w),
            t => Err(ParseError::new(t.line, format!("expected {what}")).with_span(t.span)),
        }
    }

    fn next_number(&mut self, what: &str) -> Result<u64, ParseError> {
        let line = self.line();
        let span = self.peek().span;
        let w = self.next_word(what)?;
        w.as_lit()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| {
                ParseError::new(line, format!("expected a number for {what}")).with_span(span)
            })
    }

    /// Parse statements until one of `terminators` appears in command
    /// position (the terminator is not consumed).
    fn stmt_list(&mut self, terminators: &[&str]) -> Result<Block, ParseError> {
        let mut out = Vec::new();
        let mut spans = Vec::new();
        loop {
            self.eat_newlines();
            match &self.peek().kind {
                TokenKind::Eof => return Ok(Block::with_spans(out, spans)),
                TokenKind::Word(w) => {
                    if let Some(l) = w.as_lit() {
                        if terminators.contains(&l) {
                            return Ok(Block::with_spans(out, spans));
                        }
                        if l == "end" || l == "catch" || l == "else" {
                            return Err(self.err(format!("'{l}' without a matching construct")));
                        }
                    }
                    let start = self.peek().span.start;
                    out.push(self.stmt()?);
                    spans.push(Span::new(start, self.last_span.end));
                }
                _ => return Err(self.err("statement cannot begin with a redirection")),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_lit() {
            Some("try") => self.try_stmt(),
            Some("forany") => self.for_stmt(false),
            Some("forall") => self.for_stmt(true),
            Some("if") => self.if_stmt(),
            Some("failure") => {
                self.next();
                self.expect_newline("'failure'")?;
                Ok(Stmt::Failure)
            }
            Some("success") => {
                self.next();
                self.expect_newline("'success'")?;
                Ok(Stmt::Success)
            }
            Some("function") => self.function_stmt(),
            _ => self.command_or_assign(),
        }
    }

    /// `try [for N unit] [or] [N times] [every N unit]` — both orders of
    /// the `for`/`times` clauses are accepted.
    fn try_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let header_start = self.peek().span.start;
        self.expect_keyword("try")?;
        let mut spec = TrySpec::default();
        loop {
            match self.peek_lit() {
                Some("for") => {
                    self.next();
                    let n = self.next_number("a time limit")?;
                    let d = self.time_unit(n)?;
                    if spec.time.replace(d).is_some() {
                        return Err(ParseError::new(self.line(), "duplicate 'for' clause")
                            .with_span(self.last_span));
                    }
                }
                Some("or") => {
                    self.next();
                }
                Some("every") => {
                    self.next();
                    let n = self.next_number("an interval")?;
                    let d = self.time_unit(n)?;
                    if spec.every.replace(d).is_some() {
                        return Err(ParseError::new(self.line(), "duplicate 'every' clause")
                            .with_span(self.last_span));
                    }
                }
                Some(_) if self.looks_like_times() => {
                    let n = self.next_number("an attempt count")?;
                    self.expect_keyword("times")
                        .or_else(|_| self.expect_keyword("time"))?;
                    let n = u32::try_from(n)
                        .map_err(|_| ParseError::new(line, "attempt count too large"))?;
                    if spec.attempts.replace(n).is_some() {
                        return Err(ParseError::new(line, "duplicate 'times' clause")
                            .with_span(self.last_span));
                    }
                }
                _ => break,
            }
        }
        spec.span = Span::new(header_start, self.last_span.end);
        self.expect_newline("'try' header")?;
        let body = self.stmt_list(&["catch", "end"])?;
        let catch = if self.peek_lit() == Some("catch") {
            self.next();
            self.expect_newline("'catch'")?;
            Some(self.stmt_list(&["end"])?)
        } else {
            None
        };
        self.expect_keyword("end").map_err(|_| {
            ParseError::new(line, "'try' without matching 'end'").with_span(spec.span)
        })?;
        self.expect_newline("'end'")?;
        Ok(Stmt::Try { spec, body, catch })
    }

    /// Parse the unit word of a `for`/`every` clause into a duration.
    fn time_unit(&mut self, amount: u64) -> Result<retry::Dur, ParseError> {
        let unit_line = self.line();
        let unit_span = self.peek().span;
        let unit = self.next_word("a time unit")?;
        let unit = unit
            .as_lit()
            .ok_or_else(|| {
                ParseError::new(unit_line, "time unit must be literal").with_span(unit_span)
            })?
            .to_string();
        parse_duration(amount, &unit).ok_or_else(|| {
            ParseError::new(unit_line, format!("unknown time unit '{unit}'")).with_span(unit_span)
        })
    }

    fn function_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect_keyword("function")?;
        let name_line = self.line();
        let name_span = self.peek().span;
        let name = self.next_word("a function name")?;
        let name = name
            .as_lit()
            .filter(|n| is_ident(n))
            .ok_or_else(|| {
                ParseError::new(name_line, "function name must be an identifier")
                    .with_span(name_span)
            })?
            .to_string();
        self.expect_newline("'function' header")?;
        let body = self.stmt_list(&["end"])?;
        self.expect_keyword("end")
            .map_err(|_| ParseError::new(line, "'function' without matching 'end'"))?;
        self.expect_newline("'end'")?;
        Ok(Stmt::Function { name, body })
    }

    /// Does the upcoming input look like `<N> times`?
    fn looks_like_times(&self) -> bool {
        let is_num = self
            .peek_lit()
            .map(|l| !l.is_empty() && l.chars().all(|c| c.is_ascii_digit()))
            .unwrap_or(false);
        if !is_num {
            return false;
        }
        match &self.toks.get(self.pos + 1).map(|t| &t.kind) {
            Some(TokenKind::Word(w)) => matches!(w.as_lit(), Some("times" | "time")),
            _ => false,
        }
    }

    fn for_stmt(&mut self, all: bool) -> Result<Stmt, ParseError> {
        let line = self.line();
        let kw = if all { "forall" } else { "forany" };
        self.expect_keyword(kw)?;
        let var_line = self.line();
        let var_span = self.peek().span;
        let var = self.next_word("a loop variable")?;
        let var = var
            .as_lit()
            .filter(|v| is_ident(v))
            .ok_or_else(|| {
                ParseError::new(var_line, "loop variable must be an identifier").with_span(var_span)
            })?
            .to_string();
        self.expect_keyword("in")?;
        let mut values = Vec::new();
        while let TokenKind::Word(_) = self.peek().kind {
            values.push(self.next_word("a value")?);
        }
        if values.is_empty() {
            return Err(ParseError::new(
                line,
                format!("'{kw}' needs at least one value"),
            ));
        }
        self.expect_newline(&format!("'{kw}' header"))?;
        let body = self.stmt_list(&["end"])?;
        self.expect_keyword("end")
            .map_err(|_| ParseError::new(line, format!("'{kw}' without matching 'end'")))?;
        self.expect_newline("'end'")?;
        if all {
            Ok(Stmt::ForAll { var, values, body })
        } else {
            Ok(Stmt::ForAny { var, values, body })
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect_keyword("if")?;
        let lhs = self.next_word("a comparison operand")?;
        let op_line = self.line();
        let op_span = self.peek().span;
        let op = self.next_word("a comparison operator")?;
        let op = op.as_lit().and_then(CondOp::from_spelling).ok_or_else(|| {
            ParseError::new(
                op_line,
                "expected .lt. .le. .gt. .ge. .eq. .ne. .eql. or .neql.",
            )
            .with_span(op_span)
        })?;
        let rhs = self.next_word("a comparison operand")?;
        self.expect_newline("'if' condition")?;
        let then = self.stmt_list(&["else", "end"])?;
        let els = if self.peek_lit() == Some("else") {
            self.next();
            self.expect_newline("'else'")?;
            Some(self.stmt_list(&["end"])?)
        } else {
            None
        };
        self.expect_keyword("end")
            .map_err(|_| ParseError::new(line, "'if' without matching 'end'"))?;
        self.expect_newline("'end'")?;
        Ok(Stmt::If {
            cond: Cond { lhs, op, rhs },
            then,
            els,
        })
    }

    fn command_or_assign(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let first = self.next_word("a command")?;
        let first_span = first.span();

        // Assignment: a lone word of the shape name=value.
        if matches!(self.peek().kind, TokenKind::Newline | TokenKind::Eof) {
            if let Some((var, value)) = split_assignment(&first) {
                self.expect_newline("assignment")?;
                return Ok(Stmt::Assign { var, value });
            }
        }

        let mut cmd = Command {
            words: vec![first],
            redirs: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::Word(_) => {
                    let w = self.next_word("a word")?;
                    if !cmd.redirs.is_empty() {
                        return Err(ParseError::new(
                            line,
                            "command arguments must precede redirections",
                        )
                        .with_span(w.span()));
                    }
                    cmd.words.push(w);
                }
                TokenKind::RedirOut { var, append, both } => {
                    let (var, append, both) = (*var, *append, *both);
                    self.next();
                    let target = self.next_word("a redirection target")?;
                    cmd.redirs.push(Redir::Out {
                        to: if var {
                            RedirTarget::Variable
                        } else {
                            RedirTarget::File
                        },
                        append,
                        both,
                        target,
                    });
                }
                TokenKind::RedirIn { var } => {
                    let var = *var;
                    self.next();
                    let source = self.next_word("a redirection source")?;
                    cmd.redirs.push(Redir::In {
                        from: if var {
                            RedirTarget::Variable
                        } else {
                            RedirTarget::File
                        },
                        source,
                    });
                }
                TokenKind::Newline | TokenKind::Eof => break,
                TokenKind::Equals => {
                    return Err(ParseError::new(line, "unexpected '='").with_span(first_span));
                }
            }
        }
        self.expect_newline("command")?;
        Ok(Stmt::Command(cmd))
    }
}

/// Is `s` a valid shell identifier?
pub fn is_ident(s: &str) -> bool {
    let mut cs = s.chars();
    match cs.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    cs.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// If `w` looks like `name=value` (name a valid identifier), split it.
fn split_assignment(w: &Word) -> Option<(String, Word)> {
    use crate::ast::Seg;
    let segs = w.segs();
    let Some(Seg::Lit(first)) = segs.first() else {
        return None;
    };
    let eq = first.find('=')?;
    let name = &first[..eq];
    if !is_ident(name) {
        return None;
    }
    let mut value_segs = Vec::new();
    let rest = &first[eq + 1..];
    if !rest.is_empty() {
        value_segs.push(Seg::Lit(rest.into()));
    }
    value_segs.extend(segs[1..].iter().cloned());
    Some((
        name.to_string(),
        Word::from_segs(value_segs).with_span(w.span()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::Dur;

    #[test]
    fn parse_group() {
        let s = parse("wget url\ngunzip f\ntar xvf f\n").unwrap();
        assert_eq!(s.len(), 3);
        assert!(matches!(s.stmts[0], Stmt::Command(_)));
    }

    #[test]
    fn parse_try_for_minutes() {
        let s = parse("try for 30 minutes\n  wget url\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::Try { spec, body, catch } => {
                assert_eq!(spec.time, Some(Dur::from_mins(30)));
                assert_eq!(spec.attempts, None);
                assert_eq!(body.len(), 1);
                assert!(catch.is_none());
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn parse_try_times() {
        let s = parse("try 5 times\n  wget url\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::Try { spec, .. } => {
                assert_eq!(spec.attempts, Some(5));
                assert_eq!(spec.time, None);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_try_both_orders() {
        for src in [
            "try for 1 hour or 3 times\nx\nend\n",
            "try 3 times or for 1 hour\nx\nend\n",
        ] {
            let s = parse(src).unwrap();
            match &s.stmts[0] {
                Stmt::Try { spec, .. } => {
                    assert_eq!(spec.time, Some(Dur::from_hours(1)));
                    assert_eq!(spec.attempts, Some(3));
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn parse_try_every() {
        let s = parse("try for 1 hour every 10 seconds\nx\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::Try { spec, .. } => {
                assert_eq!(spec.every, Some(Dur::from_secs(10)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_try_catch() {
        let s = parse("try 5 times\n wget u\ncatch\n rm -f t\n failure\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::Try { catch, .. } => {
                let c = catch.as_ref().unwrap();
                assert_eq!(c.len(), 2);
                assert!(matches!(c[1], Stmt::Failure));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_forany() {
        let s = parse("forany server in xxx yyy zzz\n wget http://${server}/f\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::ForAny { var, values, body } => {
                assert_eq!(var, "server");
                assert_eq!(values.len(), 3);
                assert_eq!(body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_forall() {
        let s = parse("forall file in a b c\n wget http://s/${file}\nend\n").unwrap();
        assert!(matches!(&s.stmts[0], Stmt::ForAll { values, .. } if values.len() == 3));
    }

    #[test]
    fn parse_if_else() {
        let s = parse("if ${n} .lt. 1000\n failure\nelse\n condor_submit j\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::If { cond, then, els } => {
                assert_eq!(cond.op, CondOp::NumLt);
                assert_eq!(then.len(), 1);
                assert!(matches!(then[0], Stmt::Failure));
                assert_eq!(els.as_ref().unwrap().len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_nested_try_from_paper() {
        let src = "try for 30 minutes\n\
                   try for 5 minutes\n\
                   wget http://server/file.tar.gz\n\
                   end\n\
                   try for 1 minute or 3 times\n\
                   gunzip file.tar.gz\n\
                   tar xvf file.tar\n\
                   end\n\
                   end\n";
        let s = parse(src).unwrap();
        match &s.stmts[0] {
            Stmt::Try { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0], Stmt::Try { .. }));
                assert!(matches!(body[1], Stmt::Try { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_forany_with_inner_try() {
        let src = "try for 1 hour\n\
                   forany host in xxx yyy zzz\n\
                   try for 5 minutes\n\
                   fetch-file ${host} filename\n\
                   end\n\
                   end\n\
                   end\n";
        let s = parse(src).unwrap();
        match &s.stmts[0] {
            Stmt::Try { body, .. } => match &body[0] {
                Stmt::ForAny { body, .. } => assert!(matches!(body[0], Stmt::Try { .. })),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_redirections() {
        let s = parse("run-simulation ->& tmp\ncat -< tmp\n").unwrap();
        match &s.stmts[0] {
            Stmt::Command(c) => {
                assert_eq!(c.redirs.len(), 1);
                assert!(matches!(
                    c.redirs[0],
                    Redir::Out {
                        to: RedirTarget::Variable,
                        both: true,
                        append: false,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
        match &s.stmts[1] {
            Stmt::Command(c) => {
                assert!(matches!(
                    c.redirs[0],
                    Redir::In {
                        from: RedirTarget::Variable,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_assignment() {
        let s = parse("x=5\nurl=http://${h}/f\n").unwrap();
        assert!(
            matches!(&s.stmts[0], Stmt::Assign { var, value } if var == "x" && value.as_lit() == Some("5"))
        );
        assert!(
            matches!(&s.stmts[1], Stmt::Assign { var, value } if var == "url" && value.has_vars())
        );
    }

    #[test]
    fn word_with_equals_in_command_is_not_assignment() {
        let s = parse("env x=5 cmd\n").unwrap();
        assert!(matches!(&s.stmts[0], Stmt::Command(c) if c.words.len() == 3));
    }

    #[test]
    fn carrier_sense_fragment_from_paper() {
        let src = "try for 5 minutes\n\
                   cut -f2 /proc/sys/fs/file-nr -> n\n\
                   if ${n} .lt. 1000\n\
                   failure\n\
                   else\n\
                   condor_submit submit.job\n\
                   end\n\
                   end\n";
        let s = parse(src).unwrap();
        match &s.stmts[0] {
            Stmt::Try { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0], Stmt::Command(_)));
                assert!(matches!(body[1], Stmt::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_function() {
        let s = parse("function fetch\n wget ${1}\nend\n").unwrap();
        match &s.stmts[0] {
            Stmt::Function { name, body } => {
                assert_eq!(name, "fetch");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn function_errors() {
        assert!(parse("function\nx\nend\n").is_err()); // missing name
        assert!(parse("function 9bad\nx\nend\n").is_err()); // bad name
        assert!(parse("function f\nx\n").is_err()); // missing end
    }

    #[test]
    fn errors() {
        assert!(parse("try for 5 minutes\nx\n").is_err()); // missing end
        assert!(parse("end\n").is_err());
        assert!(parse("catch\n").is_err());
        assert!(parse("forany in a b\nx\nend\n").is_err()); // missing var
        assert!(parse("forany v in\nx\nend\n").is_err()); // no values
        assert!(parse("if a .zz. b\nx\nend\n").is_err()); // bad op
        assert!(parse("try for 5 fortnights\nx\nend\n").is_err());
        assert!(parse("> f\n").is_err()); // redirection with no command
        assert!(parse("try for x minutes\ny\nend\n").is_err()); // non-numeric
        assert!(parse("cmd > \n").is_err()); // missing target
    }

    #[test]
    fn args_after_redirection_rejected() {
        assert!(parse("cmd > f extra\n").is_err());
    }

    #[test]
    fn empty_script() {
        let s = parse("").unwrap();
        assert!(s.is_empty());
        let s = parse("\n\n\n").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn statement_spans_resolve_to_source_lines() {
        use crate::errors::line_col;
        let src = "wget url\ntry for 5 minutes\n  gunzip f\nend\nx=1\n";
        let s = parse(src).unwrap();
        // Top-level statement spans point at their first token.
        let (l0, c0) = line_col(src, s.stmts.span_of(0).start);
        assert_eq!((l0, c0), (1, 1));
        let (l1, _) = line_col(src, s.stmts.span_of(1).start);
        assert_eq!(l1, 2);
        // The try construct's span runs through its `end`.
        let (lend, _) = line_col(src, s.stmts.span_of(1).end - 1);
        assert_eq!(lend, 4);
        let (l2, _) = line_col(src, s.stmts.span_of(2).start);
        assert_eq!(l2, 5);
        // Nested body statements carry their own spans.
        match &s.stmts[1] {
            Stmt::Try { spec, body, .. } => {
                let (lb, cb) = line_col(src, body.span_of(0).start);
                assert_eq!((lb, cb), (3, 3));
                // The try header span covers `try for 5 minutes`.
                assert_eq!(
                    &src[spec.span.start as usize..spec.span.end as usize],
                    "try for 5 minutes"
                );
            }
            _ => panic!(),
        }
        // Word spans slice back to their source spelling.
        match &s.stmts[0] {
            Stmt::Command(c) => {
                let sp = c.words[1].span();
                assert_eq!(&src[sp.start as usize..sp.end as usize], "url");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors_carry_spans() {
        let src = "try for 5 fortnights\nx\nend\n";
        let e = parse(src).unwrap_err();
        let sp = e.span.expect("span");
        assert_eq!(&src[sp.start as usize..sp.end as usize], "fortnights");
        let r = e.render(src);
        assert!(r.contains("parse error at 1:11"), "{r}");
        assert!(r.contains("^^^^^^^^^^"), "{r}");

        // A construct left open points back at its header.
        let e = parse("try for 5 minutes\nx\n").unwrap_err();
        let sp = e.span.expect("span");
        assert_eq!(sp.start, 0);

        // Stray terminator points at itself.
        let src = "wget u\nend\n";
        let e = parse(src).unwrap_err();
        let sp = e.span.expect("span");
        assert_eq!(&src[sp.start as usize..sp.end as usize], "end");
    }

    #[test]
    fn is_ident_cases() {
        assert!(is_ident("abc"));
        assert!(is_ident("_x9"));
        assert!(!is_ident("9x"));
        assert!(!is_ident(""));
        assert!(!is_ident("a-b"));
    }
}
