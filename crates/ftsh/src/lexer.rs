//! Tokenizer for ftsh scripts.
//!
//! ftsh is line-oriented like the Bourne shell: statements end at a
//! newline, keywords are recognized positionally, and bare words may mix
//! literal text with `${var}` substitutions. The lexer resolves quoting
//! (`"..."` groups spaces and still substitutes, `'...'` is fully
//! literal), strips `#` comments, honours `\` line continuations, and
//! emits redirection operators (`>`, `>>`, `<`, `>&`, `->`, `->>`,
//! `->&`, `-<`) as distinct tokens when they stand alone.

use crate::ast::{Seg, Word};
use crate::errors::ParseError;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// Source line the token started on.
    pub line: u32,
}

/// The kinds of token ftsh understands.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A word: literal and `${...}` segments.
    Word(Word),
    /// `>` or `->` etc.; `var` is true for the dash-prefixed variable
    /// forms, `append` for `>>` forms, `both` for `>&` forms.
    RedirOut {
        /// Dash-prefixed form targets a shell variable.
        var: bool,
        /// `>>` appends instead of truncating.
        append: bool,
        /// `>&` also captures standard error.
        both: bool,
    },
    /// `<` or `-<`.
    RedirIn {
        /// Dash-prefixed form reads from a shell variable.
        var: bool,
    },
    /// `=` in an assignment (only recognized when a word has the shape
    /// `name=value`; the lexer leaves that to the parser, so this kind
    /// is currently unused by the lexer itself).
    Equals,
    /// End of a statement line.
    Newline,
    /// End of input.
    Eof,
}

/// Lex a whole script into tokens. Returns a token stream always
/// terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    // Current word under construction.
    let mut segs: Vec<Seg> = Vec::new();
    let mut lit = String::new();
    let mut word_open = false; // true if quotes made an (possibly empty) word

    fn flush_lit(segs: &mut Vec<Seg>, lit: &mut String) {
        if !lit.is_empty() {
            segs.push(Seg::Lit(std::mem::take(lit)));
        }
    }

    fn flush_word(
        out: &mut Vec<Token>,
        segs: &mut Vec<Seg>,
        lit: &mut String,
        word_open: &mut bool,
        line: u32,
    ) {
        flush_lit(segs, lit);
        if !segs.is_empty() || *word_open {
            out.push(Token {
                kind: TokenKind::Word(Word::from_segs(std::mem::take(segs))),
                line,
            });
        }
        *word_open = false;
    }

    // Read a ${name} or $name substitution; the leading '$' is consumed.
    fn read_var(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        line: u32,
    ) -> Result<String, ParseError> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut name = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some('\n') => {
                            return Err(ParseError::new(line, "unterminated ${...}"));
                        }
                        Some(c) => name.push(c),
                        None => return Err(ParseError::new(line, "unterminated ${...}")),
                    }
                }
                if name.is_empty() {
                    return Err(ParseError::new(line, "empty variable name in ${}"));
                }
                Ok(name)
            }
            _ => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(ParseError::new(line, "lone '$' (use \\$ for a literal)"));
                }
                Ok(name)
            }
        }
    }

    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                flush_word(&mut out, &mut segs, &mut lit, &mut word_open, line);
                // Collapse duplicate newlines.
                if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
                    out.push(Token {
                        kind: TokenKind::Newline,
                        line,
                    });
                }
                line += 1;
            }
            ' ' | '\t' | '\r' => {
                flush_word(&mut out, &mut segs, &mut lit, &mut word_open, line);
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        flush_word(&mut out, &mut segs, &mut lit, &mut word_open, line);
                        if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
                            out.push(Token {
                                kind: TokenKind::Newline,
                                line,
                            });
                        }
                        line += 1;
                        break;
                    }
                }
            }
            '\\' => match chars.next() {
                Some('\n') => {
                    line += 1; // continuation: the newline is swallowed
                }
                Some(e) => lit.push(e),
                None => return Err(ParseError::new(line, "trailing backslash")),
            },
            '"' => {
                word_open = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('\n') => line += 1,
                            Some(e) => lit.push(e),
                            None => return Err(ParseError::new(line, "unterminated double quote")),
                        },
                        Some('$') => {
                            flush_lit(&mut segs, &mut lit);
                            segs.push(Seg::Var(read_var(&mut chars, line)?));
                        }
                        Some('\n') => {
                            lit.push('\n');
                            line += 1;
                        }
                        Some(e) => lit.push(e),
                        None => return Err(ParseError::new(line, "unterminated double quote")),
                    }
                }
            }
            '\'' => {
                word_open = true;
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some('\n') => {
                            lit.push('\n');
                            line += 1;
                        }
                        Some(e) => lit.push(e),
                        None => return Err(ParseError::new(line, "unterminated single quote")),
                    }
                }
            }
            '$' => {
                flush_lit(&mut segs, &mut lit);
                segs.push(Seg::Var(read_var(&mut chars, line)?));
            }
            '>' if segs.is_empty() && lit.is_empty() && !word_open => {
                let append = matches!(chars.peek(), Some('>'));
                if append {
                    chars.next();
                }
                let both = matches!(chars.peek(), Some('&'));
                if both {
                    chars.next();
                }
                out.push(Token {
                    kind: TokenKind::RedirOut {
                        var: false,
                        append,
                        both,
                    },
                    line,
                });
            }
            '<' if segs.is_empty() && lit.is_empty() && !word_open => {
                out.push(Token {
                    kind: TokenKind::RedirIn { var: false },
                    line,
                });
            }
            '-' if segs.is_empty()
                && lit.is_empty()
                && !word_open
                && matches!(chars.peek(), Some('>') | Some('<')) =>
            {
                match chars.next() {
                    Some('>') => {
                        let append = matches!(chars.peek(), Some('>'));
                        if append {
                            chars.next();
                        }
                        let both = matches!(chars.peek(), Some('&'));
                        if both {
                            chars.next();
                        }
                        out.push(Token {
                            kind: TokenKind::RedirOut {
                                var: true,
                                append,
                                both,
                            },
                            line,
                        });
                    }
                    Some('<') => out.push(Token {
                        kind: TokenKind::RedirIn { var: true },
                        line,
                    }),
                    _ => unreachable!(),
                }
            }
            other => lit.push(other),
        }
    }
    flush_word(&mut out, &mut segs, &mut lit, &mut word_open, line);
    if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
        out.push(Token {
            kind: TokenKind::Newline,
            line,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Word(w) => Some(format!("{w:?}")),
                _ => None,
            })
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_words() {
        let ks = kinds("wget http://server/file.tar.gz\n");
        assert_eq!(ks.len(), 4); // two words, newline, eof
        assert!(matches!(ks[0], TokenKind::Word(_)));
        assert!(matches!(ks[2], TokenKind::Newline));
        assert!(matches!(ks[3], TokenKind::Eof));
    }

    #[test]
    fn variables_brace_and_bare() {
        let ks = kinds("echo ${server} $x\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(w.segs(), &[Seg::Var("server".into())]);
        } else {
            panic!("expected word");
        }
        if let TokenKind::Word(w) = &ks[2] {
            assert_eq!(w.segs(), &[Seg::Var("x".into())]);
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn mixed_word_segments() {
        let ks = kinds("wget http://${server}/file\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(
                w.segs(),
                &[
                    Seg::Lit("http://".into()),
                    Seg::Var("server".into()),
                    Seg::Lit("/file".into())
                ]
            );
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn double_quotes_group_and_substitute() {
        let ks = kinds("echo \"got file from ${server}\"\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(
                w.segs(),
                &[Seg::Lit("got file from ".into()), Seg::Var("server".into())]
            );
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn single_quotes_are_literal() {
        let ks = kinds("echo '${not_a_var}'\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(w.segs(), &[Seg::Lit("${not_a_var}".into())]);
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn empty_quoted_word_is_a_word() {
        let ks = kinds("echo \"\"\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs().is_empty()));
    }

    #[test]
    fn comments_stripped() {
        let ks = kinds("wget url # fetch it\nnext\n");
        let n_words = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Word(_)))
            .count();
        assert_eq!(n_words, 3); // wget, url, next
    }

    #[test]
    fn line_continuation() {
        let ks = kinds("wget \\\n url\n");
        let n_newlines = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Newline))
            .count();
        assert_eq!(n_newlines, 1);
    }

    #[test]
    fn redirect_operators() {
        assert!(matches!(
            kinds("cmd > f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: false,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd >> f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: true,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd >& f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: false,
                both: true
            }
        ));
        assert!(matches!(
            kinds("cmd -> v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: false,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd ->& v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: false,
                both: true
            }
        ));
        assert!(matches!(
            kinds("cmd ->> v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: true,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd < f\n")[1],
            TokenKind::RedirIn { var: false }
        ));
        assert!(matches!(
            kinds("cmd -< v\n")[1],
            TokenKind::RedirIn { var: true }
        ));
    }

    #[test]
    fn dash_not_followed_by_angle_is_a_word() {
        let ks = kinds("rm -f file\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("-f".into())]));
    }

    #[test]
    fn angle_inside_word_is_literal() {
        // `a>b` as a single word: the operator form requires a word break.
        let ks = kinds("echo a>b\n");
        // 'a' is under construction when '>' arrives, so it stays literal.
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("a>b".into())]));
    }

    #[test]
    fn errors() {
        assert!(lex("echo ${unterminated\n").is_err());
        assert!(lex("echo \"open\n").is_err());
        assert!(lex("echo 'open").is_err());
        assert!(lex("echo $ \n").is_err());
        assert!(lex("echo ${}\n").is_err());
        assert!(lex("trailing \\").is_err());
    }

    #[test]
    fn multiple_blank_lines_collapse() {
        let ks = kinds("a\n\n\n\nb\n");
        let n_newlines = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Newline))
            .count();
        assert_eq!(n_newlines, 2);
    }

    #[test]
    fn escaped_dollar() {
        let ks = kinds("echo \\$HOME\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("$HOME".into())]));
    }

    #[test]
    fn words_debug_smoke() {
        // Exercise the helper to keep it honest.
        assert_eq!(words("a b\n").len(), 2);
    }
}
