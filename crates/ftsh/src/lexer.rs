//! Tokenizer for ftsh scripts.
//!
//! ftsh is line-oriented like the Bourne shell: statements end at a
//! newline, keywords are recognized positionally, and bare words may mix
//! literal text with `${var}` substitutions. The lexer resolves quoting
//! (`"..."` groups spaces and still substitutes, `'...'` is fully
//! literal), strips `#` comments, honours `\` line continuations, and
//! emits redirection operators (`>`, `>>`, `<`, `>&`, `->`, `->>`,
//! `->&`, `-<`) as distinct tokens when they stand alone. Every token
//! carries the byte [`Span`] of its source text, which the parser
//! threads into the AST for diagnostics.

use crate::ast::{Seg, Span, Word};
use crate::errors::ParseError;

/// A lexical token with its source line (1-based) and byte span for
/// diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// Source line the token started on.
    pub line: u32,
    /// Byte range of the token's source text.
    pub span: Span,
}

/// The kinds of token ftsh understands.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A word: literal and `${...}` segments.
    Word(Word),
    /// `>` or `->` etc.; `var` is true for the dash-prefixed variable
    /// forms, `append` for `>>` forms, `both` for `>&` forms.
    RedirOut {
        /// Dash-prefixed form targets a shell variable.
        var: bool,
        /// `>>` appends instead of truncating.
        append: bool,
        /// `>&` also captures standard error.
        both: bool,
    },
    /// `<` or `-<`.
    RedirIn {
        /// Dash-prefixed form reads from a shell variable.
        var: bool,
    },
    /// `=` in an assignment (only recognized when a word has the shape
    /// `name=value`; the lexer leaves that to the parser, so this kind
    /// is currently unused by the lexer itself).
    Equals,
    /// End of a statement line.
    Newline,
    /// End of input.
    Eof,
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

/// Lexer state for the word currently under construction.
#[derive(Default)]
struct WordBuf {
    segs: Vec<Seg>,
    lit: String,
    /// Byte offset where the word began.
    start: Option<usize>,
    /// True if quotes made an (possibly empty) word.
    open: bool,
}

impl WordBuf {
    fn mark(&mut self, at: usize) {
        self.start.get_or_insert(at);
    }

    fn flush_lit(&mut self) {
        if !self.lit.is_empty() {
            self.segs
                .push(Seg::Lit(std::mem::take(&mut self.lit).into()));
        }
    }

    /// Emit the pending word (if any) ending at byte offset `end`.
    fn flush(&mut self, out: &mut Vec<Token>, line: u32, end: usize) {
        self.flush_lit();
        if !self.segs.is_empty() || self.open {
            let start = self.start.take().unwrap_or(end);
            let span = Span::new(start as u32, end as u32);
            out.push(Token {
                kind: TokenKind::Word(
                    Word::from_segs(std::mem::take(&mut self.segs)).with_span(span),
                ),
                line,
                span,
            });
        }
        self.open = false;
        self.start = None;
    }
}

/// Lex a whole script into tokens. Returns a token stream always
/// terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars: Chars<'_> = src.char_indices().peekable();
    let mut line: u32 = 1;
    let mut w = WordBuf::default();
    let len = src.len();

    // Next byte offset the cursor will read (== len at end of input).
    fn cursor(chars: &mut Chars<'_>, len: usize) -> usize {
        chars.peek().map_or(len, |&(i, _)| i)
    }

    fn peek_ch(chars: &mut Chars<'_>) -> Option<char> {
        chars.peek().map(|&(_, c)| c)
    }

    fn push_newline(out: &mut Vec<Token>, line: u32, at: usize) {
        if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
            let span = Span::new(at as u32, at as u32 + 1);
            out.push(Token {
                kind: TokenKind::Newline,
                line,
                span,
            });
        }
    }

    // Read a ${name} or $name substitution; the leading '$' (at byte
    // offset `dollar`) is consumed.
    fn read_var(chars: &mut Chars<'_>, line: u32, dollar: usize) -> Result<String, ParseError> {
        let at = |end: usize| Span::new(dollar as u32, end as u32);
        match peek_ch(chars) {
            Some('{') => {
                chars.next();
                let mut name = String::new();
                loop {
                    match chars.next() {
                        Some((_, '}')) => break,
                        Some((i, '\n')) => {
                            return Err(
                                ParseError::new(line, "unterminated ${...}").with_span(at(i))
                            );
                        }
                        Some((_, c)) => name.push(c),
                        None => {
                            return Err(ParseError::new(line, "unterminated ${...}")
                                .with_span(at(dollar + 2)));
                        }
                    }
                }
                if name.is_empty() {
                    return Err(ParseError::new(line, "empty variable name in ${}")
                        .with_span(at(dollar + 3)));
                }
                Ok(name)
            }
            _ => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(ParseError::new(line, "lone '$' (use \\$ for a literal)")
                        .with_span(at(dollar + 1)));
                }
                Ok(name)
            }
        }
    }

    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => {
                w.flush(&mut out, line, i);
                // Collapse duplicate newlines.
                push_newline(&mut out, line, i);
                line += 1;
            }
            ' ' | '\t' | '\r' => {
                w.flush(&mut out, line, i);
            }
            '#' => {
                // Comment to end of line.
                w.flush(&mut out, line, i);
                for (j, c) in chars.by_ref() {
                    if c == '\n' {
                        push_newline(&mut out, line, j);
                        line += 1;
                        break;
                    }
                }
            }
            '\\' => {
                match chars.next() {
                    Some((_, '\n')) => {
                        line += 1; // continuation: the newline is swallowed
                    }
                    Some((_, e)) => {
                        w.mark(i);
                        w.lit.push(e);
                    }
                    None => {
                        return Err(ParseError::new(line, "trailing backslash")
                            .with_span(Span::new(i as u32, len as u32)))
                    }
                }
            }
            '"' => {
                w.mark(i);
                w.open = true;
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, '\n')) => line += 1,
                            Some((_, e)) => w.lit.push(e),
                            None => {
                                return Err(ParseError::new(line, "unterminated double quote")
                                    .with_span(Span::new(i as u32, len as u32)))
                            }
                        },
                        Some((j, '$')) => {
                            w.flush_lit();
                            w.segs.push(Seg::Var(read_var(&mut chars, line, j)?.into()));
                        }
                        Some((_, '\n')) => {
                            w.lit.push('\n');
                            line += 1;
                        }
                        Some((_, e)) => w.lit.push(e),
                        None => {
                            return Err(ParseError::new(line, "unterminated double quote")
                                .with_span(Span::new(i as u32, len as u32)))
                        }
                    }
                }
            }
            '\'' => {
                w.mark(i);
                w.open = true;
                loop {
                    match chars.next() {
                        Some((_, '\'')) => break,
                        Some((_, '\n')) => {
                            w.lit.push('\n');
                            line += 1;
                        }
                        Some((_, e)) => w.lit.push(e),
                        None => {
                            return Err(ParseError::new(line, "unterminated single quote")
                                .with_span(Span::new(i as u32, len as u32)))
                        }
                    }
                }
            }
            '$' => {
                w.mark(i);
                w.flush_lit();
                w.segs.push(Seg::Var(read_var(&mut chars, line, i)?.into()));
            }
            '>' if w.segs.is_empty() && w.lit.is_empty() && !w.open => {
                let append = matches!(peek_ch(&mut chars), Some('>'));
                if append {
                    chars.next();
                }
                let both = matches!(peek_ch(&mut chars), Some('&'));
                if both {
                    chars.next();
                }
                let span = Span::new(i as u32, cursor(&mut chars, len) as u32);
                out.push(Token {
                    kind: TokenKind::RedirOut {
                        var: false,
                        append,
                        both,
                    },
                    line,
                    span,
                });
            }
            '<' if w.segs.is_empty() && w.lit.is_empty() && !w.open => {
                out.push(Token {
                    kind: TokenKind::RedirIn { var: false },
                    line,
                    span: Span::new(i as u32, i as u32 + 1),
                });
            }
            '-' if w.segs.is_empty()
                && w.lit.is_empty()
                && !w.open
                && matches!(peek_ch(&mut chars), Some('>' | '<')) =>
            {
                match chars.next() {
                    Some((_, '>')) => {
                        let append = matches!(peek_ch(&mut chars), Some('>'));
                        if append {
                            chars.next();
                        }
                        let both = matches!(peek_ch(&mut chars), Some('&'));
                        if both {
                            chars.next();
                        }
                        let span = Span::new(i as u32, cursor(&mut chars, len) as u32);
                        out.push(Token {
                            kind: TokenKind::RedirOut {
                                var: true,
                                append,
                                both,
                            },
                            line,
                            span,
                        });
                    }
                    Some((j, '<')) => out.push(Token {
                        kind: TokenKind::RedirIn { var: true },
                        line,
                        span: Span::new(i as u32, j as u32 + 1),
                    }),
                    _ => unreachable!(),
                }
            }
            other => {
                w.mark(i);
                w.lit.push(other);
            }
        }
    }
    w.flush(&mut out, line, len);
    if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
        out.push(Token {
            kind: TokenKind::Newline,
            line,
            span: Span::point(len as u32),
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        span: Span::point(len as u32),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Word(w) => Some(format!("{w:?}")),
                _ => None,
            })
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_words() {
        let ks = kinds("wget http://server/file.tar.gz\n");
        assert_eq!(ks.len(), 4); // two words, newline, eof
        assert!(matches!(ks[0], TokenKind::Word(_)));
        assert!(matches!(ks[2], TokenKind::Newline));
        assert!(matches!(ks[3], TokenKind::Eof));
    }

    #[test]
    fn variables_brace_and_bare() {
        let ks = kinds("echo ${server} $x\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(w.segs(), &[Seg::Var("server".into())]);
        } else {
            panic!("expected word");
        }
        if let TokenKind::Word(w) = &ks[2] {
            assert_eq!(w.segs(), &[Seg::Var("x".into())]);
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn mixed_word_segments() {
        let ks = kinds("wget http://${server}/file\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(
                w.segs(),
                &[
                    Seg::Lit("http://".into()),
                    Seg::Var("server".into()),
                    Seg::Lit("/file".into())
                ]
            );
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn double_quotes_group_and_substitute() {
        let ks = kinds("echo \"got file from ${server}\"\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(
                w.segs(),
                &[Seg::Lit("got file from ".into()), Seg::Var("server".into())]
            );
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn single_quotes_are_literal() {
        let ks = kinds("echo '${not_a_var}'\n");
        if let TokenKind::Word(w) = &ks[1] {
            assert_eq!(w.segs(), &[Seg::Lit("${not_a_var}".into())]);
        } else {
            panic!("expected word");
        }
    }

    #[test]
    fn empty_quoted_word_is_a_word() {
        let ks = kinds("echo \"\"\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs().is_empty()));
    }

    #[test]
    fn comments_stripped() {
        let ks = kinds("wget url # fetch it\nnext\n");
        let n_words = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Word(_)))
            .count();
        assert_eq!(n_words, 3); // wget, url, next
    }

    #[test]
    fn line_continuation() {
        let ks = kinds("wget \\\n url\n");
        let n_newlines = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Newline))
            .count();
        assert_eq!(n_newlines, 1);
    }

    #[test]
    fn redirect_operators() {
        assert!(matches!(
            kinds("cmd > f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: false,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd >> f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: true,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd >& f\n")[1],
            TokenKind::RedirOut {
                var: false,
                append: false,
                both: true
            }
        ));
        assert!(matches!(
            kinds("cmd -> v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: false,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd ->& v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: false,
                both: true
            }
        ));
        assert!(matches!(
            kinds("cmd ->> v\n")[1],
            TokenKind::RedirOut {
                var: true,
                append: true,
                both: false
            }
        ));
        assert!(matches!(
            kinds("cmd < f\n")[1],
            TokenKind::RedirIn { var: false }
        ));
        assert!(matches!(
            kinds("cmd -< v\n")[1],
            TokenKind::RedirIn { var: true }
        ));
    }

    #[test]
    fn dash_not_followed_by_angle_is_a_word() {
        let ks = kinds("rm -f file\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("-f".into())]));
    }

    #[test]
    fn angle_inside_word_is_literal() {
        // `a>b` as a single word: the operator form requires a word break.
        let ks = kinds("echo a>b\n");
        // 'a' is under construction when '>' arrives, so it stays literal.
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("a>b".into())]));
    }

    #[test]
    fn errors() {
        assert!(lex("echo ${unterminated\n").is_err());
        assert!(lex("echo \"open\n").is_err());
        assert!(lex("echo 'open").is_err());
        assert!(lex("echo $ \n").is_err());
        assert!(lex("echo ${}\n").is_err());
        assert!(lex("trailing \\").is_err());
    }

    #[test]
    fn multiple_blank_lines_collapse() {
        let ks = kinds("a\n\n\n\nb\n");
        let n_newlines = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Newline))
            .count();
        assert_eq!(n_newlines, 2);
    }

    #[test]
    fn escaped_dollar() {
        let ks = kinds("echo \\$HOME\n");
        assert!(matches!(&ks[1], TokenKind::Word(w) if w.segs() == [Seg::Lit("$HOME".into())]));
    }

    #[test]
    fn words_debug_smoke() {
        // Exercise the helper to keep it honest.
        assert_eq!(words("a b\n").len(), 2);
    }

    #[test]
    fn word_spans_are_byte_ranges() {
        let src = "wget http://server/f\n";
        let toks = lex(src).unwrap();
        let spans: Vec<Span> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Word(_)))
            .map(|t| t.span)
            .collect();
        assert_eq!(spans, vec![Span::new(0, 4), Span::new(5, 20)]);
        // The Word carries the same span as its token.
        if let TokenKind::Word(w) = &toks[0].kind {
            assert_eq!(w.span(), Span::new(0, 4));
        }
        assert_eq!(&src[0..4], "wget");
        assert_eq!(&src[5..20], "http://server/f");
    }

    #[test]
    fn quoted_and_var_word_spans_cover_source() {
        let src = "echo \"a b\" ${x}y\n";
        let toks = lex(src).unwrap();
        let spans: Vec<Span> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Word(_)))
            .map(|t| t.span)
            .collect();
        assert_eq!(spans[1], Span::new(5, 10)); // "a b" including quotes
        assert_eq!(spans[2], Span::new(11, 16)); // ${x}y
        assert_eq!(&src[11..16], "${x}y");
    }

    #[test]
    fn redir_token_spans() {
        let src = "cmd ->> v\n";
        let toks = lex(src).unwrap();
        assert_eq!(toks[1].span, Span::new(4, 7));
        assert_eq!(&src[4..7], "->>");
    }

    #[test]
    fn multiline_spans_advance() {
        let src = "a\nbb\n";
        let toks = lex(src).unwrap();
        let words: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Word(_)))
            .collect();
        assert_eq!(words[0].span, Span::new(0, 1));
        assert_eq!(words[1].span, Span::new(2, 4));
        assert_eq!(words[1].line, 2);
    }

    #[test]
    fn error_spans_point_at_offender() {
        let e = lex("echo ${}\n").unwrap_err();
        assert_eq!(e.span.map(|s| s.start), Some(5));
        let e = lex("hello $ \n").unwrap_err();
        assert_eq!(e.span.map(|s| s.start), Some(6));
    }
}
