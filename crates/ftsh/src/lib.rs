//! # ftsh — the fault tolerant shell
//!
//! A Rust implementation of the scripting language from *"The Ethernet
//! Approach to Grid Computing"* (Thain & Livny, HPDC 2003). ftsh is a
//! shell whose atoms are external commands and whose control flow is
//! organized around **untyped failure**:
//!
//! ```text
//! try for 1 hour
//!   forany host in xxx yyy zzz
//!     try for 5 minutes
//!       fetch-file ${host} filename
//!     end
//!   end
//! end
//! ```
//!
//! * a *group* of commands fails fast;
//! * `try` retries a group with exponential backoff (1 s base, doubled,
//!   1 h cap, random factor in [1, 2)) under a time and/or attempt
//!   budget, forcibly terminating work that outlives its deadline;
//! * `catch` handles the untyped failure; `failure` throws one;
//! * `forany` succeeds on the first alternative that succeeds;
//! * `forall` runs branches in parallel and aborts the rest when any
//!   branch fails;
//! * `->`/`->&`/`-<` redirect output and input to shell *variables*,
//!   giving a simple I/O transaction so repeated attempts do not
//!   interleave partial output.
//!
//! ## Architecture
//!
//! [`parse`] turns source into a [`Script`]. [`Vm`] interprets it as a
//! **resumable stack machine**: [`Vm::tick`] returns commands to start
//! or cancel plus the next deadline, and the caller supplies results
//! via [`Vm::complete`]. Drivers:
//!
//! * [`VmDriver`] (here) — synchronous closure executor, with
//!   [`SimClock`] (virtual time) or [`WallClock`];
//! * `procman::RealDriver` — real POSIX processes in their own
//!   sessions, SIGTERM→SIGKILL on deadline;
//! * `gridworld` — hundreds of VMs inside a discrete-event simulation.

#![warn(missing_docs)]

pub mod ast;
pub(crate) mod bytecode;
pub mod cond;
pub(crate) mod cvm;
pub mod errors;
pub mod grammar;
pub mod intern;
pub mod interp;
pub mod lexer;
pub mod log;
pub mod parser;
pub mod pretty;
pub mod vm;
pub mod words;

pub use ast::{
    Block, Command, Cond, CondOp, Redir, RedirTarget, Script, Seg, Span, Stmt, TrySpec, Word,
};
pub use cond::{eval_cond, eval_cond_values};
pub use errors::{line_col, ParseError};
pub use intern::Istr;
pub use interp::{Clock, DriveError, RunOutcome, SimClock, VmDriver, WallClock};
pub use log::{EventLog, LogEvent, LogKind, LogSummary, ProgramStats};
pub use parser::parse;
pub use pretty::pretty;
pub use vm::{
    CmdInput, CmdResult, CmdToken, CommandSpec, Effect, OutSink, TaskId, Tick, Vm, VmKind, VmStatus,
};
pub use words::Env;

/// The shared structured-trace vocabulary ([`simgrid::trace`],
/// re-exported so `procman` and scripts driving [`Vm`] directly can
/// install sinks without a simulator dependency).
pub use simgrid::trace;
