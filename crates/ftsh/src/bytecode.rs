//! Compilation of the spanned AST to flat bytecode.
//!
//! The tree-walking VM executes the shared `Arc<[Stmt]>` AST by
//! reference: every tick it re-matches statement nodes, pushes
//! `Block`-holding frames (two `Arc` refcount bumps each), and resolves
//! every variable through a `HashMap<Istr, Istr>`. At population scale
//! that dispatch is the simulation floor. This module compiles a script
//! once into a [`Prog`]: a flat `Vec<Op>` with explicit jump targets,
//! word templates whose variable references are preresolved to *slots*
//! (indices into a per-task `Vec<Option<Istr>>`), and side tables for
//! commands, conditions, `try` budgets and loop value lists. The
//! interpreter (`crate::cvm::Cvm`) then runs a jump-threaded loop over
//! plain array indexing.
//!
//! Lowering rules (the equivalence argument is spelled out in
//! DESIGN.md §12):
//!
//! * A *group* is fail-fast: every fallible statement is followed by a
//!   [`Op::JmpIfFail`] to the group's result op, so the eventual result
//!   op always observes the group outcome in the `res` register.
//! * `try` lowers to [`Op::TryEnter`] (push a frame holding the live
//!   `TrySession`), [`Op::TryAttempt`] (admission: budget check, log,
//!   trace), the body group, and [`Op::TryResult`] (success pops;
//!   failure consults the session for backoff-sleep-and-loop, catch
//!   entry, or exhaustion) — the exact decision order of the tree VM.
//! * `forany`/`forall` lower to enter ops that expand the value list at
//!   runtime and a result op (`forany`) or task spawning (`forall`,
//!   whose branch region ends in [`Op::TaskEnd`] like the root).
//! * Function bodies compile out of line, ending in [`Op::Ret`];
//!   [`Op::FuncDef`] binds name → entry at execution time, preserving
//!   the tree VM's definition-before-use and later-override semantics.
//!
//! Compiled programs are cached process-wide, keyed on the identity of
//! the script's statement allocation: a population of VMs built from
//! one parsed script compiles once.

use crate::ast::{Block, Cond, CondOp, Redir, RedirTarget, Script, Seg, Stmt, TrySpec, Word};
use crate::intern::Istr;
use retry::Dur;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Index into [`Prog::slots`]' name table / a task's slot vector.
pub(crate) type SlotIx = u32;
/// Index into [`Prog::words`].
pub(crate) type WordIx = u32;
/// Instruction pointer: index into [`Prog::ops`].
pub(crate) type Ip = u32;

/// Sentinel for "no catch clause" in [`Op::TryEnter`].
pub(crate) const NO_CATCH: Ip = Ip::MAX;

/// One segment of a mixed word template.
#[derive(Debug)]
pub(crate) enum SegTpl {
    Lit(Istr),
    Slot(SlotIx),
}

/// A compiled word: what [`crate::words::Env::expand`] decides per
/// expansion, decided once at compile time instead.
#[derive(Debug)]
pub(crate) enum WordTpl {
    /// The empty word.
    Empty,
    /// Fully literal: expansion is a refcount bump.
    Lit(Istr),
    /// A bare `${var}`: expansion is a slot read.
    Slot(SlotIx),
    /// Mixed literal/variable segments: expansion builds a string.
    Mixed(Box<[SegTpl]>),
}

/// A compiled `if` condition.
#[derive(Debug)]
pub(crate) struct CondTpl {
    pub lhs: WordIx,
    pub op: CondOp,
    pub rhs: WordIx,
}

/// A compiled `try` header (the budget inputs; the live session is
/// built per execution).
#[derive(Debug)]
pub(crate) struct TryTpl {
    pub time: Option<Dur>,
    pub attempts: Option<u32>,
    pub every: Option<Dur>,
}

/// A compiled redirection. Applied left to right at dispatch, exactly
/// like the tree VM (a later `>` overrides an earlier one; its `both`
/// flag wins).
#[derive(Debug)]
pub(crate) enum RedirTpl {
    In {
        var: bool,
        source: WordIx,
    },
    Out {
        var: bool,
        append: bool,
        both: bool,
        target: WordIx,
    },
}

/// How a command's argv[0] relates to defined functions.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FuncRef {
    /// Statically not a function name: skip the lookup entirely.
    None,
    /// A literal name that *is* a known function name: check whether
    /// its definition has executed yet.
    Static(u32),
    /// argv[0] contains substitutions and the program defines
    /// functions: look the expanded name up at dispatch.
    Dynamic,
}

/// A compiled command.
#[derive(Debug)]
pub(crate) struct CmdTpl {
    pub argv: Box<[WordIx]>,
    pub redirs: Box<[RedirTpl]>,
    pub func: FuncRef,
}

/// The static variable-name table: every name the script mentions
/// statically gets a slot; dynamic sets (computed capture targets,
/// high positional parameters) route through `by_name` and fall back
/// to a per-task spill map.
#[derive(Debug)]
pub(crate) struct SlotMap {
    pub names: Box<[Istr]>,
    /// Per-slot: is this a positional name (`*` or all digits)?
    pub positional: Box<[bool]>,
    pub by_name: HashMap<Istr, SlotIx>,
}

impl SlotMap {
    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

/// One bytecode instruction. The interpreter keeps a boolean result
/// register (`res`) per task; ops read and write it instead of
/// threading `Ctl::Return(bool)` through frame matches.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// `res = true`.
    Success,
    /// `res = false` (the `failure` atom; always followed by a jump to
    /// the group's result op).
    Failure,
    /// Unconditional jump.
    Jmp(Ip),
    /// Jump when `res` is false (fail-fast edge of a group).
    JmpIfFail(Ip),
    /// `name=value`: expand, bind the slot, log `VarSet`; `res = true`.
    Assign { slot: SlotIx, value: WordIx },
    /// Evaluate a condition. `Ok(true)`: fall through. `Ok(false)`:
    /// jump to `on_false` (the else branch, or the join). `Err`: the
    /// statement itself fails — `res = false`, jump to `on_err` (the
    /// enclosing group's result op).
    EvalCond { cond: u32, on_false: Ip, on_err: Ip },
    /// Bind a function name to its body's entry point; `res = true`.
    FuncDef { func: u32, entry: Ip },
    /// Dispatch a command (or a function call when argv[0] names a
    /// defined function). Blocks the task on an external command.
    Cmd(u32),
    /// Push a `try` frame with a fresh session. Falls through to the
    /// admission op at `ip + 1`.
    TryEnter { tri: u32, catch_ip: Ip, end_ip: Ip },
    /// Admission: `begin_attempt` or the spent path.
    TryAttempt,
    /// The body (or catch) group finished with `res`.
    TryResult,
    /// Expand the value list, push a `forany` frame, bind the first
    /// value. Body begins at `ip + 1`.
    ForAnyEnter { list: u32, var: SlotIx, end_ip: Ip },
    /// The `forany` body finished with `res`: succeed, advance, or
    /// exhaust.
    ForAnyResult,
    /// Expand the value list and spawn branch tasks (branch region
    /// begins at `ip + 1`); block waiting for children.
    ForAllEnter { list: u32, var: SlotIx, end_ip: Ip },
    /// End of a task's code (the root script or a `forall` branch):
    /// the task finishes with `res`.
    TaskEnd,
    /// End of a function body: pop the call frame, restore the
    /// caller's positionals, return to the call site.
    Ret,
}

/// A compiled script.
#[derive(Debug)]
pub(crate) struct Prog {
    pub ops: Box<[Op]>,
    pub words: Box<[WordTpl]>,
    pub lists: Box<[Box<[WordIx]>]>,
    pub conds: Box<[CondTpl]>,
    pub tries: Box<[TryTpl]>,
    pub cmds: Box<[CmdTpl]>,
    pub func_names: Box<[Istr]>,
    pub func_ids: HashMap<Istr, u32>,
    pub slots: SlotMap,
}

/// Where a pending fail-edge must be patched once the group's result
/// op is placed.
enum Pending {
    /// A `Jmp`/`JmpIfFail` target.
    Target(usize),
    /// An `EvalCond::on_false` field.
    CondFalse(usize),
    /// An `EvalCond::on_err` field.
    CondErr(usize),
}

#[derive(Default)]
struct Compiler {
    ops: Vec<Op>,
    words: Vec<WordTpl>,
    lists: Vec<Box<[WordIx]>>,
    conds: Vec<CondTpl>,
    tries: Vec<TryTpl>,
    cmds: Vec<CmdTpl>,
    func_names: Vec<Istr>,
    func_ids: HashMap<Istr, u32>,
    slot_names: Vec<Istr>,
    slot_by_name: HashMap<Istr, SlotIx>,
    /// Function bodies awaiting out-of-line compilation:
    /// (`FuncDef` op index to patch, body).
    deferred: Vec<(usize, Block)>,
}

impl Compiler {
    fn here(&self) -> Ip {
        self.ops.len() as Ip
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn patch(&mut self, p: Pending, target: Ip) {
        match p {
            Pending::Target(i) => match &mut self.ops[i] {
                Op::Jmp(t) | Op::JmpIfFail(t) => *t = target,
                other => unreachable!("patching non-jump {other:?}"),
            },
            Pending::CondFalse(i) => {
                let Op::EvalCond { on_false, .. } = &mut self.ops[i] else {
                    unreachable!("patching non-cond")
                };
                *on_false = target;
            }
            Pending::CondErr(i) => {
                let Op::EvalCond { on_err, .. } = &mut self.ops[i] else {
                    unreachable!("patching non-cond")
                };
                *on_err = target;
            }
        }
    }

    fn patch_fails(&mut self, fails: Vec<Pending>, target: Ip) {
        for p in fails {
            self.patch(p, target);
        }
    }

    fn slot(&mut self, name: &str) -> SlotIx {
        if let Some(&s) = self.slot_by_name.get(name) {
            return s;
        }
        let s = self.slot_names.len() as SlotIx;
        let n = Istr::from(name);
        self.slot_names.push(n.clone());
        self.slot_by_name.insert(n, s);
        s
    }

    fn word(&mut self, w: &Word) -> WordIx {
        let tpl = match w.segs() {
            [] => WordTpl::Empty,
            [Seg::Lit(s)] => WordTpl::Lit(s.clone()),
            [Seg::Var(v)] => WordTpl::Slot(self.slot(v)),
            segs => WordTpl::Mixed(
                segs.iter()
                    .map(|seg| match seg {
                        Seg::Lit(l) => SegTpl::Lit(l.clone()),
                        Seg::Var(v) => SegTpl::Slot(self.slot(v)),
                    })
                    .collect(),
            ),
        };
        self.words.push(tpl);
        (self.words.len() - 1) as WordIx
    }

    fn list(&mut self, ws: &[Word]) -> u32 {
        let ixs: Box<[WordIx]> = ws.iter().map(|w| self.word(w)).collect();
        self.lists.push(ixs);
        (self.lists.len() - 1) as u32
    }

    fn cond(&mut self, c: &Cond) -> u32 {
        let lhs = self.word(&c.lhs);
        let rhs = self.word(&c.rhs);
        self.conds.push(CondTpl { lhs, op: c.op, rhs });
        (self.conds.len() - 1) as u32
    }

    fn tri(&mut self, spec: &TrySpec) -> u32 {
        self.tries.push(TryTpl {
            time: spec.time,
            attempts: spec.attempts,
            every: spec.every,
        });
        (self.tries.len() - 1) as u32
    }

    /// Pre-pass: collect every function name so call sites compiled
    /// before (or without) the definition still resolve statically.
    fn collect_funcs(&mut self, b: &Block) {
        for s in b {
            match s {
                Stmt::Function { name, body } => {
                    let n = Istr::from(name.as_str());
                    if !self.func_ids.contains_key(&n) {
                        let id = self.func_names.len() as u32;
                        self.func_names.push(n.clone());
                        self.func_ids.insert(n, id);
                    }
                    self.collect_funcs(body);
                }
                Stmt::Try { body, catch, .. } => {
                    self.collect_funcs(body);
                    if let Some(c) = catch {
                        self.collect_funcs(c);
                    }
                }
                Stmt::ForAny { body, .. } | Stmt::ForAll { body, .. } => {
                    self.collect_funcs(body);
                }
                Stmt::If { then, els, .. } => {
                    self.collect_funcs(then);
                    if let Some(e) = els {
                        self.collect_funcs(e);
                    }
                }
                _ => {}
            }
        }
    }

    /// Compile a fail-fast group. Fail-edges accumulate in `fails` and
    /// are patched by the caller to the group's result op.
    fn group(&mut self, b: &Block, fails: &mut Vec<Pending>) {
        for s in b {
            self.stmt(s, fails);
        }
    }

    fn stmt(&mut self, s: &Stmt, fails: &mut Vec<Pending>) {
        match s {
            Stmt::Success => {
                self.emit(Op::Success);
            }
            Stmt::Failure => {
                self.emit(Op::Failure);
                let j = self.emit(Op::Jmp(0));
                fails.push(Pending::Target(j));
            }
            Stmt::Assign { var, value } => {
                let slot = self.slot(var);
                let value = self.word(value);
                self.emit(Op::Assign { slot, value });
            }
            Stmt::If { cond, then, els } => {
                let cond = self.cond(cond);
                let ec = self.emit(Op::EvalCond {
                    cond,
                    on_false: 0,
                    on_err: 0,
                });
                fails.push(Pending::CondErr(ec));
                self.group(then, fails);
                match els {
                    Some(e) => {
                        let over = self.emit(Op::Jmp(0));
                        let else_ip = self.here();
                        self.patch(Pending::CondFalse(ec), else_ip);
                        self.group(e, fails);
                        let join = self.here();
                        self.patch(Pending::Target(over), join);
                    }
                    None => {
                        let join = self.here();
                        self.patch(Pending::CondFalse(ec), join);
                    }
                }
            }
            Stmt::Try { spec, body, catch } => {
                let tri = self.tri(spec);
                let enter = self.emit(Op::TryEnter {
                    tri,
                    catch_ip: NO_CATCH,
                    end_ip: 0,
                });
                self.emit(Op::TryAttempt);
                let mut body_fails = Vec::new();
                self.group(body, &mut body_fails);
                let body_result = self.here();
                self.emit(Op::TryResult);
                self.patch_fails(body_fails, body_result);
                let catch_ip = match catch {
                    Some(c) => {
                        let cip = self.here();
                        let mut catch_fails = Vec::new();
                        self.group(c, &mut catch_fails);
                        let catch_result = self.here();
                        self.emit(Op::TryResult);
                        self.patch_fails(catch_fails, catch_result);
                        cip
                    }
                    None => NO_CATCH,
                };
                let end = self.here();
                let Op::TryEnter {
                    catch_ip: c,
                    end_ip,
                    ..
                } = &mut self.ops[enter]
                else {
                    unreachable!()
                };
                *c = catch_ip;
                *end_ip = end;
                let j = self.emit(Op::JmpIfFail(0));
                fails.push(Pending::Target(j));
            }
            Stmt::ForAny { var, values, body } => {
                let list = self.list(values);
                let var = self.slot(var);
                let enter = self.emit(Op::ForAnyEnter {
                    list,
                    var,
                    end_ip: 0,
                });
                let mut body_fails = Vec::new();
                self.group(body, &mut body_fails);
                let result = self.here();
                self.emit(Op::ForAnyResult);
                self.patch_fails(body_fails, result);
                let end = self.here();
                let Op::ForAnyEnter { end_ip, .. } = &mut self.ops[enter] else {
                    unreachable!()
                };
                *end_ip = end;
                let j = self.emit(Op::JmpIfFail(0));
                fails.push(Pending::Target(j));
            }
            Stmt::ForAll { var, values, body } => {
                let list = self.list(values);
                let var = self.slot(var);
                let enter = self.emit(Op::ForAllEnter {
                    list,
                    var,
                    end_ip: 0,
                });
                let mut branch_fails = Vec::new();
                self.group(body, &mut branch_fails);
                let te = self.here();
                self.emit(Op::TaskEnd);
                self.patch_fails(branch_fails, te);
                let end = self.here();
                let Op::ForAllEnter { end_ip, .. } = &mut self.ops[enter] else {
                    unreachable!()
                };
                *end_ip = end;
                let j = self.emit(Op::JmpIfFail(0));
                fails.push(Pending::Target(j));
            }
            Stmt::Function { name, body } => {
                let func = self.func_ids[name.as_str()];
                let op = self.emit(Op::FuncDef { func, entry: 0 });
                self.deferred.push((op, body.clone()));
            }
            Stmt::Command(cmd) => {
                let argv: Box<[WordIx]> = cmd.words.iter().map(|w| self.word(w)).collect();
                let func = match cmd.words.first() {
                    Some(w0) => match w0.as_lit() {
                        Some(lit) => match self.func_ids.get(lit) {
                            Some(&id) => FuncRef::Static(id),
                            None => FuncRef::None,
                        },
                        None if !self.func_ids.is_empty() => FuncRef::Dynamic,
                        None => FuncRef::None,
                    },
                    None => FuncRef::None,
                };
                let redirs: Box<[RedirTpl]> = cmd
                    .redirs
                    .iter()
                    .map(|r| match r {
                        Redir::In { from, source } => RedirTpl::In {
                            var: *from == RedirTarget::Variable,
                            source: self.word(source),
                        },
                        Redir::Out {
                            to,
                            append,
                            both,
                            target,
                        } => RedirTpl::Out {
                            var: *to == RedirTarget::Variable,
                            append: *append,
                            both: *both,
                            target: self.word(target),
                        },
                    })
                    .collect();
                self.cmds.push(CmdTpl { argv, redirs, func });
                let cix = (self.cmds.len() - 1) as u32;
                self.emit(Op::Cmd(cix));
                let j = self.emit(Op::JmpIfFail(0));
                fails.push(Pending::Target(j));
            }
        }
    }

    /// Compile queued function bodies (which may queue more: nested
    /// definitions) and patch their `FuncDef` entry points.
    fn flush_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            let (op_ix, body) = {
                let (op_ix, body) = &self.deferred[i];
                (*op_ix, body.clone())
            };
            let entry = self.here();
            let mut fails = Vec::new();
            self.group(&body, &mut fails);
            let ret = self.here();
            self.emit(Op::Ret);
            self.patch_fails(fails, ret);
            let Op::FuncDef { entry: e, .. } = &mut self.ops[op_ix] else {
                unreachable!()
            };
            *e = entry;
            i += 1;
        }
    }

    fn finish(self) -> Prog {
        let positional: Box<[bool]> = self
            .slot_names
            .iter()
            .map(|n| is_positional_name(n))
            .collect();
        Prog {
            ops: self.ops.into(),
            words: self.words.into(),
            lists: self.lists.into(),
            conds: self.conds.into(),
            tries: self.tries.into(),
            cmds: self.cmds.into(),
            func_names: self.func_names.into(),
            func_ids: self.func_ids,
            slots: SlotMap {
                names: self.slot_names.into(),
                positional,
                by_name: self.slot_by_name,
            },
        }
    }
}

/// Is `name` a positional parameter (`*`, or all ASCII digits — the
/// same predicate [`crate::words::Env::clear_positionals`] uses, empty
/// string included)?
pub(crate) fn is_positional_name(name: &str) -> bool {
    name == "*" || name.chars().all(|c| c.is_ascii_digit())
}

/// Compile a statement block into a program.
pub(crate) fn compile(block: &Block) -> Prog {
    let mut c = Compiler::default();
    c.collect_funcs(block);
    let mut fails = Vec::new();
    c.group(block, &mut fails);
    let te = c.here();
    c.emit(Op::TaskEnd);
    c.patch_fails(fails, te);
    c.flush_deferred();
    c.finish()
}

type Cache = Mutex<Vec<(Weak<[Stmt]>, Arc<Prog>)>>;

static CACHE: OnceLock<Cache> = OnceLock::new();

/// Compile a script, reusing the cached program when this script's
/// statement allocation was compiled before. The cache holds weak AST
/// references and is pruned on every miss, so dropped scripts release
/// their programs.
pub(crate) fn compile_cached(script: &Script) -> Arc<Prog> {
    let key = script.stmts.stmts_arc();
    let mut cache = CACHE.get_or_init(Cache::default).lock().unwrap();
    for (weak, prog) in cache.iter() {
        if let Some(alive) = weak.upgrade() {
            if Arc::ptr_eq(&alive, key) {
                return Arc::clone(prog);
            }
        }
    }
    let prog = Arc::new(compile(&script.stmts));
    cache.retain(|(weak, _)| weak.strong_count() > 0);
    cache.push((Arc::downgrade(key), Arc::clone(&prog)));
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compile_caches_by_ast_identity() {
        let script = parse("true\nfalse\n").unwrap();
        let a = compile_cached(&script);
        let b = compile_cached(&script.clone());
        assert!(Arc::ptr_eq(&a, &b), "same allocation, same program");
        let other = parse("true\nfalse\n").unwrap();
        let c = compile_cached(&other);
        assert!(!Arc::ptr_eq(&a, &c), "fresh parse compiles fresh");
    }

    #[test]
    fn slots_cover_static_names() {
        let script = parse("x=1\nforany h in a ${x}\n  echo ${h}\nend\n").unwrap();
        let prog = compile(&script.stmts);
        for name in ["x", "h"] {
            assert!(
                prog.slots.by_name.contains_key(name),
                "{name} should have a slot"
            );
        }
    }

    #[test]
    fn try_layout_threads_jumps() {
        let script = parse("try 2 times\n  wget\nend\n").unwrap();
        let prog = compile(&script.stmts);
        // TryEnter, TryAttempt, Cmd, JmpIfFail, TryResult, JmpIfFail, TaskEnd
        let Op::TryEnter {
            catch_ip, end_ip, ..
        } = prog.ops[0]
        else {
            panic!("expected TryEnter first, got {:?}", prog.ops[0]);
        };
        assert_eq!(catch_ip, NO_CATCH);
        assert!(matches!(prog.ops[1], Op::TryAttempt));
        assert!(matches!(prog.ops[end_ip as usize], Op::JmpIfFail(_)));
        assert!(matches!(prog.ops.last(), Some(Op::TaskEnd)));
    }

    #[test]
    fn positional_predicate_matches_env() {
        assert!(is_positional_name("*"));
        assert!(is_positional_name("0"));
        assert!(is_positional_name("17"));
        assert!(is_positional_name("")); // vacuous, as in Env
        assert!(!is_positional_name("x"));
        assert!(!is_positional_name("1a"));
    }
}
