//! The ftsh virtual machine: a resumable stack machine.
//!
//! The original ftsh is a blocking C interpreter. We instead compile
//! nothing and *interpret incrementally*: [`Vm::tick`] advances every
//! runnable strand of the script as far as it can, then reports
//! [`Effect`]s — commands to start or cancel — and the next virtual
//! instant at which it must be ticked again (backoff wake-ups and `try`
//! deadlines). The driver supplies "now", completes commands with
//! [`Vm::complete`], and ticks again.
//!
//! This inversion is what lets one interpreter serve two worlds:
//!
//! * `procman` drives it with real wall-clock time and real POSIX
//!   process sessions;
//! * `gridworld` drives hundreds of VMs inside a discrete-event
//!   simulation, reproducing the paper's figures deterministically.
//!
//! `forall` branches become independent *tasks* (the unit the paper
//! kills via POSIX sessions); a `try` whose deadline expires unwinds
//! every frame and task beneath it, cancelling in-flight commands, and
//! then fails like any other untyped failure.

use crate::ast::{Block, Command, Redir, RedirTarget, Script, Stmt, TrySpec};
use crate::cond::eval_cond;
use crate::intern::Istr;
use crate::log::{EventLog, LogKind};
use crate::words::{trim_capture, Env};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use retry::{BackoffPolicy, Dur, NextAttempt, Time, TryBudget, TrySession};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use std::collections::HashMap;

/// Identifies an in-flight command between [`Effect::Start`] and
/// [`Vm::complete`].
pub type CmdToken = u64;

/// Identifies a VM task (the root script is task 0; every `forall`
/// branch gets a fresh task).
pub type TaskId = usize;

/// Where a command's standard input comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum CmdInput {
    /// Literal data (the `-<` variable form, already expanded).
    Data(Istr),
    /// A file path (the `<` form); the executor opens it.
    File(Istr),
}

/// Where a command's standard output goes.
#[derive(Clone, Debug, PartialEq)]
pub enum OutSink {
    /// Capture into a shell variable: the executor must return stdout
    /// in [`CmdResult::stdout`]; the VM assigns the variable.
    Var {
        /// Variable name.
        name: Istr,
        /// Append to the existing value (`->>`).
        append: bool,
    },
    /// Write to a file; the executor owns the filesystem.
    File {
        /// Target path (already expanded).
        path: Istr,
        /// Append (`>>`).
        append: bool,
    },
}

/// A fully expanded command ready for an executor.
#[derive(Clone, Debug, PartialEq)]
pub struct CommandSpec {
    /// Expanded argv; `argv[0]` is the program.
    pub argv: Vec<Istr>,
    /// Standard input source, if redirected.
    pub input: Option<CmdInput>,
    /// Standard output sink, if redirected.
    pub output: Option<OutSink>,
    /// Capture/redirect standard error along with stdout (`>&`/`->&`).
    pub both: bool,
}

impl CommandSpec {
    /// The program name (empty string if argv is empty).
    pub fn program(&self) -> &str {
        self.argv.first().map(Istr::as_str).unwrap_or("")
    }
}

/// What an executor reports back for a finished command.
#[derive(Clone, Debug, PartialEq)]
pub struct CmdResult {
    /// Did the command exit normally with status zero?
    pub success: bool,
    /// Captured standard output (only consulted for `Var` sinks).
    /// Interned so a simulated world can hand the same output to
    /// thousands of clients without copying it per completion.
    pub stdout: Istr,
}

impl CmdResult {
    /// A successful result carrying output.
    pub fn ok(stdout: impl Into<Istr>) -> CmdResult {
        CmdResult {
            success: true,
            stdout: stdout.into(),
        }
    }

    /// A failed result.
    pub fn fail() -> CmdResult {
        CmdResult {
            success: false,
            stdout: Istr::empty(),
        }
    }
}

/// Side effects a tick asks the driver to perform.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Start the command; report back with [`Vm::complete`].
    Start {
        /// Correlation token.
        token: CmdToken,
        /// The task that issued it (useful for per-branch accounting).
        task: TaskId,
        /// What to run.
        spec: CommandSpec,
    },
    /// Stop an in-flight command; no completion should follow (one that
    /// races in anyway is ignored).
    Cancel {
        /// Token from the corresponding start.
        token: CmdToken,
    },
}

/// Overall VM state after a tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VmStatus {
    /// Work remains.
    Running {
        /// The next instant at which [`Vm::tick`] must be called even
        /// if no command completes (earliest backoff wake-up or `try`
        /// deadline); `None` when the VM is only waiting on commands.
        next_wake: Option<Time>,
    },
    /// The script finished.
    Done {
        /// Overall script outcome.
        success: bool,
    },
}

/// The result of one [`Vm::tick`].
#[derive(Clone, Debug, PartialEq)]
pub struct Tick {
    /// Commands to start or cancel, in order.
    pub effects: Vec<Effect>,
    /// Whether to keep driving.
    pub status: VmStatus,
}

#[derive(Clone, Copy, Debug)]
enum Ctl {
    Exec,
    Return(bool),
}

#[derive(Debug)]
enum Frame {
    Seq {
        stmts: Block,
        idx: usize,
    },
    Try {
        session: TrySession,
        body: Block,
        catch: Option<Block>,
        in_catch: bool,
    },
    ForAny {
        var: String,
        values: Vec<Istr>,
        idx: usize,
        body: Block,
    },
    ForAll {
        children: Vec<TaskId>,
        /// Branch bindings not yet spawned (throttled parallelism).
        pending: Vec<Istr>,
        var: String,
        body: Block,
    },
    /// A function invocation: restores the caller's positional
    /// parameters when the body returns.
    Call {
        saved_positionals: Vec<(Istr, Istr)>,
    },
}

#[derive(Debug)]
enum TaskState {
    Ready(Ctl),
    RunningCmd {
        token: CmdToken,
        program: Istr,
        out_var: Option<(Istr, bool)>,
    },
    Sleeping {
        until: Time,
    },
    WaitingChildren,
}

#[derive(Debug)]
struct Task {
    frames: Vec<Frame>,
    env: Env,
    state: TaskState,
    parent: Option<TaskId>,
}

/// The tree-walking interpreter backend: executes the shared AST by
/// reference. This is the reference semantics the bytecode VM
/// ([`crate::cvm::Cvm`]) is differentially tested against; drivers use
/// the [`Vm`] facade, which selects a backend, instead of this type.
pub(crate) struct TreeVm {
    tasks: Vec<Option<Task>>,
    token_ctr: CmdToken,
    token_task: HashMap<CmdToken, TaskId>,
    rng: StdRng,
    log: EventLog,
    outcome: Option<bool>,
    default_backoff: BackoffPolicy,
    effects: Vec<Effect>,
    now: Time,
    final_env: Env,
    max_parallel: Option<usize>,
    functions: HashMap<String, Block>,
    tracer: Option<SharedSink>,
    trace_client: i64,
    /// Emptied argv vectors handed back via [`Vm::recycle_spec`];
    /// command dispatch draws from here before allocating.
    spare_argv: Vec<Vec<Istr>>,
}

impl TreeVm {
    /// Build a VM with an initial environment and seed.
    pub fn with_env_seed(script: &Script, env: Env, seed: u64) -> TreeVm {
        let root = Task {
            frames: vec![Frame::Seq {
                // An O(1) handle clone: the whole population of VMs
                // built from one parsed script shares a single AST.
                stmts: script.stmts.clone(),
                idx: 0,
            }],
            env,
            state: TaskState::Ready(Ctl::Exec),
            parent: None,
        };
        TreeVm {
            tasks: vec![Some(root)],
            token_ctr: 0,
            token_task: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            log: EventLog::new(),
            outcome: None,
            default_backoff: BackoffPolicy::ethernet(),
            effects: Vec::new(),
            now: Time::ZERO,
            final_env: Env::new(),
            max_parallel: None,
            functions: HashMap::new(),
            tracer: None,
            trace_client: NO_ID,
            spare_argv: Vec::new(),
        }
    }

    /// Hand a finished command's spec back so its argv buffer can be
    /// reused by the next dispatch. Purely an optimisation: a driver
    /// that drops specs instead loses nothing but the recycling.
    pub fn recycle_spec(&mut self, spec: CommandSpec) {
        let mut argv = spec.argv;
        argv.clear();
        // A handful covers any realistic burst of parallel branches;
        // beyond that, let excess buffers drop.
        if self.spare_argv.len() < 8 {
            self.spare_argv.push(argv);
        }
    }

    /// Move the spare buffers of a retiring VM into this one. Drivers
    /// that replace a client's VM per work unit call this so the
    /// recycled argv pool survives the replacement.
    pub fn adopt_spares(&mut self, prev: &mut TreeVm) {
        if self.spare_argv.is_empty() {
            std::mem::swap(&mut self.spare_argv, &mut prev.spare_argv);
        }
    }

    /// Install a structured-trace sink; every span and command event
    /// this VM produces is recorded there, attributed to `client`
    /// (the scenario's client index, or [`NO_ID`] outside a
    /// population). With no sink installed — the default — every
    /// emission site is a single `Option` test: the tick path stays
    /// allocation-free.
    pub fn set_tracer(&mut self, sink: SharedSink, client: i64) {
        self.tracer = Some(sink);
        self.trace_client = client;
    }

    /// True when a trace sink is installed.
    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    /// Emit a structured trace record (no-op without a sink).
    #[inline]
    fn trace(&self, tid: TaskId, ev: TraceEv) {
        simgrid::trace::emit(&self.tracer, self.now, self.trace_client, tid as i64, ev);
    }

    /// Override the backoff policy used by `try` blocks that do not
    /// specify `every`. This is how the Fixed discipline (no delay) and
    /// the jitter ablations are expressed.
    pub fn set_default_backoff(&mut self, p: BackoffPolicy) {
        self.default_backoff = p;
    }

    /// The backoff policy `try` blocks without `every` run under.
    pub fn default_backoff(&self) -> BackoffPolicy {
        self.default_backoff
    }

    /// Throttle `forall`: at most `n` branches run concurrently, the
    /// rest start as slots free up. §4 notes that "the creation of
    /// processes must be governed by an Ethernet-like algorithm": this
    /// is the limited-allocation obligation applied to the process
    /// table itself. `None` (the default) spawns every branch at once.
    pub fn set_max_parallel(&mut self, n: Option<usize>) {
        self.max_parallel = n.map(|n| n.max(1));
    }

    /// The execution log so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Switch the execution log between full event retention (the
    /// default) and counters-only mode — see [`EventLog::set_detailed`].
    /// Population drivers run counters-only: the [`LogSummary`] still
    /// aggregates exactly, but a million ticks retain no per-event
    /// storage.
    ///
    /// [`LogSummary`]: crate::log::LogSummary
    pub fn set_log_detail(&mut self, detailed: bool) {
        self.log.set_detailed(detailed);
    }

    /// The root environment (variables visible after completion).
    pub fn env(&self) -> &Env {
        // The root task may already be gone if the script finished; we
        // keep a copy of its env in that case.
        match &self.tasks[0] {
            Some(t) => &t.env,
            None => &self.final_env,
        }
    }

    /// The script outcome, if finished.
    pub fn outcome(&self) -> Option<bool> {
        self.outcome
    }

    /// Report an in-flight command as finished. Stale tokens (already
    /// cancelled) are ignored. Call [`Vm::tick`] afterwards.
    pub fn complete(&mut self, token: CmdToken, result: CmdResult) {
        let Some(tid) = self.token_task.remove(&token) else {
            return; // cancelled earlier; the race is benign
        };
        let task = self.tasks[tid].as_mut().expect("token mapped to dead task");
        let (program, out_var) = match &task.state {
            TaskState::RunningCmd {
                token: t,
                program,
                out_var,
            } => {
                debug_assert_eq!(*t, token, "token/task mismatch");
                (program.clone(), out_var.clone())
            }
            other => panic!("complete() on task not running a command: {other:?}"),
        };
        if let Some((name, append)) = out_var {
            let value = trim_capture(&result.stdout);
            if append {
                task.env.append(&name, value);
            } else if value.len() == result.stdout.len() {
                // No trailing newline to strip: bind the captured
                // handle itself instead of copying the bytes.
                task.env.set(name.clone(), result.stdout.clone());
            } else {
                task.env.set(name.clone(), value);
            }
            self.log.var_set(self.now, tid, &name);
        }
        if self.tracer.is_some() {
            // Field-level borrow (not the `trace` helper): `task`
            // still mutably borrows `self.tasks` here.
            simgrid::trace::emit(
                &self.tracer,
                self.now,
                self.trace_client,
                tid as i64,
                TraceEv::CmdEnd {
                    program: program.to_string(),
                    ok: result.success,
                },
            );
        }
        self.log.push(
            self.now,
            tid,
            LogKind::CmdEnd {
                program,
                success: result.success,
            },
        );
        task.state = TaskState::Ready(Ctl::Return(result.success));
    }

    /// Advance every runnable strand at virtual instant `now`.
    pub fn tick(&mut self, now: Time) -> Tick {
        let mut effects = Vec::new();
        let status = self.tick_into(now, &mut effects);
        Tick { effects, status }
    }

    /// [`Vm::tick`] into a caller-owned effects buffer: `out` is
    /// cleared and refilled, and its capacity is recycled into the
    /// VM's internal buffer — a driver ticking thousands of VMs in a
    /// loop reuses one allocation instead of taking a fresh `Vec`
    /// per tick.
    pub fn tick_into(&mut self, now: Time, out: &mut Vec<Effect>) -> VmStatus {
        debug_assert!(now >= self.now, "tick time went backwards");
        self.now = now;
        self.effects.clear();

        if self.outcome.is_none() {
            self.fire_deadlines();
            self.wake_sleepers();
            self.step_all();
        }

        let status = match self.outcome {
            Some(success) => VmStatus::Done { success },
            None => VmStatus::Running {
                next_wake: self.next_wake(),
            },
        };
        out.clear();
        std::mem::swap(&mut self.effects, out);
        status
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Kill work under any `try` whose deadline has passed.
    fn fire_deadlines(&mut self) {
        for tid in 0..self.tasks.len() {
            // The task may be dead already, or cancelled by an earlier
            // task's unwind in this same loop.
            let Some(task) = &self.tasks[tid] else {
                continue;
            };
            let expired = task.frames.iter().position(|f| match f {
                Frame::Try {
                    session, in_catch, ..
                } => !in_catch && session.expired(self.now),
                _ => false,
            });
            let Some(i) = expired else { continue };

            let mut task = self.tasks[tid].take().expect("checked live");
            // Cancel everything above the expired frame. Function-call
            // frames restore the caller's positional parameters even
            // when killed, so ${1}… never leak across an aborted call.
            while task.frames.len() > i + 1 {
                let f = task.frames.pop().expect("len checked");
                match f {
                    Frame::ForAll { children, .. } => {
                        for c in children {
                            self.cancel_subtree(c);
                        }
                    }
                    Frame::Call { saved_positionals } => {
                        task.env.clear_positionals();
                        for (k, v) in saved_positionals {
                            task.env.set(k, v);
                        }
                    }
                    _ => {}
                }
            }
            self.cancel_running_cmd(tid, &mut task);
            self.log.push(self.now, tid, LogKind::TryTimeout);
            self.trace(tid, TraceEv::TryTimeout);
            self.fail_try_frame(tid, &mut task);
            self.tasks[tid] = Some(task);
        }
    }

    /// The top frame of `task` is a `Try` whose budget is spent: enter
    /// its catch handler, or pop it and propagate failure.
    fn fail_try_frame(&mut self, tid: TaskId, task: &mut Task) {
        let Some(Frame::Try {
            catch, in_catch, ..
        }) = task.frames.last_mut()
        else {
            unreachable!("fail_try_frame: top frame is not a try");
        };
        if let (Some(c), false) = (catch.clone(), *in_catch) {
            *in_catch = true;
            self.log.push(self.now, tid, LogKind::CatchEntered);
            self.trace(tid, TraceEv::CatchEntered);
            task.frames.push(Frame::Seq { stmts: c, idx: 0 });
            task.state = TaskState::Ready(Ctl::Exec);
        } else {
            task.frames.pop();
            task.state = TaskState::Ready(Ctl::Return(false));
        }
    }

    fn cancel_running_cmd(&mut self, tid: TaskId, task: &mut Task) {
        if let TaskState::RunningCmd { token, program, .. } = &task.state {
            self.effects.push(Effect::Cancel { token: *token });
            self.token_task.remove(token);
            if self.tracer.is_some() {
                self.trace(
                    tid,
                    TraceEv::CmdKilled {
                        program: program.to_string(),
                    },
                );
            }
            self.log.push(
                self.now,
                tid,
                LogKind::CmdCancelled {
                    program: program.clone(),
                },
            );
        }
    }

    /// Remove a task and its whole subtree, cancelling in-flight
    /// commands. Used when a sibling failure or a deadline aborts a
    /// `forall`.
    fn cancel_subtree(&mut self, tid: TaskId) {
        let Some(mut task) = self.tasks[tid].take() else {
            return;
        };
        self.cancel_running_cmd(tid, &mut task);
        for f in task.frames.drain(..) {
            if let Frame::ForAll { children, .. } = f {
                for c in children {
                    self.cancel_subtree(c);
                }
            }
        }
    }

    fn wake_sleepers(&mut self) {
        for task in self.tasks.iter_mut().flatten() {
            if let TaskState::Sleeping { until } = task.state {
                if until <= self.now {
                    task.state = TaskState::Ready(Ctl::Exec);
                }
            }
        }
    }

    fn step_all(&mut self) {
        loop {
            // Re-scan from the front each round: stepping a task can
            // ready, spawn or kill others, and the lowest-id ready
            // task always runs next (the determinism contract).
            let ready = (0..self.tasks.len()).find(|&i| {
                matches!(
                    self.tasks[i].as_ref().map(|t| &t.state),
                    Some(TaskState::Ready(_))
                )
            });
            let Some(tid) = ready else { break };
            self.step_task(tid);
            if self.outcome.is_some() {
                break;
            }
        }
    }

    fn step_task(&mut self, tid: TaskId) {
        let mut task = self.tasks[tid].take().expect("stepping a dead task");
        match self.run_task(tid, &mut task) {
            None => {
                self.tasks[tid] = Some(task);
            }
            Some(result) => {
                if let Some(pid) = task.parent {
                    self.child_finished(pid, tid, result);
                } else {
                    self.final_env = std::mem::take(&mut task.env);
                    self.outcome = Some(result);
                    self.log
                        .push(self.now, tid, LogKind::ScriptDone { success: result });
                    self.trace(tid, TraceEv::UnitDone { ok: result });
                }
            }
        }
    }

    /// Run one task until it blocks or finishes. Returns `Some(result)`
    /// when the task's stack empties.
    fn run_task(&mut self, tid: TaskId, task: &mut Task) -> Option<bool> {
        let TaskState::Ready(mut ctl) = task.state else {
            return None;
        };
        // Mark as consumed; we will set a new state before blocking.
        task.state = TaskState::WaitingChildren; // placeholder, always overwritten

        loop {
            match ctl {
                Ctl::Return(res) => match self.return_into_frame(tid, task, res) {
                    Flow::Continue(c) => ctl = c,
                    Flow::Blocked => return None,
                    Flow::Finished(r) => return Some(r),
                },
                Ctl::Exec => match self.exec_top(tid, task) {
                    Flow::Continue(c) => ctl = c,
                    Flow::Blocked => return None,
                    Flow::Finished(r) => return Some(r),
                },
            }
        }
    }

    fn return_into_frame(&mut self, tid: TaskId, task: &mut Task, res: bool) -> Flow {
        let Some(top) = task.frames.last_mut() else {
            return Flow::Finished(res);
        };
        match top {
            Frame::Seq { stmts, idx } => {
                if res {
                    *idx += 1;
                    if *idx >= stmts.len() {
                        task.frames.pop();
                        Flow::Continue(Ctl::Return(true))
                    } else {
                        Flow::Continue(Ctl::Exec)
                    }
                } else {
                    // Fail-fast group.
                    task.frames.pop();
                    Flow::Continue(Ctl::Return(false))
                }
            }
            Frame::Try {
                session, in_catch, ..
            } => {
                if *in_catch {
                    // The catch group's result is the try's result.
                    task.frames.pop();
                    Flow::Continue(Ctl::Return(res))
                } else if res {
                    let attempt = session.attempts();
                    task.frames.pop();
                    self.trace(tid, TraceEv::AttemptOk { attempt });
                    Flow::Continue(Ctl::Return(true))
                } else {
                    let attempt = session.attempts();
                    match session.on_failure(self.now, &mut self.rng) {
                        NextAttempt::RetryAt(t) => {
                            let delay = t.saturating_since(self.now);
                            self.log.push(self.now, tid, LogKind::Backoff { delay });
                            self.trace(tid, TraceEv::Backoff { attempt, delay });
                            task.state = TaskState::Sleeping { until: t };
                            Flow::Blocked
                        }
                        NextAttempt::Exhausted => {
                            self.log.push(self.now, tid, LogKind::TryExhausted);
                            self.trace(tid, TraceEv::TryExhausted);
                            self.fail_try_frame(tid, task);
                            match task.state {
                                TaskState::Ready(c) => Flow::Continue(c),
                                _ => Flow::Blocked,
                            }
                        }
                    }
                }
            }
            Frame::ForAny {
                var,
                values,
                idx,
                body,
            } => {
                if res {
                    task.frames.pop();
                    Flow::Continue(Ctl::Return(true))
                } else {
                    *idx += 1;
                    if *idx >= values.len() {
                        task.frames.pop();
                        Flow::Continue(Ctl::Return(false))
                    } else {
                        let value = values[*idx].clone();
                        let var = var.clone();
                        let body = body.clone();
                        self.log.push(
                            self.now,
                            tid,
                            LogKind::ForAnyNext {
                                value: value.clone(),
                            },
                        );
                        task.env.set(var, value);
                        task.frames.push(Frame::Seq {
                            stmts: body,
                            idx: 0,
                        });
                        Flow::Continue(Ctl::Exec)
                    }
                }
            }
            Frame::ForAll { .. } => {
                unreachable!("forall results arrive via child_finished")
            }
            Frame::Call { saved_positionals } => {
                let saved = std::mem::take(saved_positionals);
                task.frames.pop();
                task.env.clear_positionals();
                for (k, v) in saved {
                    task.env.set(k, v);
                }
                Flow::Continue(Ctl::Return(res))
            }
        }
    }

    fn exec_top(&mut self, tid: TaskId, task: &mut Task) -> Flow {
        // Decide with a short borrow what to do, then act.
        enum Act {
            Finished,
            GroupDone,
            Stmt(Block, usize),
            EnterTryBody(Block, u32, Option<Dur>),
            TrySpent,
            BindForAny(String, Istr, Block),
        }

        let act = match task.frames.last_mut() {
            None => Act::Finished,
            Some(Frame::Seq { stmts, idx }) => {
                if *idx >= stmts.len() {
                    Act::GroupDone
                } else {
                    // Clone the shared handle (reference-count bump),
                    // not the statement: execution is by reference.
                    Act::Stmt(stmts.clone(), *idx)
                }
            }
            Some(Frame::Try { session, body, .. }) => {
                if session.begin_attempt(self.now) {
                    // Budget remaining at admission: what the span
                    // records as the headroom this attempt started
                    // with (`None` = unbounded try).
                    let budget = session.deadline().map(|d| d.saturating_since(self.now));
                    Act::EnterTryBody(body.clone(), session.attempts(), budget)
                } else {
                    Act::TrySpent
                }
            }
            Some(Frame::ForAny {
                var,
                values,
                idx,
                body,
            }) => Act::BindForAny(var.clone(), values[*idx].clone(), body.clone()),
            Some(Frame::ForAll { .. }) => {
                unreachable!("forall frame is never executed directly")
            }
            Some(Frame::Call { .. }) => Act::GroupDone,
        };

        match act {
            Act::Finished => Flow::Finished(true),
            Act::GroupDone => {
                task.frames.pop();
                Flow::Continue(Ctl::Return(true))
            }
            Act::Stmt(block, idx) => self.exec_stmt(tid, task, &block[idx]),
            Act::EnterTryBody(body, attempt, budget) => {
                self.log
                    .push(self.now, tid, LogKind::TryAttempt { attempt });
                self.trace(tid, TraceEv::AttemptStart { attempt, budget });
                task.frames.push(Frame::Seq {
                    stmts: body,
                    idx: 0,
                });
                Flow::Continue(Ctl::Exec)
            }
            Act::TrySpent => {
                self.log.push(self.now, tid, LogKind::TryExhausted);
                self.trace(tid, TraceEv::TryExhausted);
                self.fail_try_frame(tid, task);
                match task.state {
                    TaskState::Ready(c) => Flow::Continue(c),
                    _ => Flow::Blocked,
                }
            }
            Act::BindForAny(var, value, body) => {
                self.log.push(
                    self.now,
                    tid,
                    LogKind::ForAnyNext {
                        value: value.clone(),
                    },
                );
                task.env.set(var, value);
                task.frames.push(Frame::Seq {
                    stmts: body,
                    idx: 0,
                });
                Flow::Continue(Ctl::Exec)
            }
        }
    }

    fn exec_stmt(&mut self, tid: TaskId, task: &mut Task, stmt: &Stmt) -> Flow {
        match stmt {
            Stmt::Failure => Flow::Continue(Ctl::Return(false)),
            Stmt::Success => Flow::Continue(Ctl::Return(true)),
            Stmt::Assign { var, value } => {
                let v = task.env.expand(value);
                let name = Istr::from(var.as_str());
                task.env.set(name.clone(), v);
                self.log.var_set(self.now, tid, &name);
                Flow::Continue(Ctl::Return(true))
            }
            Stmt::If { cond, then, els } => match eval_cond(cond, &task.env) {
                Ok(true) => {
                    task.frames.push(Frame::Seq {
                        stmts: then.clone(),
                        idx: 0,
                    });
                    Flow::Continue(Ctl::Exec)
                }
                Ok(false) => match els {
                    Some(e) => {
                        task.frames.push(Frame::Seq {
                            stmts: e.clone(),
                            idx: 0,
                        });
                        Flow::Continue(Ctl::Exec)
                    }
                    None => Flow::Continue(Ctl::Return(true)),
                },
                Err(_) => Flow::Continue(Ctl::Return(false)),
            },
            Stmt::Try { spec, body, catch } => {
                let budget = self.budget_for(spec);
                task.frames.push(Frame::Try {
                    session: TrySession::start(budget, self.now),
                    body: body.clone(),
                    catch: catch.clone(),
                    in_catch: false,
                });
                Flow::Continue(Ctl::Exec)
            }
            Stmt::ForAny { var, values, body } => {
                let values = task.env.expand_all(values);
                task.frames.push(Frame::ForAny {
                    var: var.clone(),
                    values,
                    idx: 0,
                    body: body.clone(),
                });
                Flow::Continue(Ctl::Exec)
            }
            Stmt::ForAll { var, values, body } => {
                let values = task.env.expand_all(values);
                let body = body.clone();
                self.log.push(
                    self.now,
                    tid,
                    LogKind::ForAllSpawn {
                        branches: values.len(),
                    },
                );
                let limit = self.max_parallel.unwrap_or(values.len()).max(1);
                let (now_vals, later_vals) = if values.len() > limit {
                    let later = values[limit..].to_vec();
                    (values[..limit].to_vec(), later)
                } else {
                    (values, Vec::new())
                };
                let mut children = Vec::with_capacity(now_vals.len());
                for v in now_vals {
                    children.push(self.spawn_branch(tid, &task.env, var, v, &body));
                }
                // Pending branches start in reverse-pop order.
                let mut pending = later_vals;
                pending.reverse();
                task.frames.push(Frame::ForAll {
                    children,
                    pending,
                    var: var.clone(),
                    body,
                });
                task.state = TaskState::WaitingChildren;
                Flow::Blocked
            }
            Stmt::Function { name, body } => {
                self.functions.insert(name.clone(), body.clone());
                Flow::Continue(Ctl::Return(true))
            }
            Stmt::Command(cmd) => self.exec_command(tid, task, cmd),
        }
    }

    fn exec_command(&mut self, tid: TaskId, task: &mut Task, cmd: &Command) -> Flow {
        let mut argv = self.spare_argv.pop().unwrap_or_default();
        task.env.expand_all_into(&cmd.words, &mut argv);
        if argv.first().map(|s| s.is_empty()).unwrap_or(true) {
            // A command whose name expanded to nothing cannot run.
            return Flow::Continue(Ctl::Return(false));
        }

        // Defined functions shadow external commands. Redirections on
        // a call are meaningless (a function has no byte streams of
        // its own) and are ignored.
        if let Some(body) = self.functions.get(argv[0].as_str()).cloned() {
            let depth = task
                .frames
                .iter()
                .filter(|f| matches!(f, Frame::Call { .. }))
                .count();
            if depth >= 64 {
                // Runaway recursion is just another untyped failure.
                return Flow::Continue(Ctl::Return(false));
            }
            let saved = task.env.snapshot_positionals();
            task.env.clear_positionals();
            task.env.set("0", argv[0].clone());
            for (i, a) in argv[1..].iter().enumerate() {
                task.env.set((i + 1).to_string(), a.clone());
            }
            task.env.set("*", argv[1..].join(" "));
            task.frames.push(Frame::Call {
                saved_positionals: saved,
            });
            task.frames.push(Frame::Seq {
                stmts: body,
                idx: 0,
            });
            argv.clear();
            if self.spare_argv.len() < 8 {
                self.spare_argv.push(argv);
            }
            return Flow::Continue(Ctl::Exec);
        }

        let mut input = None;
        let mut output = None;
        let mut both = false;
        let mut out_var = None;
        for r in &cmd.redirs {
            match r {
                Redir::In { from, source } => {
                    let name = task.env.expand(source);
                    input = Some(match from {
                        RedirTarget::Variable => {
                            CmdInput::Data(task.env.get_istr(&name).cloned().unwrap_or_default())
                        }
                        RedirTarget::File => CmdInput::File(name),
                    });
                }
                Redir::Out {
                    to,
                    append,
                    both: b,
                    target,
                } => {
                    let name = task.env.expand(target);
                    both = *b;
                    match to {
                        RedirTarget::Variable => {
                            out_var = Some((name.clone(), *append));
                            output = Some(OutSink::Var {
                                name,
                                append: *append,
                            });
                        }
                        RedirTarget::File => {
                            out_var = None;
                            output = Some(OutSink::File {
                                path: name,
                                append: *append,
                            });
                        }
                    }
                }
            }
        }

        let token = self.token_ctr;
        self.token_ctr += 1;
        self.token_task.insert(token, tid);
        let spec = CommandSpec {
            argv,
            input,
            output,
            both,
        };
        self.log.cmd_start(self.now, tid, &spec.argv);
        if self.tracer.is_some() {
            self.trace(
                tid,
                TraceEv::CmdStart {
                    program: spec.program().to_string(),
                },
            );
        }
        task.state = TaskState::RunningCmd {
            token,
            // argv[0] is non-empty here (checked on entry); share it.
            program: spec.argv.first().cloned().unwrap_or_default(),
            out_var,
        };
        self.effects.push(Effect::Start {
            token,
            task: tid,
            spec,
        });
        Flow::Blocked
    }

    fn spawn_branch(
        &mut self,
        parent: TaskId,
        parent_env: &Env,
        var: &str,
        value: Istr,
        body: &Block,
    ) -> TaskId {
        let mut env = parent_env.clone();
        env.set(var, value);
        let child = Task {
            frames: vec![Frame::Seq {
                stmts: body.clone(),
                idx: 0,
            }],
            env,
            state: TaskState::Ready(Ctl::Exec),
            parent: Some(parent),
        };
        self.tasks.push(Some(child));
        self.tasks.len() - 1
    }

    fn child_finished(&mut self, pid: TaskId, child: TaskId, res: bool) {
        let Some(mut parent) = self.tasks[pid].take() else {
            return; // parent already cancelled
        };
        let Some(Frame::ForAll {
            children,
            pending,
            var,
            body,
        }) = parent.frames.last_mut()
        else {
            unreachable!("child finished but parent is not in a forall")
        };
        children.retain(|&c| c != child);
        if !res {
            // First failure aborts all outstanding branches; pending
            // ones never start.
            pending.clear();
            let remaining = std::mem::take(children);
            parent.frames.pop();
            parent.state = TaskState::Ready(Ctl::Return(false));
            for c in remaining {
                self.cancel_subtree(c);
            }
        } else if let Some(value) = pending.pop() {
            // A slot freed up: start the next throttled branch.
            let var = var.clone();
            let body = body.clone();
            let env = parent.env.clone();
            let new_child = self.spawn_branch(pid, &env, &var, value, &body);
            if let Some(Frame::ForAll { children, .. }) = parent.frames.last_mut() {
                children.push(new_child);
            }
        } else if children.is_empty() {
            parent.frames.pop();
            parent.state = TaskState::Ready(Ctl::Return(true));
        }
        self.tasks[pid] = Some(parent);
    }

    fn budget_for(&self, spec: &TrySpec) -> TryBudget {
        let backoff = match spec.every {
            Some(d) => BackoffPolicy::Constant(d),
            None => self.default_backoff,
        };
        TryBudget {
            time_limit: spec.time,
            attempt_limit: spec.attempts,
            backoff,
        }
    }

    fn next_wake(&self) -> Option<Time> {
        let mut wake: Option<Time> = None;
        let mut consider = |t: Time| {
            wake = Some(match wake {
                Some(w) if w <= t => w,
                _ => t,
            });
        };
        for task in self.tasks.iter().flatten() {
            if let TaskState::Sleeping { until } = task.state {
                consider(until);
            }
            for f in &task.frames {
                if let Frame::Try {
                    session,
                    in_catch: false,
                    ..
                } = f
                {
                    if let Some(d) = session.deadline() {
                        consider(d);
                    }
                }
            }
        }
        wake
    }
}

enum Flow {
    Continue(Ctl),
    Blocked,
    Finished(bool),
}

// ----------------------------------------------------------------------
// Backend selection
// ----------------------------------------------------------------------

/// Which interpreter backend a [`Vm`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmKind {
    /// The tree-walking interpreter: executes the shared AST by
    /// reference. The reference semantics.
    Tree,
    /// The bytecode interpreter: the AST is compiled once per script
    /// ([`crate::bytecode`]) to a flat op array with preresolved
    /// variable slots, and executed by [`crate::cvm::Cvm`].
    Bytecode,
}

/// 0 = undecided, 1 = tree, 2 = bytecode.
static DEFAULT_KIND: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

impl VmKind {
    /// The backend new [`Vm`]s default to. Decided on first use from
    /// `EG_FTSH_VM` (`tree` or `bytecode`; anything else — including
    /// unset — means bytecode) and cached; tests that need to compare
    /// backends in one process override it with
    /// [`VmKind::set_process_default`] or build VMs via
    /// [`Vm::with_kind`].
    pub fn selected() -> VmKind {
        use std::sync::atomic::Ordering;
        match DEFAULT_KIND.load(Ordering::Relaxed) {
            1 => VmKind::Tree,
            2 => VmKind::Bytecode,
            _ => {
                let kind = match std::env::var("EG_FTSH_VM").as_deref() {
                    Ok("tree") => VmKind::Tree,
                    _ => VmKind::Bytecode,
                };
                kind.store();
                kind
            }
        }
    }

    /// Override the process-wide default backend (also what a later
    /// `EG_FTSH_VM` read would have decided). For tests that run both
    /// backends in one process.
    pub fn set_process_default(self) {
        self.store();
    }

    fn store(self) {
        let v = match self {
            VmKind::Tree => 1,
            VmKind::Bytecode => 2,
        };
        DEFAULT_KIND.store(v, std::sync::atomic::Ordering::Relaxed);
    }
}

enum Backend {
    Tree(TreeVm),
    Byte(crate::cvm::Cvm),
}

/// The virtual machine for one script execution.
///
/// A facade over two interchangeable backends — the tree-walking
/// interpreter and the compiled bytecode VM ([`VmKind`]) — with
/// identical observable behaviour: same effects, same log and trace
/// events, same RNG draws (so backoff jitter, and therefore every
/// simulated figure, is byte-identical across backends).
///
/// Manual driving (what `procman` and `gridworld` do internally):
///
/// ```
/// use ftsh::parse;
/// use ftsh::vm::{CmdResult, Effect, Vm, VmStatus};
/// use retry::Time;
///
/// let script = parse("hello world\n").unwrap();
/// let mut vm = Vm::with_seed(&script, 1);
/// let tick = vm.tick(Time::ZERO);
/// let Effect::Start { token, spec, .. } = &tick.effects[0] else { panic!() };
/// assert_eq!(spec.argv, ["hello", "world"]);
/// vm.complete(*token, CmdResult::ok(""));
/// assert!(matches!(vm.tick(Time::ZERO).status, VmStatus::Done { success: true }));
/// ```
pub struct Vm {
    inner: Backend,
}

impl Vm {
    /// Build a VM for a script with an empty environment and an
    /// entropy-seeded RNG for backoff jitter.
    pub fn new(script: &Script) -> Vm {
        Vm::with_env_seed(script, Env::new(), rand::rng().random())
    }

    /// Build a VM with a fixed RNG seed (deterministic backoff jitter).
    pub fn with_seed(script: &Script, seed: u64) -> Vm {
        Vm::with_env_seed(script, Env::new(), seed)
    }

    /// Build a VM with an initial environment and seed, on the
    /// process-default backend ([`VmKind::selected`]).
    pub fn with_env_seed(script: &Script, env: Env, seed: u64) -> Vm {
        Vm::with_kind(VmKind::selected(), script, env, seed)
    }

    /// Build a VM on an explicit backend (differential tests drive the
    /// same script through both and diff every observable).
    pub fn with_kind(kind: VmKind, script: &Script, env: Env, seed: u64) -> Vm {
        let inner = match kind {
            VmKind::Tree => Backend::Tree(TreeVm::with_env_seed(script, env, seed)),
            VmKind::Bytecode => Backend::Byte(crate::cvm::Cvm::with_env_seed(script, env, seed)),
        };
        Vm { inner }
    }

    /// Which backend this VM runs on.
    pub fn kind(&self) -> VmKind {
        match &self.inner {
            Backend::Tree(_) => VmKind::Tree,
            Backend::Byte(_) => VmKind::Bytecode,
        }
    }

    /// Hand a finished command's spec back so its argv buffer can be
    /// reused by the next dispatch. Purely an optimisation: a driver
    /// that drops specs instead loses nothing but the recycling.
    pub fn recycle_spec(&mut self, spec: CommandSpec) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.recycle_spec(spec),
            Backend::Byte(vm) => vm.recycle_spec(spec),
        }
    }

    /// Move the spare buffers of a retiring VM into this one. Drivers
    /// that replace a client's VM per work unit call this so the
    /// recycled argv pool survives the replacement. A no-op across
    /// mismatched backends.
    pub fn adopt_spares(&mut self, prev: &mut Vm) {
        match (&mut self.inner, &mut prev.inner) {
            (Backend::Tree(a), Backend::Tree(b)) => a.adopt_spares(b),
            (Backend::Byte(a), Backend::Byte(b)) => a.adopt_spares(b),
            _ => {}
        }
    }

    /// Install a structured-trace sink; every span and command event
    /// this VM produces is recorded there, attributed to `client`
    /// (the scenario's client index, or [`NO_ID`] outside a
    /// population). With no sink installed — the default — every
    /// emission site is a single `Option` test: the tick path stays
    /// allocation-free.
    pub fn set_tracer(&mut self, sink: SharedSink, client: i64) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.set_tracer(sink, client),
            Backend::Byte(vm) => vm.set_tracer(sink, client),
        }
    }

    /// True when a trace sink is installed.
    pub fn has_tracer(&self) -> bool {
        match &self.inner {
            Backend::Tree(vm) => vm.has_tracer(),
            Backend::Byte(vm) => vm.has_tracer(),
        }
    }

    /// Override the backoff policy used by `try` blocks that do not
    /// specify `every`. This is how the Fixed discipline (no delay) and
    /// the jitter ablations are expressed.
    pub fn set_default_backoff(&mut self, p: BackoffPolicy) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.set_default_backoff(p),
            Backend::Byte(vm) => vm.set_default_backoff(p),
        }
    }

    /// The backoff policy `try` blocks without `every` run under.
    pub fn default_backoff(&self) -> BackoffPolicy {
        match &self.inner {
            Backend::Tree(vm) => vm.default_backoff(),
            Backend::Byte(vm) => vm.default_backoff(),
        }
    }

    /// Throttle `forall`: at most `n` branches run concurrently, the
    /// rest start as slots free up. §4 notes that "the creation of
    /// processes must be governed by an Ethernet-like algorithm": this
    /// is the limited-allocation obligation applied to the process
    /// table itself. `None` (the default) spawns every branch at once.
    pub fn set_max_parallel(&mut self, n: Option<usize>) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.set_max_parallel(n),
            Backend::Byte(vm) => vm.set_max_parallel(n),
        }
    }

    /// The execution log so far.
    pub fn log(&self) -> &EventLog {
        match &self.inner {
            Backend::Tree(vm) => vm.log(),
            Backend::Byte(vm) => vm.log(),
        }
    }

    /// Switch the execution log between full event retention (the
    /// default) and counters-only mode — see [`EventLog::set_detailed`].
    /// Population drivers run counters-only: the [`LogSummary`] still
    /// aggregates exactly, but a million ticks retain no per-event
    /// storage.
    ///
    /// [`LogSummary`]: crate::log::LogSummary
    pub fn set_log_detail(&mut self, detailed: bool) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.set_log_detail(detailed),
            Backend::Byte(vm) => vm.set_log_detail(detailed),
        }
    }

    /// The root environment (variables visible after completion).
    pub fn env(&self) -> &Env {
        match &self.inner {
            Backend::Tree(vm) => vm.env(),
            Backend::Byte(vm) => vm.env(),
        }
    }

    /// The script outcome, if finished.
    pub fn outcome(&self) -> Option<bool> {
        match &self.inner {
            Backend::Tree(vm) => vm.outcome(),
            Backend::Byte(vm) => vm.outcome(),
        }
    }

    /// Report an in-flight command as finished. Stale tokens (already
    /// cancelled) are ignored. Call [`Vm::tick`] afterwards.
    pub fn complete(&mut self, token: CmdToken, result: CmdResult) {
        match &mut self.inner {
            Backend::Tree(vm) => vm.complete(token, result),
            Backend::Byte(vm) => vm.complete(token, result),
        }
    }

    /// Advance every runnable strand at virtual instant `now`.
    pub fn tick(&mut self, now: Time) -> Tick {
        match &mut self.inner {
            Backend::Tree(vm) => vm.tick(now),
            Backend::Byte(vm) => vm.tick(now),
        }
    }

    /// [`Vm::tick`] into a caller-owned effects buffer: `out` is
    /// cleared and refilled, and its capacity is recycled into the
    /// VM's internal buffer — a driver ticking thousands of VMs in a
    /// loop reuses one allocation instead of taking a fresh `Vec`
    /// per tick.
    pub fn tick_into(&mut self, now: Time, out: &mut Vec<Effect>) -> VmStatus {
        match &mut self.inner {
            Backend::Tree(vm) => vm.tick_into(now, out),
            Backend::Byte(vm) => vm.tick_into(now, out),
        }
    }
}
