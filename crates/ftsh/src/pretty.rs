//! Canonical pretty-printing of scripts.
//!
//! `pretty(parse(src))` produces a normalized source form; for ASTs
//! built from well-formed words, `parse(pretty(ast)) == ast`, which the
//! property tests in `tests/` rely on. Words are emitted bare when the
//! lexer would read them back unchanged and double-quoted otherwise.

use crate::ast::{Command, Cond, Redir, RedirTarget, Script, Seg, Stmt, TrySpec, Word};
use retry::Dur;
use std::fmt::Write;

/// Render a script as canonical source text.
///
/// ```
/// use ftsh::{parse, pretty};
///
/// let script = parse("try   for 5   minutes\nwget url\nend\n").unwrap();
/// assert_eq!(pretty(&script), "try for 5 minutes\n  wget url\nend\n");
/// ```
pub fn pretty(script: &Script) -> String {
    let mut out = String::new();
    for s in &script.stmts {
        stmt(&mut out, s, 0);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Command(c) => {
            command(out, c);
            out.push('\n');
        }
        Stmt::Try { spec, body, catch } => {
            out.push_str("try");
            try_spec(out, spec);
            out.push('\n');
            for b in body {
                stmt(out, b, depth + 1);
            }
            if let Some(c) = catch {
                indent(out, depth);
                out.push_str("catch\n");
                for b in c {
                    stmt(out, b, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::ForAny { var, values, body } => {
            for_stmt(out, "forany", var, values, body, depth);
        }
        Stmt::ForAll { var, values, body } => {
            for_stmt(out, "forall", var, values, body, depth);
        }
        Stmt::If { cond, then, els } => {
            out.push_str("if ");
            cond_str(out, cond);
            out.push('\n');
            for b in then {
                stmt(out, b, depth + 1);
            }
            if let Some(e) = els {
                indent(out, depth);
                out.push_str("else\n");
                for b in e {
                    stmt(out, b, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::Assign { var, value } => {
            out.push_str(var);
            out.push('=');
            // The value continues the same word, so it must not start a
            // fresh token: always render segments inline, quoting only
            // what must be quoted.
            word_into_assignment(out, value);
            out.push('\n');
        }
        Stmt::Failure => out.push_str("failure\n"),
        Stmt::Success => out.push_str("success\n"),
        Stmt::Function { name, body } => {
            let _ = writeln!(out, "function {name}");
            for b in body {
                stmt(out, b, depth + 1);
            }
            indent(out, depth);
            out.push_str("end\n");
        }
    }
}

fn for_stmt(out: &mut String, kw: &str, var: &str, values: &[Word], body: &[Stmt], depth: usize) {
    let _ = write!(out, "{kw} {var} in");
    for v in values {
        out.push(' ');
        word(out, v);
    }
    out.push('\n');
    for b in body {
        stmt(out, b, depth + 1);
    }
    indent(out, depth);
    out.push_str("end\n");
}

fn try_spec(out: &mut String, spec: &TrySpec) {
    if let Some(d) = spec.time {
        let _ = write!(out, " for {}", dur_words(d));
    }
    if let Some(n) = spec.attempts {
        if spec.time.is_some() {
            out.push_str(" or");
        }
        let _ = write!(out, " {n} times");
    }
    if let Some(d) = spec.every {
        let _ = write!(out, " every {}", dur_words(d));
    }
}

/// Render a duration in `N unit` words, choosing the largest exact
/// unit.
fn dur_words(d: Dur) -> String {
    let us = d.as_micros();
    if us.is_multiple_of(3_600_000_000) && us > 0 {
        format!("{} hours", us / 3_600_000_000)
    } else if us.is_multiple_of(60_000_000) && us > 0 {
        format!("{} minutes", us / 60_000_000)
    } else if us.is_multiple_of(1_000_000) {
        format!("{} seconds", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{} ms", us / 1_000)
    } else {
        format!("{us} us")
    }
}

fn cond_str(out: &mut String, c: &Cond) {
    word(out, &c.lhs);
    let _ = write!(out, " {} ", c.op.spelling());
    word(out, &c.rhs);
}

fn command(out: &mut String, c: &Command) {
    let mut first = true;
    for w in &c.words {
        if !first {
            out.push(' ');
        }
        word(out, w);
        first = false;
    }
    for r in &c.redirs {
        match r {
            Redir::Out {
                to,
                append,
                both,
                target,
            } => {
                out.push(' ');
                if *to == RedirTarget::Variable {
                    out.push('-');
                }
                out.push('>');
                if *append {
                    out.push('>');
                }
                if *both {
                    out.push('&');
                }
                out.push(' ');
                word(out, target);
            }
            Redir::In { from, source } => {
                out.push(' ');
                if *from == RedirTarget::Variable {
                    out.push('-');
                }
                out.push_str("< ");
                word(out, source);
            }
        }
    }
}

/// Characters that survive bare (outside quotes) without changing
/// meaning, provided the word does not *start* like an operator.
fn bare_safe(c: char) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            '.' | '/' | ':' | '_' | '-' | '+' | '@' | '%' | ',' | '~' | '?' | '='
        )
}

fn lit_is_bare(s: &str) -> bool {
    if s.is_empty() || !s.chars().all(bare_safe) {
        return false;
    }
    // Words that would lex as operators must be quoted.
    let operator_like =
        s.starts_with('>') || s.starts_with('<') || s.starts_with("->") || s.starts_with("-<");
    !operator_like
}

/// Render a word, bare if safe, quoted otherwise.
fn word(out: &mut String, w: &Word) {
    let bare = match w.segs() {
        [] => false,
        segs => segs.iter().enumerate().all(|(i, s)| match s {
            Seg::Lit(l) => {
                if i == 0 {
                    lit_is_bare(l)
                } else {
                    !l.is_empty() && l.chars().all(bare_safe)
                }
            }
            Seg::Var(_) => true,
        }),
    };
    if bare {
        for s in w.segs() {
            match s {
                Seg::Lit(l) => out.push_str(l),
                Seg::Var(v) => {
                    let _ = write!(out, "${{{v}}}");
                }
            }
        }
    } else {
        quoted(out, w);
    }
}

fn quoted(out: &mut String, w: &Word) {
    out.push('"');
    for s in w.segs() {
        match s {
            Seg::Lit(l) => {
                for c in l.chars() {
                    match c {
                        '"' | '\\' | '$' => {
                            out.push('\\');
                            out.push(c);
                        }
                        c => out.push(c),
                    }
                }
            }
            Seg::Var(v) => {
                let _ = write!(out, "${{{v}}}");
            }
        }
    }
    out.push('"');
}

/// Render an assignment value inline after `name=`. A leading quote is
/// fine (`x="a b"`), so reuse word rendering but allow the empty word.
fn word_into_assignment(out: &mut String, w: &Word) {
    if w.segs().is_empty() {
        out.push_str("\"\"");
    } else {
        word(out, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let a = parse(src).unwrap();
        let printed = pretty(&a);
        let b = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(a, b, "roundtrip mismatch:\n{printed}");
    }

    #[test]
    fn roundtrip_paper_examples() {
        roundtrip("wget http://server/file.tar.gz\ngunzip file.tar.gz\ntar xvf file.tar\n");
        roundtrip("try for 30 minutes\n wget u\n gunzip f\n tar xvf f\nend\n");
        roundtrip("try 5 times\n wget u\ncatch\n rm -f f\n failure\nend\n");
        roundtrip("forany server in xxx yyy zzz\n wget http://${server}/file\nend\n");
        roundtrip("forall file in xxx yyy zzz\n wget http://${server}/${file}\nend\n");
        roundtrip(
            "try for 1 hour\n forany host in xxx yyy zzz\n  try for 5 minutes\n   wget http://${host}/file\n  end\n end\nend\n",
        );
        roundtrip("try 5 times\n run-simulation ->& tmp\nend\ncat -< tmp\n");
        roundtrip(
            "try for 5 minutes\n cut -f2 /proc/sys/fs/file-nr -> n\n if ${n} .lt. 1000\n  failure\n else\n  condor_submit submit.job\n end\nend\n",
        );
    }

    #[test]
    fn roundtrip_assignments() {
        roundtrip("x=5\n");
        roundtrip("url=http://${h}/f\n");
        roundtrip("empty=\"\"\n");
    }

    #[test]
    fn roundtrip_quoting() {
        roundtrip("echo \"two words\"\n");
        roundtrip("echo \"a \\\"quote\\\"\"\n");
        roundtrip("echo \"\"\n");
    }

    #[test]
    fn roundtrip_functions() {
        roundtrip("function fetch\n wget http://${h}/f\nend\nfetch a b\n");
        roundtrip("function f\n try 2 times\n  x\n end\nend\n");
    }

    #[test]
    fn roundtrip_try_specs() {
        roundtrip("try for 90 seconds\nx\nend\n");
        roundtrip("try for 2 hours or 7 times\nx\nend\n");
        roundtrip("try 1 times\nx\nend\n");
        roundtrip("try for 1 minutes every 10 seconds\nx\nend\n");
        roundtrip("try\nx\nend\n");
    }

    #[test]
    fn dur_words_units() {
        assert_eq!(dur_words(Dur::from_hours(2)), "2 hours");
        assert_eq!(dur_words(Dur::from_mins(90)), "90 minutes");
        assert_eq!(dur_words(Dur::from_secs(5)), "5 seconds");
        assert_eq!(dur_words(Dur::from_millis(250)), "250 ms");
        assert_eq!(dur_words(Dur::from_micros(3)), "3 us");
    }
}
