//! Abstract syntax of ftsh.
//!
//! A script is a *group*: a fail-fast sequence of statements. The
//! structural statements are exactly those §4 of the paper introduces —
//! `try`/`catch`, `forany`, `forall`, `if`, assignment, the `failure`
//! and `success` atoms — and the atom is an external command with
//! optional redirections (to files or, dash-prefixed, to shell
//! variables).

use crate::intern::Istr;
use retry::Dur;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A half-open byte range `[start, end)` into the source text a node
/// was parsed from.
///
/// Spans are *diagnostic metadata*: they never participate in AST
/// equality or hashing, so `parse(pretty(ast)) == ast` holds even
/// though the reprinted source has different offsets. Nodes built
/// programmatically (tests, generated scripts) carry the default
/// zero span, which [`Span::is_known`] reports as absent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte of the node.
    pub start: u32,
    /// Byte offset one past the last byte of the node.
    pub end: u32,
}

impl Span {
    /// A span from byte offsets.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// A zero-length span at one offset (used for end-of-input
    /// diagnostics).
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// True unless this is the default "no location" span.
    pub fn is_known(self) -> bool {
        self != Span::default()
    }

    /// The smallest span covering both `self` and `other`; a default
    /// span on either side yields the other.
    pub fn merge(self, other: Span) -> Span {
        if !self.is_known() {
            other
        } else if !other.is_known() {
            self
        } else {
            Span {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            }
        }
    }
}

/// One segment of a [`Word`]: literal text or a `${var}` substitution.
///
/// Segments hold interned strings ([`Istr`]): a fully-literal word
/// expands by cloning its segment's `Istr` — a refcount bump shared
/// with every other expansion of the same word, across the whole VM
/// population running the script.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Seg {
    /// Literal text.
    Lit(Istr),
    /// Substitution of the named variable at expansion time.
    Var(Istr),
}

/// A shell word: a run of literal and substitution segments that
/// expands to a single string at evaluation time.
///
/// Equality and hashing compare segments only — the source [`Span`] is
/// diagnostic metadata.
#[derive(Clone, Eq, Default)]
pub struct Word {
    segs: Vec<Seg>,
    span: Span,
}

impl PartialEq for Word {
    fn eq(&self, other: &Word) -> bool {
        self.segs == other.segs
    }
}

impl std::hash::Hash for Word {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.segs.hash(state);
    }
}

impl Word {
    /// A word from raw segments (adjacent literals are merged).
    pub fn from_segs(segs: Vec<Seg>) -> Word {
        let mut merged: Vec<Seg> = Vec::with_capacity(segs.len());
        for s in segs {
            match (merged.last_mut(), s) {
                (Some(Seg::Lit(a)), Seg::Lit(b)) => {
                    let mut joined = String::with_capacity(a.len() + b.len());
                    joined.push_str(a);
                    joined.push_str(&b);
                    *a = Istr::from(joined);
                }
                (_, s) => merged.push(s),
            }
        }
        Word {
            segs: merged,
            span: Span::default(),
        }
    }

    /// A purely literal word.
    pub fn lit(s: impl Into<Istr>) -> Word {
        let s = s.into();
        if s.is_empty() {
            Word::default()
        } else {
            Word {
                segs: vec![Seg::Lit(s)],
                span: Span::default(),
            }
        }
    }

    /// A single-variable word (`${name}`).
    pub fn var(name: impl Into<Istr>) -> Word {
        Word {
            segs: vec![Seg::Var(name.into())],
            span: Span::default(),
        }
    }

    /// The same word carrying a source span.
    pub fn with_span(mut self, span: Span) -> Word {
        self.span = span;
        self
    }

    /// Where this word sits in the source (default span when the word
    /// was built programmatically).
    pub fn span(&self) -> Span {
        self.span
    }

    /// The segments of this word.
    pub fn segs(&self) -> &[Seg] {
        &self.segs
    }

    /// If the word is a single literal, that literal.
    pub fn as_lit(&self) -> Option<&str> {
        match self.segs.as_slice() {
            [Seg::Lit(s)] => Some(s.as_str()),
            [] => Some(""),
            _ => None,
        }
    }

    /// True if any segment is a substitution.
    pub fn has_vars(&self) -> bool {
        self.segs.iter().any(|s| matches!(s, Seg::Var(_)))
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w\"")?;
        for s in &self.segs {
            match s {
                Seg::Lit(l) => write!(f, "{l}")?,
                Seg::Var(v) => write!(f, "${{{v}}}")?,
            }
        }
        write!(f, "\"")
    }
}

/// Where redirected output goes / input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedirTarget {
    /// A file in the filesystem (`>`, `>>`, `>&`, `<`).
    File,
    /// A shell variable held by the interpreter (`->`, `->>`, `->&`,
    /// `-<`) — the paper's I/O transaction mechanism.
    Variable,
}

/// A single redirection attached to a command.
#[derive(Clone, Debug, PartialEq)]
pub enum Redir {
    /// Redirect standard output (and error if `both`), truncating or
    /// appending, to a file or variable named by `target`.
    Out {
        /// File or variable destination.
        to: RedirTarget,
        /// Append rather than truncate.
        append: bool,
        /// Capture standard error too (`>&` forms).
        both: bool,
        /// Name of the file/variable (expanded at run time).
        target: Word,
    },
    /// Feed standard input from a file or variable.
    In {
        /// File or variable source.
        from: RedirTarget,
        /// Name of the file/variable (expanded at run time).
        source: Word,
    },
}

/// An external command: argv words plus redirections.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Command {
    /// Argument words, `argv[0]` first.
    pub words: Vec<Word>,
    /// Redirections, applied left to right.
    pub redirs: Vec<Redir>,
}

/// The limits of a `try`: time, attempts, both, or neither, plus an
/// optional fixed retry interval (`every`) overriding exponential
/// backoff.
///
/// Equality compares the limits only — `span` (covering the `try ...`
/// header in the source) is diagnostic metadata.
#[derive(Clone, Debug, Default)]
pub struct TrySpec {
    /// `for <n> <unit>` total time limit.
    pub time: Option<Dur>,
    /// `<n> times` attempt limit.
    pub attempts: Option<u32>,
    /// `every <n> <unit>`: constant delay instead of exponential
    /// backoff (extension documented in the ftsh cookbook).
    pub every: Option<Dur>,
    /// Source span of the `try` header line.
    pub span: Span,
}

impl PartialEq for TrySpec {
    fn eq(&self, other: &TrySpec) -> bool {
        self.time == other.time && self.attempts == other.attempts && self.every == other.every
    }
}

/// Comparison operators for `if` conditions. The dotted numeric forms
/// are the ones the paper's carrier-sense fragment uses
/// (`if ${n} .lt. 1000`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// `.lt.` numeric less-than.
    NumLt,
    /// `.le.` numeric less-or-equal.
    NumLe,
    /// `.gt.` numeric greater-than.
    NumGt,
    /// `.ge.` numeric greater-or-equal.
    NumGe,
    /// `.eq.` numeric equality.
    NumEq,
    /// `.ne.` numeric inequality.
    NumNe,
    /// `.eql.` string equality.
    StrEq,
    /// `.neql.` string inequality.
    StrNe,
}

impl CondOp {
    /// The source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            CondOp::NumLt => ".lt.",
            CondOp::NumLe => ".le.",
            CondOp::NumGt => ".gt.",
            CondOp::NumGe => ".ge.",
            CondOp::NumEq => ".eq.",
            CondOp::NumNe => ".ne.",
            CondOp::StrEq => ".eql.",
            CondOp::StrNe => ".neql.",
        }
    }

    /// Parse a spelling.
    pub fn from_spelling(s: &str) -> Option<CondOp> {
        Some(match s {
            ".lt." => CondOp::NumLt,
            ".le." => CondOp::NumLe,
            ".gt." => CondOp::NumGt,
            ".ge." => CondOp::NumGe,
            ".eq." => CondOp::NumEq,
            ".ne." => CondOp::NumNe,
            ".eql." => CondOp::StrEq,
            ".neql." => CondOp::StrNe,
            _ => return None,
        })
    }
}

/// An `if` condition: `lhs OP rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    /// Left operand.
    pub lhs: Word,
    /// Comparison operator.
    pub op: CondOp,
    /// Right operand.
    pub rhs: Word,
}

/// A group of statements, shared by reference.
///
/// Every structured statement owns its sub-groups through `Block`, and
/// cloning one is a reference-count bump rather than a deep copy. That
/// is what lets a population of VMs execute one parsed script with O(1)
/// AST clones total, and lets the VM enter nested `try`/`forall` bodies
/// without duplicating them per attempt. Backed by `Arc`, so scripts
/// and VMs can cross threads.
#[derive(Clone, Default)]
pub struct Block {
    stmts: Arc<[Stmt]>,
    /// Per-statement source spans; either empty (programmatically
    /// built) or exactly as long as `stmts`. Never part of equality.
    spans: Arc<[Span]>,
}

impl Block {
    /// A group from its statements (no source spans).
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block {
            stmts: stmts.into(),
            spans: Arc::from([]),
        }
    }

    /// A group from statements plus the source span of each.
    ///
    /// # Panics
    /// Panics if the two vectors disagree in length.
    pub fn with_spans(stmts: Vec<Stmt>, spans: Vec<Span>) -> Block {
        assert_eq!(stmts.len(), spans.len(), "one span per statement");
        Block {
            stmts: stmts.into(),
            spans: spans.into(),
        }
    }

    /// The source span of statement `i` (default span when unknown).
    pub fn span_of(&self, i: usize) -> Span {
        self.spans.get(i).copied().unwrap_or_default()
    }

    /// Iterate statements together with their source spans.
    pub fn iter_spanned(&self) -> impl Iterator<Item = (&Stmt, Span)> {
        self.stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (s, self.span_of(i)))
    }

    /// True when two blocks share one allocation (O(1), no deep
    /// comparison) — the regression-test hook for AST sharing.
    pub fn ptr_eq(a: &Block, b: &Block) -> bool {
        Arc::ptr_eq(&a.stmts, &b.stmts)
    }

    /// How many handles share this group's allocation.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.stmts)
    }

    /// The shared statement allocation itself. The bytecode compiler
    /// keys its program cache on this allocation's identity, so a
    /// population of VMs built from one parsed script compiles once.
    pub(crate) fn stmts_arc(&self) -> &Arc<[Stmt]> {
        &self.stmts
    }
}

impl Deref for Block {
    type Target = [Stmt];

    fn deref(&self) -> &[Stmt] {
        &self.stmts
    }
}

impl From<Vec<Stmt>> for Block {
    fn from(stmts: Vec<Stmt>) -> Block {
        Block::new(stmts)
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Block {
        Block {
            stmts: iter.into_iter().collect(),
            spans: Arc::from([]),
        }
    }
}

impl<'a> IntoIterator for &'a Block {
    type Item = &'a Stmt;
    type IntoIter = std::slice::Iter<'a, Stmt>;

    fn into_iter(self) -> Self::IntoIter {
        self.stmts.iter()
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Block) -> bool {
        Arc::ptr_eq(&self.stmts, &other.stmts) || *self.stmts == *other.stmts
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.stmts, f)
    }
}

/// A statement. Groups are represented as [`Block`]s inside the
/// structured statements; the script itself is the outermost group.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// An external command (or a builtin the executor recognizes).
    Command(Command),
    /// `try [for d] [or n times] [every d] ... [catch ...] end`
    Try {
        /// Retry limits.
        spec: TrySpec,
        /// The retried group.
        body: Block,
        /// The handler group, if a `catch` clause is present.
        catch: Option<Block>,
    },
    /// `forany v in w1 w2 ... \n body \n end`
    ForAny {
        /// Loop variable bound to each alternative in turn.
        var: String,
        /// Alternative values (expanded at entry).
        values: Vec<Word>,
        /// Body attempted once per alternative until one succeeds.
        body: Block,
    },
    /// `forall v in w1 w2 ... \n body \n end` — parallel conjunction.
    ForAll {
        /// Loop variable bound per parallel branch.
        var: String,
        /// Branch values (expanded at entry).
        values: Vec<Word>,
        /// Body run once per value, concurrently.
        body: Block,
    },
    /// `if cond \n then-group [else \n else-group] end`
    If {
        /// The comparison.
        cond: Cond,
        /// Group when the condition holds.
        then: Block,
        /// Group when it does not.
        els: Option<Block>,
    },
    /// `name=value` — bind a shell variable.
    Assign {
        /// Variable name.
        var: String,
        /// Value word (expanded at run time).
        value: Word,
    },
    /// The `failure` atom: an untyped throw.
    Failure,
    /// The `success` atom: succeeds without doing anything.
    Success,
    /// `function name ... end` — define a callable procedure (from the
    /// ftsh cookbook, TR-1476). Invoking `name args...` runs the body
    /// with `${1}`…`${9}` bound to the arguments, `${0}` to the name,
    /// and `${*}` to all arguments joined by spaces; the body's result
    /// is the call's result.
    Function {
        /// Procedure name.
        name: String,
        /// The body group.
        body: Block,
    },
}

/// A parsed script: the outermost group. Cloning a script (or handing
/// it to a [`crate::Vm`]) shares the statement block rather than
/// copying it.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Script {
    /// Top-level statements.
    pub stmts: Block,
}

impl Script {
    /// Number of statements at top level.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when the script is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_merges_adjacent_literals() {
        let w = Word::from_segs(vec![
            Seg::Lit("a".into()),
            Seg::Lit("b".into()),
            Seg::Var("x".into()),
            Seg::Lit("c".into()),
        ]);
        assert_eq!(
            w.segs(),
            &[
                Seg::Lit("ab".into()),
                Seg::Var("x".into()),
                Seg::Lit("c".into())
            ]
        );
    }

    #[test]
    fn word_as_lit() {
        assert_eq!(Word::lit("abc").as_lit(), Some("abc"));
        assert_eq!(Word::lit("").as_lit(), Some(""));
        assert_eq!(Word::var("x").as_lit(), None);
    }

    #[test]
    fn word_has_vars() {
        assert!(!Word::lit("abc").has_vars());
        assert!(Word::var("x").has_vars());
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let a = Word::lit("abc");
        let b = Word::lit("abc").with_span(Span::new(3, 6));
        assert_eq!(a, b);
        let mut s1 = TrySpec::default();
        let mut s2 = TrySpec {
            span: Span::new(0, 9),
            ..TrySpec::default()
        };
        assert_eq!(s1, s2);
        s1.attempts = Some(3);
        s2.attempts = Some(3);
        assert_eq!(s1, s2);
        let b1 = Block::new(vec![Stmt::Success]);
        let b2 = Block::with_spans(vec![Stmt::Success], vec![Span::new(1, 8)]);
        assert_eq!(b1, b2);
        assert_eq!(b1.span_of(0), Span::default());
        assert_eq!(b2.span_of(0), Span::new(1, 8));
        assert_eq!(b2.span_of(7), Span::default());
    }

    #[test]
    fn span_merge_and_known() {
        assert!(!Span::default().is_known());
        assert!(Span::new(0, 1).is_known());
        assert_eq!(Span::new(2, 5).merge(Span::new(4, 9)), Span::new(2, 9));
        assert_eq!(Span::default().merge(Span::new(4, 9)), Span::new(4, 9));
        assert_eq!(Span::new(4, 9).merge(Span::default()), Span::new(4, 9));
        assert_eq!(Span::point(7), Span::new(7, 7));
    }

    #[test]
    fn condop_spellings_roundtrip() {
        for op in [
            CondOp::NumLt,
            CondOp::NumLe,
            CondOp::NumGt,
            CondOp::NumGe,
            CondOp::NumEq,
            CondOp::NumNe,
            CondOp::StrEq,
            CondOp::StrNe,
        ] {
            assert_eq!(CondOp::from_spelling(op.spelling()), Some(op));
        }
        assert_eq!(CondOp::from_spelling(".xx."), None);
    }
}
