//! Evaluation of `if` comparisons.
//!
//! Numeric operators (`.lt.`, `.gt.`, …) parse both operands as
//! numbers; a non-numeric operand makes the comparison itself *fail*
//! like any other command — the failure is untyped and can be caught by
//! an enclosing `try`, in keeping with the language's philosophy that
//! anything that can go wrong is an ordinary failure.

use crate::ast::{Cond, CondOp};
use crate::words::Env;

/// Why a comparison could not be evaluated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CondError {
    /// The operand text that failed to parse as a number.
    pub operand: String,
}

impl std::fmt::Display for CondError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not a number: '{}'", self.operand)
    }
}

impl std::error::Error for CondError {}

/// Evaluate a condition against an environment.
pub fn eval_cond(cond: &Cond, env: &Env) -> Result<bool, CondError> {
    let lhs = env.expand(&cond.lhs);
    let rhs = env.expand(&cond.rhs);
    eval_cond_values(cond.op, &lhs, &rhs)
}

/// Evaluate a comparison whose operands are already expanded. The
/// tree-walking VM expands through [`Env`]; the bytecode VM expands
/// through its slot table — both funnel into this one definition of
/// the operators.
pub fn eval_cond_values(op: CondOp, lhs: &str, rhs: &str) -> Result<bool, CondError> {
    match op {
        CondOp::StrEq => Ok(lhs == rhs),
        CondOp::StrNe => Ok(lhs != rhs),
        numeric => {
            let l = parse_num(lhs)?;
            let r = parse_num(rhs)?;
            Ok(match numeric {
                CondOp::NumLt => l < r,
                CondOp::NumLe => l <= r,
                CondOp::NumGt => l > r,
                CondOp::NumGe => l >= r,
                CondOp::NumEq => l == r,
                CondOp::NumNe => l != r,
                CondOp::StrEq | CondOp::StrNe => unreachable!(),
            })
        }
    }
}

fn parse_num(s: &str) -> Result<f64, CondError> {
    s.trim().parse::<f64>().map_err(|_| CondError {
        operand: s.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Word;

    fn cond(l: &str, op: CondOp, r: &str) -> Cond {
        Cond {
            lhs: Word::lit(l),
            op,
            rhs: Word::lit(r),
        }
    }

    #[test]
    fn numeric_comparisons() {
        let env = Env::new();
        assert_eq!(
            eval_cond(&cond("999", CondOp::NumLt, "1000"), &env),
            Ok(true)
        );
        assert_eq!(
            eval_cond(&cond("1000", CondOp::NumLt, "1000"), &env),
            Ok(false)
        );
        assert_eq!(
            eval_cond(&cond("1000", CondOp::NumLe, "1000"), &env),
            Ok(true)
        );
        assert_eq!(eval_cond(&cond("2", CondOp::NumGt, "1"), &env), Ok(true));
        assert_eq!(eval_cond(&cond("1", CondOp::NumGe, "1"), &env), Ok(true));
        assert_eq!(eval_cond(&cond("3", CondOp::NumEq, "3.0"), &env), Ok(true));
        assert_eq!(eval_cond(&cond("3", CondOp::NumNe, "4"), &env), Ok(true));
    }

    #[test]
    fn string_comparisons() {
        let env = Env::new();
        assert_eq!(
            eval_cond(&cond("abc", CondOp::StrEq, "abc"), &env),
            Ok(true)
        );
        assert_eq!(
            eval_cond(&cond("abc", CondOp::StrNe, "abd"), &env),
            Ok(true)
        );
        // Strings that happen to be numbers compare as text under .eql.
        assert_eq!(eval_cond(&cond("3", CondOp::StrEq, "3.0"), &env), Ok(false));
    }

    #[test]
    fn variables_expand_before_comparing() {
        let mut env = Env::new();
        env.set("n", "842");
        let c = Cond {
            lhs: Word::var("n"),
            op: CondOp::NumLt,
            rhs: Word::lit("1000"),
        };
        assert_eq!(eval_cond(&c, &env), Ok(true));
    }

    #[test]
    fn whitespace_tolerated_in_numbers() {
        let env = Env::new();
        assert_eq!(eval_cond(&cond(" 5 ", CondOp::NumEq, "5"), &env), Ok(true));
    }

    #[test]
    fn non_numeric_operand_is_an_error() {
        let env = Env::new();
        let e = eval_cond(&cond("many", CondOp::NumLt, "1000"), &env);
        assert_eq!(
            e,
            Err(CondError {
                operand: "many".into()
            })
        );
        // Unset variable expands to "" which is not a number.
        let c = Cond {
            lhs: Word::var("unset"),
            op: CondOp::NumLt,
            rhs: Word::lit("1"),
        };
        assert!(eval_cond(&c, &env).is_err());
    }
}
