//! Parse-time diagnostics.

use std::fmt;

/// A lexical or syntactic error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    /// Construct an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(3, "unexpected end");
        assert_eq!(e.to_string(), "line 3: unexpected end");
    }
}
