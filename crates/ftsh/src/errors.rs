//! Parse-time diagnostics.

use crate::ast::Span;
use std::fmt;

/// A lexical or syntactic error with its source line and, when known,
/// the exact byte span of the offending text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
    /// Byte span of the offending token, when the lexer/parser knows
    /// it.
    pub span: Option<Span>,
}

impl ParseError {
    /// Construct an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            msg: msg.into(),
            span: None,
        }
    }

    /// Attach the byte span of the offending text.
    pub fn with_span(mut self, span: Span) -> ParseError {
        self.span = Some(span);
        self
    }

    /// Render against the original source as `line:col: msg` plus a
    /// caret excerpt pointing at the offending span:
    ///
    /// ```text
    /// parse error at 2:8: expected a time unit
    ///   2 | try for 5
    ///     |        ^
    /// ```
    ///
    /// Falls back to the plain `line N: msg` form when the span is
    /// unknown or out of bounds.
    pub fn render(&self, src: &str) -> String {
        let Some(span) = self.span else {
            return format!("line {}: {}", self.line, self.msg);
        };
        let (line_no, col) = line_col(src, span.start);
        let line_text = src.lines().nth(line_no as usize - 1).unwrap_or("");
        let width = (span.end.saturating_sub(span.start) as usize)
            .min(line_text.len().saturating_sub(col as usize - 1))
            .max(1);
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        let caret = format!("{}{}", " ".repeat(col as usize - 1), "^".repeat(width));
        format!(
            "parse error at {line_no}:{col}: {msg}\n  {gutter} | {line_text}\n  {pad} | {caret}",
            msg = self.msg,
        )
    }
}

/// 1-based `(line, column)` of a byte offset in `src`. Columns count
/// bytes, which matches the caret rendering of ASCII-oriented scripts;
/// offsets past the end resolve to one past the last line's text.
pub fn line_col(src: &str, offset: u32) -> (u32, u32) {
    let offset = (offset as usize).min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let col = (offset - before.rfind('\n').map(|i| i + 1).unwrap_or(0)) as u32 + 1;
    (line, col)
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(3, "unexpected end");
        assert_eq!(e.to_string(), "line 3: unexpected end");
    }

    #[test]
    fn line_col_basics() {
        let src = "abc\ndef\n";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 6), (2, 3));
        // Past the end clamps to one past the final newline.
        assert_eq!(line_col(src, 99), (3, 1));
        assert_eq!(line_col("", 0), (1, 1));
    }

    #[test]
    fn render_points_a_caret() {
        let src = "try for 5 minutes\nwget url\n";
        let e = ParseError::new(2, "expected 'end'").with_span(Span::new(18, 22));
        let r = e.render(src);
        assert!(r.contains("parse error at 2:1: expected 'end'"), "{r}");
        assert!(r.contains("2 | wget url"), "{r}");
        assert!(r.contains("| ^^^^"), "{r}");
    }

    #[test]
    fn render_without_span_falls_back() {
        let e = ParseError::new(3, "oops");
        assert_eq!(e.render("a\nb\nc\n"), "line 3: oops");
    }

    #[test]
    fn render_clamps_width_to_line() {
        let src = "ab\n";
        let e = ParseError::new(1, "x").with_span(Span::new(1, 40));
        let r = e.render(src);
        // Caret starts at col 2 and cannot run past the line text.
        assert!(r.contains("1 | ab"), "{r}");
        assert_eq!(r.matches('^').count(), 1, "{r}");
        assert!(r.ends_with('^'), "{r}");
    }
}
