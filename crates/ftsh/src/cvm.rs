//! The compiled-bytecode VM.
//!
//! [`Cvm`] executes the flat program produced by [`crate::bytecode`]
//! with the *same observable behaviour* as the tree-walking
//! interpreter: identical effects, identical log and trace events in
//! identical order, and identical RNG draws (the only draws are inside
//! `TrySession::on_failure`, reached under exactly the same control
//! flow), so simulated figures are byte-identical across backends.
//! What changes is the cost per step: dispatch is a jump-threaded loop
//! over copyable ops, sequencing needs no frames at all (it is jump
//! targets), and statically-known variables live in a plain slot
//! vector instead of a hash map.
//!
//! Variables the program can only name at run time — computed capture
//! targets, positional parameters past the ones mentioned statically —
//! spill into a per-task side map; [`CEnv::set_dyn`] routes by the
//! compiler's name table, so a name never lives in both places.

use crate::ast::Script;
use crate::bytecode::{
    self, is_positional_name, CmdTpl, FuncRef, Op, Prog, RedirTpl, SegTpl, SlotIx, SlotMap,
    WordTpl, NO_CATCH,
};
use crate::cond::eval_cond_values;
use crate::intern::Istr;
use crate::log::{EventLog, LogKind};
use crate::vm::{
    CmdInput, CmdResult, CmdToken, CommandSpec, Effect, OutSink, TaskId, Tick, VmStatus,
};
use crate::words::{trim_capture, Env};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retry::{BackoffPolicy, NextAttempt, Time, TryBudget, TrySession};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Variable scope of one task: slot vector for statically-known names
/// plus a spill map for dynamic ones. Cloned per `forall` branch, like
/// the tree VM's `Env`.
#[derive(Clone, Debug)]
struct CEnv {
    slots: Vec<Option<Istr>>,
    extra: HashMap<Istr, Istr>,
}

impl CEnv {
    fn new(n: usize) -> CEnv {
        CEnv {
            slots: vec![None; n],
            extra: HashMap::new(),
        }
    }

    fn from_env(env: &Env, m: &SlotMap) -> CEnv {
        let mut e = CEnv::new(m.len());
        for (k, v) in env.iter() {
            e.set_dyn(m, k.clone(), v.clone());
        }
        e
    }

    #[inline]
    fn get_slot(&self, s: SlotIx) -> Option<&Istr> {
        self.slots[s as usize].as_ref()
    }

    #[inline]
    fn set_slot(&mut self, s: SlotIx, v: Istr) {
        self.slots[s as usize] = Some(v);
    }

    /// Look up by name (redirection sources resolve their target name
    /// at run time).
    fn get_dyn(&self, m: &SlotMap, name: &str) -> Option<&Istr> {
        match m.by_name.get(name) {
            Some(&s) => self.get_slot(s),
            None => self.extra.get(name),
        }
    }

    /// Bind by name, routing to the slot when the name is statically
    /// known so reads through slots always see it.
    fn set_dyn(&mut self, m: &SlotMap, name: Istr, value: Istr) {
        match m.by_name.get(name.as_str()) {
            Some(&s) => self.slots[s as usize] = Some(value),
            None => {
                self.extra.insert(name, value);
            }
        }
    }

    /// Append by name (the `->>` capture form), mirroring
    /// [`Env::append`].
    fn append_dyn(&mut self, m: &SlotMap, name: &Istr, value: &str) {
        let joined = |v: &Istr| {
            let mut s = String::with_capacity(v.len() + value.len());
            s.push_str(v);
            s.push_str(value);
            Istr::from(s)
        };
        match m.by_name.get(name.as_str()) {
            Some(&s) => {
                let slot = &mut self.slots[s as usize];
                *slot = Some(match slot {
                    Some(v) => joined(v),
                    None => Istr::from(value),
                });
            }
            None => match self.extra.get_mut(name.as_str()) {
                Some(v) => *v = joined(v),
                None => {
                    self.extra.insert(name.clone(), Istr::from(value));
                }
            },
        }
    }

    /// Expand a compiled word into a borrowed `&str`, building into
    /// `scratch` only for the mixed shape — the zero-refcount variant
    /// of [`CEnv::expand`] for consumers that never keep the value
    /// (condition evaluation).
    fn expand_str<'a>(&'a self, w: &'a WordTpl, scratch: &'a mut String) -> &'a str {
        match w {
            WordTpl::Empty => "",
            WordTpl::Lit(s) => s,
            WordTpl::Slot(s) => self.get_slot(*s).map_or("", Istr::as_str),
            WordTpl::Mixed(segs) => {
                scratch.clear();
                for seg in segs {
                    match seg {
                        SegTpl::Lit(l) => scratch.push_str(l),
                        SegTpl::Slot(s) => {
                            if let Some(v) = self.get_slot(*s) {
                                scratch.push_str(v);
                            }
                        }
                    }
                }
                scratch
            }
        }
    }

    /// Expand a compiled word. The same three shapes as
    /// [`Env::expand`], with the hash lookup already compiled away.
    fn expand(&self, w: &WordTpl) -> Istr {
        match w {
            WordTpl::Empty => Istr::empty(),
            WordTpl::Lit(s) => s.clone(),
            WordTpl::Slot(s) => self.get_slot(*s).cloned().unwrap_or_default(),
            WordTpl::Mixed(segs) => {
                let mut out = String::new();
                for seg in segs {
                    match seg {
                        SegTpl::Lit(l) => out.push_str(l),
                        SegTpl::Slot(s) => {
                            if let Some(v) = self.get_slot(*s) {
                                out.push_str(v);
                            }
                        }
                    }
                }
                Istr::from(out)
            }
        }
    }

    fn snapshot_positionals(&self, m: &SlotMap) -> Vec<(Istr, Istr)> {
        let mut out = Vec::new();
        for (i, v) in self.slots.iter().enumerate() {
            if m.positional[i] {
                if let Some(v) = v {
                    out.push((m.names[i].clone(), v.clone()));
                }
            }
        }
        for (k, v) in &self.extra {
            if is_positional_name(k) {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }

    fn clear_positionals(&mut self, m: &SlotMap) {
        for (i, v) in self.slots.iter_mut().enumerate() {
            if m.positional[i] {
                *v = None;
            }
        }
        self.extra.retain(|k, _| !is_positional_name(k));
    }

    /// Copy every binding out into a plain [`Env`] (the root task's
    /// final environment).
    fn materialize(&self, m: &SlotMap) -> Env {
        let mut env = Env::new();
        for (i, v) in self.slots.iter().enumerate() {
            if let Some(v) = v {
                env.set(m.names[i].clone(), v.clone());
            }
        }
        for (k, v) in &self.extra {
            env.set(k.clone(), v.clone());
        }
        env
    }
}

/// Structured control state: only the constructs that genuinely carry
/// run-time state keep frames — sequencing is jump targets.
#[derive(Debug)]
enum CFrame {
    Try {
        session: TrySession,
        attempt_ip: u32,
        catch_ip: u32,
        end_ip: u32,
        in_catch: bool,
    },
    ForAny {
        values: Vec<Istr>,
        idx: usize,
        var: SlotIx,
        body_ip: u32,
        end_ip: u32,
    },
    ForAll {
        children: Vec<TaskId>,
        /// Branch bindings not yet spawned (throttled parallelism).
        pending: Vec<Istr>,
        var: SlotIx,
        branch_ip: u32,
        end_ip: u32,
    },
    Call {
        saved_positionals: Vec<(Istr, Istr)>,
        ret_ip: u32,
    },
}

#[derive(Debug)]
enum CState {
    Ready,
    RunningCmd {
        token: CmdToken,
        program: Istr,
        out_var: Option<(Istr, bool)>,
    },
    Sleeping {
        until: Time,
    },
    WaitingChildren,
}

#[derive(Debug)]
struct CTask {
    frames: Vec<CFrame>,
    env: CEnv,
    /// Instruction pointer into the shared program.
    ip: u32,
    /// The result register: outcome of the last completed statement.
    res: bool,
    state: CState,
    parent: Option<TaskId>,
    /// Number of `Call` frames (function recursion guard).
    call_depth: u32,
}

/// The bytecode interpreter backend. Same driving interface as the
/// tree VM; constructed through the [`crate::Vm`] facade.
pub(crate) struct Cvm {
    prog: Arc<Prog>,
    tasks: Vec<Option<CTask>>,
    token_ctr: CmdToken,
    /// In-flight commands; linear scan beats hashing at realistic
    /// in-flight counts (a handful per VM).
    token_task: Vec<(CmdToken, TaskId)>,
    /// Per-function entry point, bound when its `FuncDef` executes.
    fn_entries: Vec<Option<u32>>,
    rng: StdRng,
    log: EventLog,
    outcome: Option<bool>,
    default_backoff: BackoffPolicy,
    effects: Vec<Effect>,
    now: Time,
    final_env: Env,
    max_parallel: Option<usize>,
    tracer: Option<SharedSink>,
    trace_client: i64,
    spare_argv: Vec<Vec<Istr>>,
    /// Retired `forany` value vectors, reused by the next loop entry
    /// so steady-state iteration never allocates.
    spare_values: Vec<Vec<Istr>>,
    /// Mixed-word expansion buffer: segments build here, then one
    /// exact-sized `Istr` copy leaves — no intermediate `String` per
    /// expansion.
    scratch: String,
}

impl Cvm {
    pub fn with_env_seed(script: &Script, env: Env, seed: u64) -> Cvm {
        let prog = bytecode::compile_cached(script);
        let root = CTask {
            frames: Vec::new(),
            env: CEnv::from_env(&env, &prog.slots),
            ip: 0,
            res: true,
            state: CState::Ready,
            parent: None,
            call_depth: 0,
        };
        let n_funcs = prog.func_names.len();
        Cvm {
            prog,
            tasks: vec![Some(root)],
            token_ctr: 0,
            token_task: Vec::new(),
            fn_entries: vec![None; n_funcs],
            rng: StdRng::seed_from_u64(seed),
            log: EventLog::new(),
            outcome: None,
            default_backoff: BackoffPolicy::ethernet(),
            effects: Vec::new(),
            now: Time::ZERO,
            final_env: Env::new(),
            max_parallel: None,
            tracer: None,
            trace_client: NO_ID,
            spare_argv: Vec::new(),
            spare_values: Vec::new(),
            scratch: String::new(),
        }
    }

    /// Reclaim the value vector of a popped `forany` frame.
    fn recycle_forany(&mut self, frame: Option<CFrame>) {
        if let Some(CFrame::ForAny { values, .. }) = frame {
            if self.spare_values.len() < 8 {
                self.spare_values.push(values);
            }
        }
    }

    pub fn recycle_spec(&mut self, spec: CommandSpec) {
        let mut argv = spec.argv;
        argv.clear();
        if self.spare_argv.len() < 8 {
            self.spare_argv.push(argv);
        }
    }

    pub fn adopt_spares(&mut self, prev: &mut Cvm) {
        if self.spare_argv.is_empty() {
            std::mem::swap(&mut self.spare_argv, &mut prev.spare_argv);
        }
    }

    pub fn set_tracer(&mut self, sink: SharedSink, client: i64) {
        self.tracer = Some(sink);
        self.trace_client = client;
    }

    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    #[inline]
    fn trace(&self, tid: TaskId, ev: TraceEv) {
        simgrid::trace::emit(&self.tracer, self.now, self.trace_client, tid as i64, ev);
    }

    pub fn set_default_backoff(&mut self, p: BackoffPolicy) {
        self.default_backoff = p;
    }

    pub fn default_backoff(&self) -> BackoffPolicy {
        self.default_backoff
    }

    pub fn set_max_parallel(&mut self, n: Option<usize>) {
        self.max_parallel = n.map(|n| n.max(1));
    }

    pub fn log(&self) -> &EventLog {
        &self.log
    }

    pub fn set_log_detail(&mut self, detailed: bool) {
        self.log.set_detailed(detailed);
    }

    pub fn env(&self) -> &Env {
        // The root's environment is materialized when the script
        // finishes; mid-run it is empty (no driver reads it mid-run).
        &self.final_env
    }

    pub fn outcome(&self) -> Option<bool> {
        self.outcome
    }

    pub fn complete(&mut self, token: CmdToken, result: CmdResult) {
        let Some(pos) = self.token_task.iter().position(|&(t, _)| t == token) else {
            return; // cancelled earlier; the race is benign
        };
        let (_, tid) = self.token_task.swap_remove(pos);
        let task = self.tasks[tid].as_mut().expect("token mapped to dead task");
        let (program, out_var) = match &task.state {
            CState::RunningCmd {
                token: t,
                program,
                out_var,
            } => {
                debug_assert_eq!(*t, token, "token/task mismatch");
                (program.clone(), out_var.clone())
            }
            other => panic!("complete() on task not running a command: {other:?}"),
        };
        if let Some((name, append)) = out_var {
            let value = trim_capture(&result.stdout);
            if append {
                task.env.append_dyn(&self.prog.slots, &name, value);
            } else if value.len() == result.stdout.len() {
                task.env
                    .set_dyn(&self.prog.slots, name.clone(), result.stdout.clone());
            } else {
                task.env
                    .set_dyn(&self.prog.slots, name.clone(), Istr::from(value));
            }
            self.log.var_set(self.now, tid, &name);
        }
        if self.tracer.is_some() {
            simgrid::trace::emit(
                &self.tracer,
                self.now,
                self.trace_client,
                tid as i64,
                TraceEv::CmdEnd {
                    program: program.to_string(),
                    ok: result.success,
                },
            );
        }
        self.log.push(
            self.now,
            tid,
            LogKind::CmdEnd {
                program,
                success: result.success,
            },
        );
        // The instruction pointer already sits just past the dispatch
        // op (on its fail-check); the command's outcome lands in the
        // result register.
        task.res = result.success;
        task.state = CState::Ready;
    }

    pub fn tick(&mut self, now: Time) -> Tick {
        let mut effects = Vec::new();
        let status = self.tick_into(now, &mut effects);
        Tick { effects, status }
    }

    pub fn tick_into(&mut self, now: Time, out: &mut Vec<Effect>) -> VmStatus {
        debug_assert!(now >= self.now, "tick time went backwards");
        self.now = now;
        self.effects.clear();

        if self.outcome.is_none() {
            self.fire_deadlines();
            self.wake_sleepers();
            self.step_all();
        }

        let status = match self.outcome {
            Some(success) => VmStatus::Done { success },
            None => VmStatus::Running {
                next_wake: self.next_wake(),
            },
        };
        out.clear();
        std::mem::swap(&mut self.effects, out);
        status
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn fire_deadlines(&mut self) {
        let prog = Arc::clone(&self.prog);
        for tid in 0..self.tasks.len() {
            let Some(task) = &self.tasks[tid] else {
                continue;
            };
            let expired = task.frames.iter().position(|f| match f {
                CFrame::Try {
                    session, in_catch, ..
                } => !in_catch && session.expired(self.now),
                _ => false,
            });
            let Some(i) = expired else { continue };

            let mut task = self.tasks[tid].take().expect("checked live");
            while task.frames.len() > i + 1 {
                let f = task.frames.pop().expect("len checked");
                match f {
                    CFrame::ForAll { children, .. } => {
                        for c in children {
                            self.cancel_subtree(c);
                        }
                    }
                    CFrame::Call {
                        saved_positionals, ..
                    } => {
                        task.call_depth -= 1;
                        task.env.clear_positionals(&prog.slots);
                        for (k, v) in saved_positionals {
                            task.env.set_dyn(&prog.slots, k, v);
                        }
                    }
                    _ => {}
                }
            }
            self.cancel_running_cmd(tid, &mut task);
            self.log.push(self.now, tid, LogKind::TryTimeout);
            self.trace(tid, TraceEv::TryTimeout);
            self.fail_try_frame(tid, &mut task);
            task.state = CState::Ready;
            self.tasks[tid] = Some(task);
        }
    }

    /// The top frame of `task` is a `Try` whose budget is spent: aim
    /// the instruction pointer at its catch handler, or pop it and
    /// leave failure in the result register (the op at `end_ip` is the
    /// fail-check). Does not touch the task state.
    fn fail_try_frame(&mut self, tid: TaskId, task: &mut CTask) {
        let Some(CFrame::Try {
            catch_ip,
            end_ip,
            in_catch,
            ..
        }) = task.frames.last_mut()
        else {
            unreachable!("fail_try_frame: top frame is not a try");
        };
        if *catch_ip != NO_CATCH && !*in_catch {
            *in_catch = true;
            let catch_ip = *catch_ip;
            self.log.push(self.now, tid, LogKind::CatchEntered);
            self.trace(tid, TraceEv::CatchEntered);
            task.ip = catch_ip;
            task.res = true;
        } else {
            let end = *end_ip;
            task.frames.pop();
            task.ip = end;
            task.res = false;
        }
    }

    fn cancel_running_cmd(&mut self, tid: TaskId, task: &mut CTask) {
        if let CState::RunningCmd { token, program, .. } = &task.state {
            self.effects.push(Effect::Cancel { token: *token });
            if let Some(pos) = self.token_task.iter().position(|(t, _)| t == token) {
                self.token_task.swap_remove(pos);
            }
            if self.tracer.is_some() {
                self.trace(
                    tid,
                    TraceEv::CmdKilled {
                        program: program.to_string(),
                    },
                );
            }
            self.log.push(
                self.now,
                tid,
                LogKind::CmdCancelled {
                    program: program.clone(),
                },
            );
        }
    }

    fn cancel_subtree(&mut self, tid: TaskId) {
        let Some(mut task) = self.tasks[tid].take() else {
            return;
        };
        self.cancel_running_cmd(tid, &mut task);
        for f in task.frames.drain(..) {
            if let CFrame::ForAll { children, .. } = f {
                for c in children {
                    self.cancel_subtree(c);
                }
            }
        }
    }

    fn wake_sleepers(&mut self) {
        for task in self.tasks.iter_mut().flatten() {
            if let CState::Sleeping { until } = task.state {
                if until <= self.now {
                    // The instruction pointer was parked on the
                    // admission op when the backoff began.
                    task.state = CState::Ready;
                }
            }
        }
    }

    fn step_all(&mut self) {
        loop {
            let ready = (0..self.tasks.len()).find(|&i| {
                matches!(
                    self.tasks[i].as_ref().map(|t| &t.state),
                    Some(CState::Ready)
                )
            });
            let Some(tid) = ready else { break };
            self.step_task(tid);
            if self.outcome.is_some() {
                break;
            }
        }
    }

    fn step_task(&mut self, tid: TaskId) {
        let mut task = self.tasks[tid].take().expect("stepping a dead task");
        match self.run_task(tid, &mut task) {
            None => {
                self.tasks[tid] = Some(task);
            }
            Some(result) => {
                if let Some(pid) = task.parent {
                    self.child_finished(pid, tid, result);
                } else {
                    self.final_env = task.env.materialize(&self.prog.slots);
                    self.outcome = Some(result);
                    self.log
                        .push(self.now, tid, LogKind::ScriptDone { success: result });
                    self.trace(tid, TraceEv::UnitDone { ok: result });
                }
            }
        }
    }

    /// The dispatch loop: run one task until it blocks or finishes.
    /// Returns `Some(result)` when its code region ends.
    #[allow(clippy::too_many_lines)]
    fn run_task(&mut self, tid: TaskId, task: &mut CTask) -> Option<bool> {
        if !matches!(task.state, CState::Ready) {
            return None;
        }
        let prog = Arc::clone(&self.prog);
        loop {
            match prog.ops[task.ip as usize] {
                Op::Success => {
                    task.res = true;
                    task.ip += 1;
                }
                Op::Failure => {
                    task.res = false;
                    task.ip += 1;
                }
                Op::Jmp(t) => task.ip = t,
                Op::JmpIfFail(t) => {
                    if task.res {
                        task.ip += 1;
                    } else {
                        task.ip = t;
                    }
                }
                Op::Assign { slot, value } => {
                    let w = &prog.words[value as usize];
                    let v = if matches!(w, WordTpl::Mixed(_)) {
                        let s = task.env.expand_str(w, &mut self.scratch);
                        // Re-binding the bytes already in the slot (a
                        // retry loop recomputing the same value) keeps
                        // the existing allocation.
                        match task.env.get_slot(slot) {
                            Some(v) if v.as_str() == s => None,
                            _ => Some(Istr::from(s)),
                        }
                    } else {
                        Some(task.env.expand(w))
                    };
                    if let Some(v) = v {
                        task.env.set_slot(slot, v);
                    }
                    self.log
                        .var_set(self.now, tid, &prog.slots.names[slot as usize]);
                    task.res = true;
                    task.ip += 1;
                }
                Op::EvalCond {
                    cond,
                    on_false,
                    on_err,
                } => {
                    let c = &prog.conds[cond as usize];
                    let (mut sl, mut sr) = (String::new(), String::new());
                    let lhs = task.env.expand_str(&prog.words[c.lhs as usize], &mut sl);
                    let rhs = task.env.expand_str(&prog.words[c.rhs as usize], &mut sr);
                    match eval_cond_values(c.op, lhs, rhs) {
                        Ok(true) => {
                            task.res = true;
                            task.ip += 1;
                        }
                        Ok(false) => {
                            task.res = true;
                            task.ip = on_false;
                        }
                        Err(_) => {
                            task.res = false;
                            task.ip = on_err;
                        }
                    }
                }
                Op::FuncDef { func, entry } => {
                    self.fn_entries[func as usize] = Some(entry);
                    task.res = true;
                    task.ip += 1;
                }
                Op::TryEnter {
                    tri,
                    catch_ip,
                    end_ip,
                } => {
                    let t = &prog.tries[tri as usize];
                    let backoff = match t.every {
                        Some(d) => BackoffPolicy::Constant(d),
                        None => self.default_backoff,
                    };
                    let budget = TryBudget {
                        time_limit: t.time,
                        attempt_limit: t.attempts,
                        backoff,
                    };
                    task.frames.push(CFrame::Try {
                        session: TrySession::start(budget, self.now),
                        attempt_ip: task.ip + 1,
                        catch_ip,
                        end_ip,
                        in_catch: false,
                    });
                    task.ip += 1;
                }
                Op::TryAttempt => {
                    let Some(CFrame::Try { session, .. }) = task.frames.last_mut() else {
                        unreachable!("TryAttempt without a try frame")
                    };
                    if session.begin_attempt(self.now) {
                        let attempt = session.attempts();
                        let budget = session.deadline().map(|d| d.saturating_since(self.now));
                        self.log
                            .push(self.now, tid, LogKind::TryAttempt { attempt });
                        self.trace(tid, TraceEv::AttemptStart { attempt, budget });
                        task.res = true;
                        task.ip += 1;
                    } else {
                        self.log.push(self.now, tid, LogKind::TryExhausted);
                        self.trace(tid, TraceEv::TryExhausted);
                        self.fail_try_frame(tid, task);
                    }
                }
                Op::TryResult => {
                    let res = task.res;
                    let Some(CFrame::Try {
                        session,
                        attempt_ip,
                        end_ip,
                        in_catch,
                        ..
                    }) = task.frames.last_mut()
                    else {
                        unreachable!("TryResult without a try frame")
                    };
                    if *in_catch {
                        let end = *end_ip;
                        task.frames.pop();
                        task.ip = end; // res carries the catch result
                    } else if res {
                        let attempt = session.attempts();
                        let end = *end_ip;
                        task.frames.pop();
                        self.trace(tid, TraceEv::AttemptOk { attempt });
                        task.ip = end;
                    } else {
                        let attempt = session.attempts();
                        let aip = *attempt_ip;
                        match session.on_failure(self.now, &mut self.rng) {
                            NextAttempt::RetryAt(t) => {
                                let delay = t.saturating_since(self.now);
                                self.log.push(self.now, tid, LogKind::Backoff { delay });
                                self.trace(tid, TraceEv::Backoff { attempt, delay });
                                task.state = CState::Sleeping { until: t };
                                task.ip = aip;
                                return None;
                            }
                            NextAttempt::Exhausted => {
                                self.log.push(self.now, tid, LogKind::TryExhausted);
                                self.trace(tid, TraceEv::TryExhausted);
                                self.fail_try_frame(tid, task);
                            }
                        }
                    }
                }
                Op::ForAnyEnter { list, var, end_ip } => {
                    let mut values = self.spare_values.pop().unwrap_or_default();
                    values.clear();
                    values.extend(
                        prog.lists[list as usize]
                            .iter()
                            .map(|&w| task.env.expand(&prog.words[w as usize])),
                    );
                    let value = values[0].clone();
                    self.log.for_any_next(self.now, tid, &value);
                    task.env.set_slot(var, value);
                    task.frames.push(CFrame::ForAny {
                        values,
                        idx: 0,
                        var,
                        body_ip: task.ip + 1,
                        end_ip,
                    });
                    task.res = true;
                    task.ip += 1;
                }
                Op::ForAnyResult => {
                    let res = task.res;
                    let Some(CFrame::ForAny {
                        values,
                        idx,
                        var,
                        body_ip,
                        end_ip,
                    }) = task.frames.last_mut()
                    else {
                        unreachable!("ForAnyResult without a forany frame")
                    };
                    if res {
                        let end = *end_ip;
                        self.recycle_forany(task.frames.pop());
                        task.ip = end;
                    } else {
                        *idx += 1;
                        if *idx >= values.len() {
                            let end = *end_ip;
                            self.recycle_forany(task.frames.pop());
                            task.res = false;
                            task.ip = end;
                        } else {
                            let value = values[*idx].clone();
                            let var = *var;
                            let bip = *body_ip;
                            self.log.for_any_next(self.now, tid, &value);
                            task.env.set_slot(var, value);
                            task.res = true;
                            task.ip = bip;
                        }
                    }
                }
                Op::ForAllEnter { list, var, end_ip } => {
                    let values: Vec<Istr> = prog.lists[list as usize]
                        .iter()
                        .map(|&w| task.env.expand(&prog.words[w as usize]))
                        .collect();
                    self.log.push(
                        self.now,
                        tid,
                        LogKind::ForAllSpawn {
                            branches: values.len(),
                        },
                    );
                    let limit = self.max_parallel.unwrap_or(values.len()).max(1);
                    let branch_ip = task.ip + 1;
                    let (now_vals, later_vals) = if values.len() > limit {
                        let later = values[limit..].to_vec();
                        (values[..limit].to_vec(), later)
                    } else {
                        (values, Vec::new())
                    };
                    let mut children = Vec::with_capacity(now_vals.len());
                    for v in now_vals {
                        children.push(self.spawn_branch(tid, &task.env, var, v, branch_ip));
                    }
                    // Pending branches start in reverse-pop order.
                    let mut pending = later_vals;
                    pending.reverse();
                    task.frames.push(CFrame::ForAll {
                        children,
                        pending,
                        var,
                        branch_ip,
                        end_ip,
                    });
                    task.state = CState::WaitingChildren;
                    task.ip = end_ip; // resumed here by child_finished
                    return None;
                }
                Op::TaskEnd => return Some(task.res),
                Op::Ret => {
                    let Some(CFrame::Call {
                        saved_positionals,
                        ret_ip,
                    }) = task.frames.last_mut()
                    else {
                        unreachable!("Ret without a call frame")
                    };
                    let saved = std::mem::take(saved_positionals);
                    let rip = *ret_ip;
                    task.frames.pop();
                    task.call_depth -= 1;
                    task.env.clear_positionals(&prog.slots);
                    for (k, v) in saved {
                        task.env.set_dyn(&prog.slots, k, v);
                    }
                    task.ip = rip; // res carries the body's result
                }
                Op::Cmd(cix) => {
                    if let ControlFlow::Break(blocked) = self.dispatch_cmd(tid, task, &prog, cix) {
                        return blocked;
                    }
                }
            }
        }
    }

    /// Dispatch one command op: a function call (continue in the
    /// body), an immediate failure (empty name, recursion limit), or
    /// an external command (block). `Continue` keeps the run loop
    /// going; `Break` carries `run_task`'s return value (`None`: the
    /// task blocked on the spawned command).
    fn dispatch_cmd(
        &mut self,
        tid: TaskId,
        task: &mut CTask,
        prog: &Prog,
        cix: u32,
    ) -> ControlFlow<Option<bool>> {
        let cmd: &CmdTpl = &prog.cmds[cix as usize];
        let mut argv = self.spare_argv.pop().unwrap_or_default();
        argv.clear();
        argv.extend(
            cmd.argv
                .iter()
                .map(|&w| task.env.expand(&prog.words[w as usize])),
        );
        if argv.first().map(|s| s.is_empty()).unwrap_or(true) {
            // A command whose name expanded to nothing cannot run.
            // (argv is dropped, not recycled — exactly the tree VM.)
            task.res = false;
            task.ip += 1;
            return ControlFlow::Continue(());
        }

        // Defined functions shadow external commands.
        let entry = match cmd.func {
            FuncRef::None => None,
            FuncRef::Static(id) => self.fn_entries[id as usize],
            FuncRef::Dynamic => prog
                .func_ids
                .get(argv[0].as_str())
                .and_then(|&id| self.fn_entries[id as usize]),
        };
        if let Some(entry) = entry {
            if task.call_depth >= 64 {
                // Runaway recursion is just another untyped failure.
                task.res = false;
                task.ip += 1;
                return ControlFlow::Continue(());
            }
            let saved = task.env.snapshot_positionals(&prog.slots);
            task.env.clear_positionals(&prog.slots);
            task.env
                .set_dyn(&prog.slots, Istr::from("0"), argv[0].clone());
            for (i, a) in argv[1..].iter().enumerate() {
                task.env
                    .set_dyn(&prog.slots, Istr::from((i + 1).to_string()), a.clone());
            }
            task.env.set_dyn(
                &prog.slots,
                Istr::from("*"),
                Istr::from(argv[1..].join(" ")),
            );
            task.frames.push(CFrame::Call {
                saved_positionals: saved,
                ret_ip: task.ip + 1,
            });
            task.call_depth += 1;
            argv.clear();
            if self.spare_argv.len() < 8 {
                self.spare_argv.push(argv);
            }
            task.res = true;
            task.ip = entry;
            return ControlFlow::Continue(());
        }

        let mut input = None;
        let mut output = None;
        let mut both = false;
        let mut out_var = None;
        for r in &cmd.redirs {
            match r {
                RedirTpl::In { var, source } => {
                    let name = task.env.expand(&prog.words[*source as usize]);
                    input = Some(if *var {
                        CmdInput::Data(
                            task.env
                                .get_dyn(&prog.slots, &name)
                                .cloned()
                                .unwrap_or_default(),
                        )
                    } else {
                        CmdInput::File(name)
                    });
                }
                RedirTpl::Out {
                    var,
                    append,
                    both: b,
                    target,
                } => {
                    let name = task.env.expand(&prog.words[*target as usize]);
                    both = *b;
                    if *var {
                        out_var = Some((name.clone(), *append));
                        output = Some(OutSink::Var {
                            name,
                            append: *append,
                        });
                    } else {
                        out_var = None;
                        output = Some(OutSink::File {
                            path: name,
                            append: *append,
                        });
                    }
                }
            }
        }

        let token = self.token_ctr;
        self.token_ctr += 1;
        self.token_task.push((token, tid));
        let spec = CommandSpec {
            argv,
            input,
            output,
            both,
        };
        self.log.cmd_start(self.now, tid, &spec.argv);
        if self.tracer.is_some() {
            self.trace(
                tid,
                TraceEv::CmdStart {
                    program: spec.program().to_string(),
                },
            );
        }
        task.state = CState::RunningCmd {
            token,
            program: spec.argv.first().cloned().unwrap_or_default(),
            out_var,
        };
        task.ip += 1; // resume on the fail-check with res = outcome
        self.effects.push(Effect::Start {
            token,
            task: tid,
            spec,
        });
        ControlFlow::Break(None)
    }

    fn spawn_branch(
        &mut self,
        parent: TaskId,
        parent_env: &CEnv,
        var: SlotIx,
        value: Istr,
        branch_ip: u32,
    ) -> TaskId {
        let mut env = parent_env.clone();
        env.set_slot(var, value);
        let child = CTask {
            frames: Vec::new(),
            env,
            ip: branch_ip,
            res: true,
            state: CState::Ready,
            parent: Some(parent),
            call_depth: 0,
        };
        self.tasks.push(Some(child));
        self.tasks.len() - 1
    }

    fn child_finished(&mut self, pid: TaskId, child: TaskId, res: bool) {
        let Some(mut parent) = self.tasks[pid].take() else {
            return; // parent already cancelled
        };
        let Some(CFrame::ForAll {
            children,
            pending,
            var,
            branch_ip,
            end_ip,
        }) = parent.frames.last_mut()
        else {
            unreachable!("child finished but parent is not in a forall")
        };
        children.retain(|&c| c != child);
        if !res {
            // First failure aborts all outstanding branches; pending
            // ones never start.
            pending.clear();
            let remaining = std::mem::take(children);
            let end = *end_ip;
            parent.frames.pop();
            parent.state = CState::Ready;
            parent.res = false;
            parent.ip = end;
            for c in remaining {
                self.cancel_subtree(c);
            }
        } else if let Some(value) = pending.pop() {
            // A slot freed up: start the next throttled branch.
            let var = *var;
            let bip = *branch_ip;
            let env = parent.env.clone();
            let new_child = self.spawn_branch(pid, &env, var, value, bip);
            if let Some(CFrame::ForAll { children, .. }) = parent.frames.last_mut() {
                children.push(new_child);
            }
        } else if children.is_empty() {
            let end = *end_ip;
            parent.frames.pop();
            parent.state = CState::Ready;
            parent.res = true;
            parent.ip = end;
        }
        self.tasks[pid] = Some(parent);
    }

    fn next_wake(&self) -> Option<Time> {
        let mut wake: Option<Time> = None;
        let mut consider = |t: Time| {
            wake = Some(match wake {
                Some(w) if w <= t => w,
                _ => t,
            });
        };
        for task in self.tasks.iter().flatten() {
            if let CState::Sleeping { until } = task.state {
                consider(until);
            }
            for f in &task.frames {
                if let CFrame::Try {
                    session,
                    in_catch: false,
                    ..
                } = f
                {
                    if let Some(d) = session.deadline() {
                        consider(d);
                    }
                }
            }
        }
        wake
    }
}
