//! A synchronous driver for the VM.
//!
//! [`VmDriver`] runs a [`Vm`] to completion against a closure executor:
//! each command is executed synchronously the moment the VM asks for
//! it. Combined with [`SimClock`] this gives instant, deterministic
//! script execution where backoff delays advance virtual time instead
//! of sleeping — ideal for tests and for reasoning about scripts.
//! Combined with [`WallClock`] the delays really sleep (the `procman`
//! crate provides the full real-process driver with kill escalation;
//! this one is for in-process executors).
//!
//! Note the executor is synchronous, so `forall` branches are started
//! in order and their commands run sequentially; the VM semantics
//! (all-must-succeed, abort-on-first-failure) are preserved.

use crate::vm::{CmdResult, CommandSpec, Effect, Tick, Vm, VmStatus};
use retry::Time;

/// A source of virtual "now" plus the ability to wait until an instant.
pub trait Clock {
    /// The current instant.
    fn now(&self) -> Time;
    /// Block (or pretend to) until `t`.
    fn advance_to(&mut self, t: Time);
}

/// A clock that moves only when asked: `advance_to` jumps straight to
/// the target. Backoffs and deadlines cost nothing in real time.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now: Time,
}

impl SimClock {
    /// A clock at `T+0`.
    pub fn new() -> SimClock {
        SimClock::default()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        self.now
    }
    fn advance_to(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Real time: `now` is the elapsed wall-clock since construction and
/// `advance_to` actually sleeps.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: std::time::Instant,
}

impl WallClock {
    /// Start the epoch now.
    pub fn new() -> WallClock {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }
    fn advance_to(&mut self, t: Time) {
        let now = self.now();
        if t > now {
            std::thread::sleep((t - now).to_std());
        }
    }
}

/// The final state of a driven script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    success: bool,
}

impl RunOutcome {
    /// Did the script as a whole succeed?
    pub fn success(&self) -> bool {
        self.success
    }
}

/// Errors a synchronous drive can hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriveError {
    /// The VM reported it was waiting on a command completion that the
    /// synchronous executor cannot produce — a driver bug.
    Stuck,
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Stuck => write!(f, "vm is waiting on a command that never completes"),
        }
    }
}

impl std::error::Error for DriveError {}

/// Drives a [`Vm`] with a [`Clock`] and a synchronous executor closure.
pub struct VmDriver<C: Clock> {
    vm: Vm,
    clock: C,
}

impl<C: Clock> VmDriver<C> {
    /// Pair a VM with a clock.
    pub fn new(vm: Vm, clock: C) -> VmDriver<C> {
        VmDriver { vm, clock }
    }

    /// Access the VM (e.g. its log) after or during a run.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable access to the VM, e.g. to reseed it between runs.
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Install a structured-trace sink on the underlying VM; every
    /// attempt, backoff, and command boundary is recorded as it
    /// happens. `client` labels this driver's records when several
    /// drivers share one sink.
    pub fn set_tracer(&mut self, sink: simgrid::trace::SharedSink, client: i64) {
        self.vm.set_tracer(sink, client);
    }

    /// The clock.
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Run the script to completion. `exec` is called once per command;
    /// `Ok(stdout)` is success, `Err(())` failure. Panics are not
    /// caught.
    pub fn run_to_completion<F>(&mut self, mut exec: F) -> RunOutcome
    where
        F: FnMut(&CommandSpec) -> Result<String, String>,
    {
        self.try_run(|spec| exec(spec))
            .expect("synchronous executor cannot leave the vm stuck")
    }

    /// Like [`VmDriver::run_to_completion`] but reports driver errors
    /// instead of panicking.
    pub fn try_run<F>(&mut self, mut exec: F) -> Result<RunOutcome, DriveError>
    where
        F: FnMut(&CommandSpec) -> Result<String, String>,
    {
        loop {
            let Tick { effects, status } = self.vm.tick(self.clock.now());
            let mut completed_any = false;
            for eff in effects {
                match eff {
                    Effect::Start { token, spec, .. } => {
                        let result = match exec(&spec) {
                            Ok(out) => CmdResult {
                                success: true,
                                stdout: out.into(),
                            },
                            Err(_) => CmdResult::fail(),
                        };
                        self.vm.complete(token, result);
                        completed_any = true;
                    }
                    Effect::Cancel { .. } => {
                        // Synchronous commands are already finished by
                        // the time a cancel could be issued.
                    }
                }
            }
            if completed_any {
                continue;
            }
            match status {
                VmStatus::Done { success } => return Ok(RunOutcome { success }),
                VmStatus::Running { next_wake: Some(t) } => self.clock.advance_to(t),
                VmStatus::Running { next_wake: None } => return Err(DriveError::Stuck),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn drive(
        src: &str,
        mut exec: impl FnMut(&CommandSpec) -> Result<String, String>,
    ) -> (bool, SimClock) {
        let script = parse(src).unwrap();
        let mut d = VmDriver::new(Vm::with_seed(&script, 1), SimClock::new());
        let out = d.run_to_completion(&mut exec);
        (out.success(), *d.clock())
    }

    #[test]
    fn group_success() {
        let mut ran = Vec::new();
        let (ok, _) = drive("a\nb\nc\n", |spec| {
            ran.push(spec.program().to_string());
            Ok(String::new())
        });
        assert!(ok);
        assert_eq!(ran, ["a", "b", "c"]);
    }

    #[test]
    fn group_fail_fast() {
        let mut ran = Vec::new();
        let (ok, _) = drive("a\nboom\nc\n", |spec| {
            ran.push(spec.program().to_string());
            if spec.program() == "boom" {
                Err("exit 1".into())
            } else {
                Ok(String::new())
            }
        });
        assert!(!ok);
        assert_eq!(ran, ["a", "boom"], "c must not run after boom fails");
    }

    #[test]
    fn try_retries_until_success() {
        let mut failures_left = 3;
        let (ok, clock) = drive("try 10 times\n flaky\nend\n", |_| {
            if failures_left > 0 {
                failures_left -= 1;
                Err("flaky".into())
            } else {
                Ok(String::new())
            }
        });
        assert!(ok);
        // Backoff 1+2+4 seconds minimum (jittered up to 2x each).
        let t = clock.now().as_secs_f64();
        assert!((7.0..14.001).contains(&t), "elapsed {t}");
    }

    #[test]
    fn try_exhausts_attempts() {
        let mut n = 0;
        let (ok, _) = drive("try 4 times\n nope\nend\n", |_| {
            n += 1;
            Err("always".into())
        });
        assert!(!ok);
        assert_eq!(n, 4);
    }

    #[test]
    fn driver_records_trace_through_sink() {
        use simgrid::trace::{RingSink, TraceEv};
        use std::sync::{Arc, Mutex};

        let script = parse("try 3 times\n flaky\nend\n").unwrap();
        let mut d = VmDriver::new(Vm::with_seed(&script, 1), SimClock::new());
        let ring = Arc::new(Mutex::new(RingSink::new(64)));
        d.set_tracer(ring.clone(), 42);
        assert!(d.vm().has_tracer());

        let mut fails = 1;
        let out = d.run_to_completion(|_| {
            if fails > 0 {
                fails -= 1;
                Err("x".into())
            } else {
                Ok(String::new())
            }
        });
        assert!(out.success());

        let recs: Vec<_> = ring.lock().unwrap().records().cloned().collect();
        assert!(recs.iter().all(|r| r.client == 42));
        let tags: Vec<&str> = recs.iter().map(|r| r.ev.tag()).collect();
        assert!(tags.contains(&"attempt-start"));
        assert!(tags.contains(&"backoff"));
        assert!(tags.contains(&"attempt-ok"));
        assert!(tags.contains(&"cmd-start"));
        assert!(tags.contains(&"unit-done"));
        // Two attempts: the first fails (backoff), the second succeeds.
        assert_eq!(
            recs.iter()
                .filter(|r| matches!(r.ev, TraceEv::AttemptStart { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn wall_clock_actually_waits() {
        let script = parse("try for 1 hour every 30 ms\n flaky\nend\n").unwrap();
        let mut fails = 2;
        let mut d = VmDriver::new(Vm::with_seed(&script, 1), WallClock::new());
        let started = std::time::Instant::now();
        let out = d.run_to_completion(|_| {
            if fails > 0 {
                fails -= 1;
                Err("x".into())
            } else {
                Ok(String::new())
            }
        });
        assert!(out.success());
        assert!(started.elapsed() >= std::time::Duration::from_millis(60));
    }
}
