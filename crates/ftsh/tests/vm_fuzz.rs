//! Property-based fuzzing of the VM: random (bounded) scripts driven
//! with random command outcomes and completion orders must terminate,
//! never panic, and keep the token ledger balanced — every started
//! command is either completed or cancelled, exactly once.

use ftsh::ast::{Command, Cond, CondOp, Script, Stmt, TrySpec, Word};
use ftsh::vm::{CmdResult, Effect, Vm, VmStatus};
use proptest::prelude::*;
use retry::{Dur, Time};
use std::collections::HashSet;

fn arb_word() -> impl Strategy<Value = Word> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(Word::lit),
        "[a-z]{1,4}".prop_map(Word::var),
    ]
}

fn arb_cmd() -> impl Strategy<Value = Stmt> {
    ("[a-z]{1,6}", proptest::collection::vec(arb_word(), 0..3)).prop_map(|(p, mut args)| {
        let mut words = vec![Word::lit(p)];
        words.append(&mut args);
        Stmt::Command(Command {
            words,
            redirs: vec![],
        })
    })
}

/// Statements whose `try` budgets are always bounded, so every script
/// terminates under any executor.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            6 => arb_cmd(),
            1 => Just(Stmt::Failure),
            1 => Just(Stmt::Success),
        ]
        .boxed()
    } else {
        let body = || proptest::collection::vec(arb_stmt(depth - 1), 1..3);
        let try_s = (1u32..4, 0u64..20, body(), proptest::option::of(body())).prop_map(
            |(attempts, secs, b, c)| Stmt::Try {
                spec: TrySpec {
                    time: Some(Dur::from_secs(secs + 1)),
                    attempts: Some(attempts),
                    every: None,
                    ..TrySpec::default()
                },
                body: b.into(),
                catch: c.map(Into::into),
            },
        );
        let forany = (
            "[a-z]{1,3}",
            proptest::collection::vec(arb_word(), 1..3),
            body(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAny {
                var,
                values,
                body: body.into(),
            });
        let forall = (
            "[a-z]{1,3}",
            proptest::collection::vec(arb_word(), 1..3),
            body(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAll {
                var,
                values,
                body: body.into(),
            });
        let ifs = (arb_word(), arb_word(), body(), proptest::option::of(body())).prop_map(
            |(l, r, t, e)| Stmt::If {
                cond: Cond {
                    lhs: l,
                    op: CondOp::StrEq,
                    rhs: r,
                },
                then: t.into(),
                els: e.map(Into::into),
            },
        );
        prop_oneof![
            4 => arb_cmd(),
            2 => try_s,
            2 => forany,
            2 => forall,
            1 => ifs,
            1 => Just(Stmt::Failure),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn vm_terminates_and_balances_tokens(
        stmts in proptest::collection::vec(arb_stmt(2), 1..5),
        seed in any::<u64>(),
        outcome_bits in any::<u64>(),
        hold_bits in any::<u64>(),
    ) {
        let script = Script { stmts: stmts.into() };
        let mut vm = Vm::with_seed(&script, seed);
        let mut now = Time::ZERO;
        let mut pending: Vec<u64> = Vec::new();
        let mut started: HashSet<u64> = HashSet::new();
        let mut resolved: HashSet<u64> = HashSet::new();
        let mut flips = outcome_bits;
        let mut holds = hold_bits;
        let mut next_flip = || {
            let b = flips & 1 == 1;
            flips = flips.rotate_right(1) ^ 0x9E37_79B9;
            b
        };
        let mut next_hold = || {
            let b = holds & 1 == 1;
            holds = holds.rotate_right(1) ^ 0x1234_5678;
            b
        };

        let mut ticks = 0u32;
        loop {
            ticks += 1;
            prop_assert!(ticks < 10_000, "vm did not terminate");
            let t = vm.tick(now);
            for e in t.effects {
                match e {
                    Effect::Start { token, .. } => {
                        prop_assert!(started.insert(token), "token reused");
                        pending.push(token);
                    }
                    Effect::Cancel { token } => {
                        prop_assert!(started.contains(&token), "cancel of unknown token");
                        prop_assert!(resolved.insert(token), "token resolved twice");
                        pending.retain(|&p| p != token);
                    }
                }
            }
            match t.status {
                VmStatus::Done { .. } => break,
                VmStatus::Running { next_wake } => {
                    // Resolve some pending commands (random subset,
                    // random results); if we hold everything and there
                    // is no wake, we must resolve at least one to make
                    // progress.
                    let mut completed_any = false;
                    let mut keep = Vec::new();
                    for token in pending.drain(..) {
                        if next_hold() && (next_wake.is_some() || completed_any || !keep.is_empty())
                        {
                            keep.push(token);
                            continue;
                        }
                        let ok = next_flip();
                        prop_assert!(resolved.insert(token), "token resolved twice");
                        vm.complete(
                            token,
                            if ok {
                                CmdResult::ok("out\n")
                            } else {
                                CmdResult::fail()
                            },
                        );
                        completed_any = true;
                    }
                    pending = keep;
                    if !completed_any {
                        match next_wake {
                            Some(w) => now = w.max(now),
                            None => {
                                // Nothing pending and no wake would be a
                                // stuck VM: must not happen while Running.
                                prop_assert!(
                                    !pending.is_empty(),
                                    "running with no pending work and no wake"
                                );
                                // Forced: complete one.
                                let token = pending.remove(0);
                                prop_assert!(resolved.insert(token), "token resolved twice");
                                vm.complete(token, CmdResult::fail());
                            }
                        }
                    }
                }
            }
        }

        // Ledger: everything started was completed or cancelled; no
        // duplicates (asserted inline); terminal state is stable.
        for token in &pending {
            // Commands still pending at Done can only exist if they
            // were cancelled — and cancels remove from pending.
            prop_assert!(resolved.contains(token), "dangling token {token}");
        }
        let outcome = vm.outcome();
        prop_assert!(outcome.is_some());
        // Ticking after completion stays Done with the same outcome.
        let again = vm.tick(now);
        let stable = matches!(again.status, VmStatus::Done { success } if Some(success) == outcome);
        prop_assert!(stable);
        prop_assert!(again.effects.is_empty());
    }
}
