//! Robustness properties of the lexer and parser: arbitrary input must
//! never panic, and diagnostics must carry plausible line numbers.

use ftsh::{parse, ParseError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Parsing arbitrary text never panics; it either produces a
    /// script or a diagnostic.
    #[test]
    fn parse_never_panics(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Parsing arbitrary *shell-flavoured* text never panics either
    /// (denser in the interesting bytes: quotes, $, redirects,
    /// keywords).
    #[test]
    fn parse_never_panics_shelly(
        src in proptest::collection::vec(
            prop_oneof![
                Just("try".to_string()),
                Just("end".to_string()),
                Just("forany".to_string()),
                Just("forall".to_string()),
                Just("if".to_string()),
                Just("catch".to_string()),
                Just("for".to_string()),
                Just("times".to_string()),
                Just("5".to_string()),
                Just("minutes".to_string()),
                Just("in".to_string()),
                Just("\n".to_string()),
                Just("->".to_string()),
                Just("->&".to_string()),
                Just("-<".to_string()),
                Just(">".to_string()),
                Just("<".to_string()),
                Just("${x}".to_string()),
                Just("$".to_string()),
                Just("\"".to_string()),
                Just("'".to_string()),
                Just("#c".to_string()),
                Just("\\".to_string()),
                Just("a=b".to_string()),
                Just(".lt.".to_string()),
                Just("cmd".to_string()),
            ],
            0..40,
        )
    ) {
        let text = src.join(" ");
        let _ = parse(&text);
    }

    /// Error line numbers stay within the script.
    #[test]
    fn error_lines_in_range(src in "[a-z \\n${}\"']{0,120}") {
        if let Err(ParseError { line, .. }) = parse(&src) {
            let n_lines = src.split('\n').count() as u32;
            prop_assert!(line >= 1 && line <= n_lines + 1, "line {line} of {n_lines}");
        }
    }

    /// A parsed script re-parses from its pretty form (the workspace
    /// property tests generate ASTs; this one starts from *source* that
    /// happened to parse).
    #[test]
    fn accepted_source_roundtrips(
        cmds in proptest::collection::vec("[a-z][a-z0-9]{0,6}( [a-z0-9./:-]{1,8}){0,3}", 1..6)
    ) {
        let src = cmds.join("\n") + "\n";
        if let Ok(a) = parse(&src) {
            let b = parse(&ftsh::pretty(&a)).expect("pretty output parses");
            prop_assert_eq!(a, b);
        }
    }
}
