//! Differential property test for the compiled backend: random
//! (bounded) scripts are pretty-printed, reparsed, compiled, and then
//! driven in lockstep on the tree-walking VM and the bytecode VM with
//! a scripted command oracle. At every tick the two backends must
//! produce the *identical* effect stream — same tokens, same argv,
//! same redirections, same cancels, same status and wake time — and at
//! the end the same outcome and the same final environment. This is
//! the mechanical form of DESIGN.md §12's equivalence argument.

use ftsh::ast::{Command, Cond, CondOp, Redir, RedirTarget, Script, Stmt, TrySpec, Word};
use ftsh::vm::{CmdResult, Effect, Vm, VmKind, VmStatus};
use ftsh::{parse, pretty, Env};
use proptest::prelude::*;
use retry::{Dur, Time};
use std::collections::BTreeMap;

/// Words that would change meaning under print → reparse when they
/// land in command or variable position.
const KEYWORDS: &[&str] = &[
    "try", "end", "catch", "forany", "forall", "if", "else", "in", "function", "failure",
    "success", "every", "times", "for", "or",
];

fn ident(regex: &'static str) -> impl Strategy<Value = String> {
    regex.prop_filter("keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn arb_word() -> impl Strategy<Value = Word> {
    prop_oneof![
        ident("[a-z]{1,6}").prop_map(Word::lit),
        ident("[a-z]{1,4}").prop_map(Word::var),
    ]
}

/// A command with an optional `->`/`->>`/`->&` variable capture, so
/// redirection lowering and the I/O transaction paths get exercised.
fn arb_cmd() -> impl Strategy<Value = Stmt> {
    (
        ident("[a-z]{1,6}"),
        proptest::collection::vec(arb_word(), 0..3),
        proptest::option::of((ident("[a-z]{1,4}"), any::<bool>(), any::<bool>())),
    )
        .prop_map(|(p, mut args, capture)| {
            let mut words = vec![Word::lit(p)];
            words.append(&mut args);
            let redirs = capture
                .map(|(var, append, both)| {
                    vec![Redir::Out {
                        to: RedirTarget::Variable,
                        append,
                        both,
                        target: Word::lit(var),
                    }]
                })
                .unwrap_or_default();
            Stmt::Command(Command { words, redirs })
        })
}

fn arb_assign() -> impl Strategy<Value = Stmt> {
    (ident("[a-z]{1,4}"), arb_word()).prop_map(|(var, value)| Stmt::Assign { var, value })
}

/// Statements whose `try` budgets are always bounded, so every script
/// terminates under any executor (mirrors `vm_fuzz`).
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            5 => arb_cmd(),
            2 => arb_assign(),
            1 => Just(Stmt::Failure),
            1 => Just(Stmt::Success),
        ]
        .boxed()
    } else {
        let body = || proptest::collection::vec(arb_stmt(depth - 1), 0..3);
        let try_s = (1u32..4, 0u64..20, body(), proptest::option::of(body())).prop_map(
            |(attempts, secs, b, c)| Stmt::Try {
                spec: TrySpec {
                    time: Some(Dur::from_secs(secs + 1)),
                    attempts: Some(attempts),
                    every: None,
                    ..TrySpec::default()
                },
                body: b.into(),
                catch: c.map(Into::into),
            },
        );
        let forany = (
            ident("[a-z]{1,3}"),
            proptest::collection::vec(arb_word(), 1..3),
            body(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAny {
                var,
                values,
                body: body.into(),
            });
        let forall = (
            ident("[a-z]{1,3}"),
            proptest::collection::vec(arb_word(), 1..3),
            body(),
        )
            .prop_map(|(var, values, body)| Stmt::ForAll {
                var,
                values,
                body: body.into(),
            });
        let ifs = (arb_word(), arb_word(), body(), proptest::option::of(body())).prop_map(
            |(l, r, t, e)| Stmt::If {
                cond: Cond {
                    lhs: l,
                    op: CondOp::StrEq,
                    rhs: r,
                },
                then: t.into(),
                els: e.map(Into::into),
            },
        );
        prop_oneof![
            4 => arb_cmd(),
            2 => arb_assign(),
            2 => try_s,
            2 => forany,
            2 => forall,
            1 => ifs,
            1 => Just(Stmt::Failure),
        ]
        .boxed()
    }
}

fn final_bindings(env: &Env) -> BTreeMap<String, String> {
    env.iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bytecode_effect_stream_matches_tree_walker(
        stmts in proptest::collection::vec(arb_stmt(2), 1..5),
        seed in any::<u64>(),
        outcome_bits in any::<u64>(),
        order_bits in any::<u64>(),
    ) {
        let script = Script { stmts: stmts.into() };
        // Print → reparse first: the corpus on disk reaches the
        // compiler through the parser, so the property must too.
        let text = pretty(&script);
        let reparsed = match parse(&text) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("pretty output must reparse: {e}\n{text}"))),
        };

        let mut tree = Vm::with_kind(VmKind::Tree, &reparsed, Env::new(), seed);
        let mut byte = Vm::with_kind(VmKind::Bytecode, &reparsed, Env::new(), seed);

        let mut flips = outcome_bits;
        let mut next_flip = || {
            let b = flips & 1 == 1;
            flips = flips.rotate_right(1) ^ 0x9E37_79B9;
            b
        };
        let mut order = order_bits;
        let mut next_ix = |len: usize| {
            let ix = (order as usize) % len;
            order = order.rotate_right(7) ^ 0x1234_5678;
            ix
        };

        let mut now = Time::ZERO;
        let mut pending: Vec<u64> = Vec::new();
        let mut done = false;
        for _ in 0..10_000u32 {
            let t = tree.tick(now);
            let b = byte.tick(now);
            prop_assert_eq!(
                &t.effects, &b.effects,
                "effect streams diverge at {:?}\n{}", now, &text
            );
            prop_assert_eq!(t.status, b.status, "status diverges at {:?}\n{}", now, &text);
            for e in t.effects {
                match e {
                    Effect::Start { token, .. } => pending.push(token),
                    Effect::Cancel { token } => pending.retain(|&p| p != token),
                }
            }
            match t.status {
                VmStatus::Done { success } => {
                    prop_assert_eq!(tree.outcome(), byte.outcome());
                    prop_assert_eq!(tree.outcome(), Some(success));
                    prop_assert_eq!(
                        final_bindings(tree.env()), final_bindings(byte.env()),
                        "final environments diverge\n{}", &text
                    );
                    done = true;
                    break;
                }
                VmStatus::Running { next_wake } => {
                    if pending.is_empty() {
                        let w = next_wake.expect("running with nothing to wait on");
                        now = now.max(w);
                    } else {
                        // Complete one pending command — same token,
                        // same result, on both backends, in an order
                        // scripted by the oracle bits.
                        let token = pending.remove(next_ix(pending.len()));
                        let result = if next_flip() {
                            CmdResult::ok("out\n")
                        } else {
                            CmdResult::fail()
                        };
                        tree.complete(token, result.clone());
                        byte.complete(token, result);
                    }
                }
            }
        }
        prop_assert!(done, "vm did not terminate\n{}", &text);
    }
}
