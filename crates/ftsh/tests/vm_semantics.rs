//! Semantics tests for the ftsh VM, driven manually through the
//! tick/complete interface so asynchrony, cancellation, and virtual
//! time are fully controlled.

use ftsh::vm::{CmdResult, CommandSpec, Effect, Tick, Vm, VmStatus};
use ftsh::{parse, LogKind};
use retry::{BackoffPolicy, Dur, Time};

/// A manual test driver: collects started commands so the test decides
/// when and how each completes.
struct Harness {
    vm: Vm,
    now: Time,
    pending: Vec<(u64, CommandSpec)>,
    cancelled: Vec<u64>,
}

impl Harness {
    fn new(src: &str) -> Harness {
        let script = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut vm = Vm::with_seed(&script, 99);
        // Deterministic delays for exact assertions.
        vm.set_default_backoff(BackoffPolicy::ethernet().without_jitter());
        Harness {
            vm,
            now: Time::ZERO,
            pending: Vec::new(),
            cancelled: Vec::new(),
        }
    }

    fn tick(&mut self) -> VmStatus {
        let Tick { effects, status } = self.vm.tick(self.now);
        for e in effects {
            match e {
                Effect::Start { token, spec, .. } => self.pending.push((token, spec)),
                Effect::Cancel { token } => {
                    self.pending.retain(|(t, _)| *t != token);
                    self.cancelled.push(token);
                }
            }
        }
        status
    }

    fn advance_to(&mut self, t: Time) {
        assert!(t >= self.now);
        self.now = t;
    }

    /// Complete the pending command whose program matches, with the
    /// given result.
    fn finish(&mut self, program: &str, result: CmdResult) {
        let idx = self
            .pending
            .iter()
            .position(|(_, s)| s.program() == program)
            .unwrap_or_else(|| panic!("no pending command '{program}': {:?}", self.pending));
        let (token, _) = self.pending.remove(idx);
        self.vm.complete(token, result);
    }

    fn pending_programs(&self) -> Vec<&str> {
        self.pending.iter().map(|(_, s)| s.program()).collect()
    }

    /// Run to completion, completing every started command immediately
    /// via `f`, advancing virtual time through wakes.
    fn run(&mut self, mut f: impl FnMut(&CommandSpec) -> CmdResult) -> bool {
        loop {
            let status = self.tick();
            if !self.pending.is_empty() {
                for (token, spec) in std::mem::take(&mut self.pending) {
                    self.vm.complete(token, f(&spec));
                }
                continue;
            }
            match status {
                VmStatus::Done { success } => return success,
                VmStatus::Running { next_wake: Some(t) } => self.advance_to(t),
                VmStatus::Running { next_wake: None } => panic!("vm stuck"),
            }
        }
    }
}

#[test]
fn forany_takes_first_success_and_binds_var() {
    let mut h = Harness::new(
        "forany server in xxx yyy zzz\n\
           wget http://${server}/file\n\
         end\n\
         echo ${server}\n",
    );
    let mut echoed = String::new();
    let ok = h.run(|spec| {
        if spec.program() == "wget" {
            // Only yyy works.
            if spec.argv[1].contains("yyy") {
                CmdResult::ok("")
            } else {
                CmdResult::fail()
            }
        } else {
            echoed = spec.argv[1].to_string();
            CmdResult::ok("")
        }
    });
    assert!(ok);
    assert_eq!(echoed, "yyy", "loop variable keeps the winning value");
}

#[test]
fn forany_fails_when_all_alternatives_fail() {
    let mut h = Harness::new("forany s in a b c\n get ${s}\nend\n");
    let mut tried = Vec::new();
    let ok = h.run(|spec| {
        tried.push(spec.argv[1].to_string());
        CmdResult::fail()
    });
    assert!(!ok);
    assert_eq!(tried, ["a", "b", "c"]);
}

#[test]
fn forall_runs_all_branches_concurrently() {
    let mut h = Harness::new("forall f in a b c\n wget ${f}\nend\n");
    let status = h.tick();
    // All three branches start before any completes.
    assert_eq!(h.pending.len(), 3);
    assert!(matches!(status, VmStatus::Running { .. }));
    for (token, _) in std::mem::take(&mut h.pending) {
        h.vm.complete(token, CmdResult::ok(""));
    }
    assert!(matches!(h.tick(), VmStatus::Done { success: true }));
}

#[test]
fn forall_failure_cancels_outstanding_branches() {
    let mut h = Harness::new("forall f in a b c\n wget ${f}\nend\n");
    h.tick();
    assert_eq!(h.pending.len(), 3);
    // Fail branch b while a and c are still in flight.
    h.finish("wget", CmdResult::fail()); // first pending (branch a order) — fail it
    let status = h.tick();
    assert!(
        matches!(status, VmStatus::Done { success: false }),
        "forall fails as soon as one branch fails: {status:?}"
    );
    assert_eq!(h.cancelled.len(), 2, "two outstanding branches cancelled");
}

#[test]
fn forall_branch_envs_are_isolated() {
    let mut h = Harness::new(
        "x=outer\n\
         forall v in a b\n\
           probe ${v} -> x\n\
         end\n\
         echo ${x}\n",
    );
    let mut echoed = String::new();
    let ok = h.run(|spec| match spec.program() {
        "probe" => CmdResult::ok("branch-value\n"),
        _ => {
            echoed = spec.argv[1].to_string();
            CmdResult::ok("")
        }
    });
    assert!(ok);
    assert_eq!(echoed, "outer", "branch capture must not leak to parent");
}

#[test]
fn try_deadline_cancels_inflight_command() {
    let mut h = Harness::new("try for 10 seconds\n slow\nend\n");
    let status = h.tick();
    assert_eq!(h.pending_programs(), ["slow"]);
    // The VM tells us the deadline.
    let VmStatus::Running { next_wake: Some(w) } = status else {
        panic!("expected running with wake: {status:?}");
    };
    assert_eq!(w, Time::from_secs(10));
    // The command never finishes; at the deadline the try kills it.
    h.advance_to(w);
    let status = h.tick();
    assert_eq!(h.cancelled.len(), 1);
    assert!(matches!(status, VmStatus::Done { success: false }));
    // Log records the forcible termination.
    let kinds: Vec<_> = h.vm.log().events().iter().map(|e| &e.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, LogKind::TryTimeout)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, LogKind::CmdCancelled { .. })));
}

#[test]
fn outer_deadline_dominates_inner_retries() {
    // Inner try would retry for 5 minutes, but the outer 3-second limit
    // kills the whole tree.
    let mut h = Harness::new(
        "try for 3 seconds\n\
           try for 5 minutes\n\
             flaky\n\
           end\n\
         end\n",
    );
    let mut attempts = 0;
    loop {
        let status = h.tick();
        if !h.pending.is_empty() {
            attempts += 1;
            h.finish("flaky", CmdResult::fail());
            continue;
        }
        match status {
            VmStatus::Done { success } => {
                assert!(!success);
                break;
            }
            VmStatus::Running { next_wake: Some(t) } => h.advance_to(t),
            VmStatus::Running { next_wake: None } => panic!("stuck"),
        }
    }
    assert!(h.now <= Time::from_secs(3));
    // Backoff 1s then 2s → wake at t=3 is past the outer deadline, so
    // only two attempts fit.
    assert_eq!(attempts, 2, "1s+2s backoff leaves room for 2 attempts");
}

#[test]
fn catch_runs_on_exhaustion_and_swallow_semantics() {
    // catch without failure swallows the error: the try succeeds.
    let mut h = Harness::new(
        "try 2 times\n\
           nope\n\
         catch\n\
           cleanup\n\
         end\n",
    );
    let mut cleanup_ran = false;
    let ok = h.run(|spec| match spec.program() {
        "nope" => CmdResult::fail(),
        "cleanup" => {
            cleanup_ran = true;
            CmdResult::ok("")
        }
        _ => unreachable!(),
    });
    assert!(ok, "catch that succeeds swallows the failure");
    assert!(cleanup_ran);
}

#[test]
fn catch_with_failure_rethrows() {
    let mut h = Harness::new(
        "try 2 times\n\
           nope\n\
         catch\n\
           cleanup\n\
           failure\n\
         end\n",
    );
    let ok = h.run(|spec| {
        if spec.program() == "nope" {
            CmdResult::fail()
        } else {
            CmdResult::ok("")
        }
    });
    assert!(!ok, "failure in catch propagates");
}

#[test]
fn capture_to_variable_trims_trailing_newline() {
    let mut h = Harness::new(
        "cut -f2 /proc/sys/fs/file-nr -> n\n\
         if ${n} .lt. 1000\n\
           failure\n\
         else\n\
           submit\n\
         end\n",
    );
    let mut submitted = false;
    let ok = h.run(|spec| match spec.program() {
        "cut" => CmdResult::ok("2048\n"),
        "submit" => {
            submitted = true;
            CmdResult::ok("")
        }
        _ => unreachable!(),
    });
    assert!(ok);
    assert!(submitted, "2048 >= 1000 so the submit branch runs");
}

#[test]
fn carrier_sense_defers_when_fds_low() {
    let mut h = Harness::new(
        "try 2 times\n\
           cut -f2 /proc/sys/fs/file-nr -> n\n\
           if ${n} .lt. 1000\n\
             failure\n\
           else\n\
             submit\n\
           end\n\
         end\n",
    );
    let mut submits = 0;
    let ok = h.run(|spec| match spec.program() {
        "cut" => CmdResult::ok("900\n"), // always below threshold
        "submit" => {
            submits += 1;
            CmdResult::ok("")
        }
        _ => unreachable!(),
    });
    assert!(!ok, "carrier never clear -> try exhausts");
    assert_eq!(submits, 0, "submit never reached");
}

#[test]
fn append_capture_accumulates() {
    let mut h = Harness::new("a ->> log\nb ->> log\necho ${log}\n");
    let mut echoed = String::new();
    let ok = h.run(|spec| match spec.program() {
        "a" => CmdResult::ok("one\n"),
        "b" => CmdResult::ok("two\n"),
        _ => {
            echoed = spec.argv[1].to_string();
            CmdResult::ok("")
        }
    });
    assert!(ok);
    assert_eq!(echoed, "onetwo");
}

#[test]
fn stdin_from_variable() {
    let mut h = Harness::new("x=hello\ncat -< x\n");
    let mut stdin_seen = None;
    let ok = h.run(|spec| {
        if spec.program() == "cat" {
            stdin_seen = spec.input.clone();
        }
        CmdResult::ok("")
    });
    assert!(ok);
    assert_eq!(stdin_seen, Some(ftsh::CmdInput::Data("hello".into())));
}

#[test]
fn redirect_to_file_goes_to_executor() {
    let mut h = Harness::new("run >& tmp\n");
    let mut sink = None;
    let ok = h.run(|spec| {
        sink = spec.output.clone();
        assert!(spec.both);
        CmdResult::ok("")
    });
    assert!(ok);
    assert_eq!(
        sink,
        Some(ftsh::OutSink::File {
            path: "tmp".into(),
            append: false
        })
    );
}

#[test]
fn every_interval_overrides_backoff() {
    let mut h = Harness::new("try for 1 minutes every 5 seconds\n flaky\nend\n");
    let mut remaining_failures = 3;
    let ok = h.run(|_| {
        if remaining_failures > 0 {
            remaining_failures -= 1;
            CmdResult::fail()
        } else {
            CmdResult::ok("")
        }
    });
    assert!(ok);
    // Verify the constant 5s cadence from the backoff log entries.
    let logged: Vec<Dur> =
        h.vm.log()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                LogKind::Backoff { delay } => Some(delay),
                _ => None,
            })
            .collect();
    assert_eq!(logged, vec![Dur::from_secs(5); 3]);
}

#[test]
fn zero_attempt_try_fails_without_running() {
    let mut h = Harness::new("try 0 times\n never\nend\n");
    let mut ran = false;
    let ok = h.run(|_| {
        ran = true;
        CmdResult::ok("")
    });
    assert!(!ok);
    assert!(!ran);
}

#[test]
fn empty_command_name_fails() {
    let mut h = Harness::new("${unset_var} arg\n");
    let ok = h.run(|_| panic!("nothing should run"));
    assert!(!ok);
}

#[test]
fn assignment_expands_at_assignment_time() {
    let mut h = Harness::new("a=1\nb=${a}2\na=9\necho ${b}\n");
    let mut echoed = String::new();
    let ok = h.run(|spec| {
        echoed = spec.argv[1].to_string();
        CmdResult::ok("")
    });
    assert!(ok);
    assert_eq!(echoed, "12");
}

#[test]
fn seeded_vm_is_deterministic() {
    let run = |seed: u64| {
        let script = parse("try 6 times\n x\nend\n").unwrap();
        let mut vm = Vm::with_seed(&script, seed);
        let mut now = Time::ZERO;
        let mut wakes = Vec::new();
        loop {
            let t = vm.tick(now);
            let mut completed = false;
            for e in t.effects {
                if let Effect::Start { token, .. } = e {
                    vm.complete(token, CmdResult::fail());
                    completed = true;
                }
            }
            if completed {
                continue;
            }
            match t.status {
                VmStatus::Done { .. } => break,
                VmStatus::Running { next_wake: Some(w) } => {
                    wakes.push(w);
                    now = w;
                }
                VmStatus::Running { next_wake: None } => panic!("stuck"),
            }
        }
        wakes
    };
    assert_eq!(run(5), run(5), "same seed, same jitter");
    assert_ne!(run(5), run(6), "different seed, different jitter");
}

#[test]
fn nested_forany_try_from_paper_black_hole_idiom() {
    // The Ethernet file reader: probe a flag with a tight limit before
    // the big transfer.
    let src = "try for 900 seconds\n\
                 forany host in xxx yyy zzz\n\
                   try for 5 seconds\n\
                     wget http://${host}/flag\n\
                   end\n\
                   try for 60 seconds\n\
                     wget http://${host}/data\n\
                   end\n\
                 end\n\
               end\n";
    let mut h = Harness::new(src);
    // xxx is a black hole for the flag: its probe fails. yyy works.
    let mut transfers = Vec::new();
    let ok = h.run(|spec| {
        let url = &spec.argv[1];
        transfers.push(url.clone());
        if url.contains("xxx") {
            CmdResult::fail()
        } else {
            CmdResult::ok("")
        }
    });
    assert!(ok);
    // Never attempted the xxx data transfer: the probe shielded it.
    assert!(!transfers.iter().any(|u| u.contains("xxx/data")));
    assert!(transfers.iter().any(|u| u.contains("yyy/data")));
}

#[test]
fn log_summary_counts_attempts_and_backoffs() {
    let mut h = Harness::new("try 3 times\n x\nend\n");
    let ok = h.run(|_| CmdResult::fail());
    assert!(!ok);
    let s = h.vm.log().summary();
    assert_eq!(s.attempts, 3);
    assert_eq!(s.commands_started, 3);
    assert_eq!(s.commands_failed, 3);
    assert_eq!(s.backoffs, 2, "no backoff after the final failure");
    assert_eq!(s.exhausted_tries, 1);
}

#[test]
fn tick_after_done_is_stable() {
    let mut h = Harness::new("x\n");
    let ok = h.run(|_| CmdResult::ok(""));
    assert!(ok);
    assert!(matches!(h.tick(), VmStatus::Done { success: true }));
    assert_eq!(h.vm.outcome(), Some(true));
}

#[test]
fn stale_completion_after_cancel_is_ignored() {
    let mut h = Harness::new("try for 1 seconds\n slow\nend\n");
    h.tick();
    let (token, _) = h.pending[0].clone();
    h.advance_to(Time::from_secs(1));
    let st = h.tick();
    assert!(matches!(st, VmStatus::Done { success: false }));
    // The real process raced to completion after the kill: ignored.
    h.vm.complete(token, CmdResult::ok("late"));
    assert_eq!(h.vm.outcome(), Some(false));
}

#[test]
fn forall_throttling_limits_concurrency() {
    let script = parse("forall f in a b c d e\n wget ${f}\nend\n").unwrap();
    let mut vm = Vm::with_seed(&script, 1);
    vm.set_max_parallel(Some(2));
    let mut now = Time::ZERO;
    let mut max_seen = 0usize;
    let mut inflight: Vec<u64> = Vec::new();
    let mut started = 0;
    loop {
        let t = vm.tick(now);
        for e in t.effects {
            if let Effect::Start { token, .. } = e {
                inflight.push(token);
                started += 1;
            }
        }
        max_seen = max_seen.max(inflight.len());
        if let VmStatus::Done { success } = t.status {
            assert!(success);
            break;
        }
        // Finish one command at a time so slots free one by one.
        let token = inflight.remove(0);
        now += Dur::from_secs(1);
        vm.complete(token, CmdResult::ok(""));
    }
    assert_eq!(started, 5, "all branches eventually run");
    assert!(max_seen <= 2, "concurrency capped at 2, saw {max_seen}");
}

#[test]
fn forall_throttling_failure_skips_pending() {
    let script = parse("forall f in a b c d e\n wget ${f}\nend\n").unwrap();
    let mut vm = Vm::with_seed(&script, 1);
    vm.set_max_parallel(Some(1));
    let mut now = Time::ZERO;
    let mut started = 0;
    loop {
        let t = vm.tick(now);
        let mut tok = None;
        for e in t.effects {
            if let Effect::Start { token, .. } = e {
                tok = Some(token);
                started += 1;
            }
        }
        if let VmStatus::Done { success } = t.status {
            assert!(!success);
            break;
        }
        let token = tok.expect("serial: exactly one at a time");
        now += Dur::from_secs(1);
        // Second branch fails: remaining three must never start.
        let result = if started == 2 {
            CmdResult::fail()
        } else {
            CmdResult::ok("")
        };
        vm.complete(token, result);
    }
    assert_eq!(started, 2, "pending branches skipped after failure");
}

#[test]
fn unthrottled_forall_spawns_everything_at_once() {
    let script = parse("forall f in a b c d e\n wget ${f}\nend\n").unwrap();
    let mut vm = Vm::with_seed(&script, 1);
    let t = vm.tick(Time::ZERO);
    let starts = t
        .effects
        .iter()
        .filter(|e| matches!(e, Effect::Start { .. }))
        .count();
    assert_eq!(starts, 5);
}

#[test]
fn function_definition_and_call() {
    let mut h = Harness::new(
        "function fetch\n\
           wget http://${1}/${2}\n\
         end\n\
         fetch yyy data\n",
    );
    let mut url = String::new();
    let ok = h.run(|spec| {
        url = spec.argv[1].to_string();
        CmdResult::ok("")
    });
    assert!(ok);
    assert_eq!(url, "http://yyy/data", "positional parameters expand");
}

#[test]
fn function_positionals_restored_after_call() {
    let mut h = Harness::new(
        "function inner\n\
           probe ${1}\n\
         end\n\
         function outer\n\
           inner nested\n\
           probe ${1}\n\
         end\n\
         outer original\n",
    );
    let mut seen = Vec::new();
    let ok = h.run(|spec| {
        seen.push(spec.argv[1].to_string());
        CmdResult::ok("")
    });
    assert!(ok);
    assert_eq!(
        seen,
        ["nested", "original"],
        "caller's ${{1}} restored after the inner call returns"
    );
}

#[test]
fn function_star_and_zero() {
    let mut h = Harness::new(
        "function show\n\
           probe ${0} ${*}\n\
         end\n\
         show a b c\n",
    );
    let mut args = Vec::new();
    let ok = h.run(|spec| {
        args = spec.argv.clone();
        CmdResult::ok("")
    });
    assert!(ok);
    // ftsh words are atomic: ${*} expands to one word, no resplitting.
    assert_eq!(args, ["probe", "show", "a b c"]);
}

#[test]
fn function_failure_propagates_and_is_catchable() {
    let mut h = Harness::new(
        "function flaky\n\
           failure\n\
         end\n\
         try 3 times\n\
           flaky\n\
         catch\n\
           success\n\
         end\n",
    );
    let ok = h.run(|_| unreachable!("no external command runs"));
    assert!(ok, "the function's failures retried, then caught");
    assert_eq!(h.vm.log().summary().attempts, 3);
}

#[test]
fn function_recursion_is_bounded() {
    let mut h = Harness::new(
        "function forever\n\
           forever\n\
         end\n\
         forever\n",
    );
    let ok = h.run(|_| unreachable!());
    assert!(!ok, "runaway recursion fails instead of overflowing");
}

#[test]
fn undefined_name_still_runs_external_command() {
    let mut h = Harness::new("function f\n success\nend\nwget u\n");
    let mut ran = false;
    let ok = h.run(|spec| {
        ran = spec.program() == "wget";
        CmdResult::ok("")
    });
    assert!(ok);
    assert!(ran, "non-function names dispatch externally");
}

#[test]
fn deadline_kill_restores_caller_positionals() {
    // A try deadline that aborts a function call mid-flight must not
    // leak the callee's ${1} into the caller.
    let mut h = Harness::new(
        "function slowfn\n\
           hang\n\
         end\n\
         function outer\n\
           try for 1 seconds or 1 times\n\
             slowfn nested\n\
           catch\n\
             success\n\
           end\n\
           probe ${1}\n\
         end\n\
         outer original\n",
    );
    // Drive manually: the hang never completes; the deadline fires.
    let mut probed = None;
    loop {
        let status = h.tick();
        if let Some(idx) = h.pending.iter().position(|(_, s)| s.program() == "probe") {
            let (token, spec) = h.pending.remove(idx);
            probed = Some(spec.argv[1].to_string());
            h.vm.complete(token, CmdResult::ok(""));
            continue;
        }
        match status {
            VmStatus::Done { success } => {
                assert!(success);
                break;
            }
            VmStatus::Running { next_wake: Some(t) } => h.advance_to(t),
            VmStatus::Running { next_wake: None } => {
                // Only the hang is pending; wait for the deadline.
                panic!("expected a deadline wake");
            }
        }
    }
    assert_eq!(
        probed.as_deref(),
        Some("original"),
        "caller's positionals restored after the killed call"
    );
}
