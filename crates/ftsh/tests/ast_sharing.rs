//! Regression tests for shared-AST semantics: building a population of
//! VMs from one parsed script must be O(1) in AST clones — every VM
//! holds a reference-counted handle to the same statement block.

use ftsh::ast::Block;
use ftsh::{parse, Env, Vm, VmKind};

const POPULATION: usize = 1000;

const SCRIPT: &str = "try for 900 seconds\n\
       forany host in ${h1} ${h2} ${h3}\n\
         try for 5 seconds\n\
           wget http://${host}/flag\n\
         end\n\
         try for 60 seconds\n\
           wget http://${host}/data\n\
         end\n\
       end\n\
     end\n";

#[test]
fn thousand_tree_vms_share_one_ast() {
    let script = parse(SCRIPT).unwrap();

    let base = script.stmts.ref_count();
    assert_eq!(base, 1, "freshly parsed script owns its block alone");

    let vms: Vec<Vm> = (0..POPULATION)
        .map(|i| Vm::with_kind(VmKind::Tree, &script, Env::new(), i as u64))
        .collect();

    // Each tree VM adds exactly one strong reference to the top-level
    // block: no deep copies anywhere in construction.
    assert_eq!(
        script.stmts.ref_count(),
        base + POPULATION,
        "every VM must share the script's allocation"
    );
    drop(vms);
    assert_eq!(script.stmts.ref_count(), base);
}

#[test]
fn thousand_bytecode_vms_compile_once() {
    let script = parse(SCRIPT).unwrap();

    let base = script.stmts.ref_count();

    // The bytecode backend holds no AST references at all: the first
    // construction compiles the script (the program cache keeps only a
    // weak AST handle) and the rest share the compiled program.
    let vms: Vec<Vm> = (0..POPULATION)
        .map(|i| Vm::with_kind(VmKind::Bytecode, &script, Env::new(), i as u64))
        .collect();
    assert_eq!(
        script.stmts.ref_count(),
        base,
        "bytecode VMs must not clone the AST"
    );
    drop(vms);
}

#[test]
fn script_clone_is_pointer_equal() {
    let script = parse("try 3 times\n  wget url\nend\n").unwrap();
    let copy = script.clone();
    assert!(
        Block::ptr_eq(&script.stmts, &copy.stmts),
        "cloning a script shares, not copies, its statements"
    );
}

#[test]
fn vm_population_is_send() {
    // The shared AST is Arc-backed, so a population of VMs can be
    // fanned out across threads (the parallel sweep runner relies on
    // this).
    fn assert_send<T: Send>() {}
    assert_send::<Vm>();

    let script = parse("hello world\n").unwrap();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let vm = Vm::with_seed(&script, i);
            std::thread::spawn(move || {
                let mut vm = vm;
                let tick = vm.tick(retry::Time::ZERO);
                tick.effects.len()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 1);
    }
}
