//! Property: `parse(pretty(ast)) == ast` for generated scripts.
//!
//! `parser_robustness.rs` checks the source-level fixpoint
//! (pretty∘parse is idempotent on corpus text); this test attacks the
//! other direction with *synthesized* ASTs — nested try/catch with
//! time and attempt budgets, forany/forall, if/else, functions,
//! captures and input redirections — so the printer's quoting and
//! duration rendering are exercised on shapes no corpus script has.

use ftsh::ast::{Block, Command, Cond, CondOp, Redir, RedirTarget, Script, Stmt, TrySpec, Word};
use ftsh::{parse, pretty};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use retry::Dur;

const PROGRAMS: &[&str] = &["wget", "fetch", "probe", "run0", "tool"];
const NAMES: &[&str] = &["out", "status", "host", "n", "payload"];
const LITS: &[&str] = &["alpha", "b-2", "path/to.file", "10", "a,b+c@d"];

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

fn gen_word(rng: &mut StdRng) -> Word {
    match rng.random_range(0..4u32) {
        0 => Word::var(pick(rng, NAMES)),
        1 => Word::from_segs(vec![
            ftsh::Seg::Lit(pick(rng, LITS).into()),
            ftsh::Seg::Var(pick(rng, NAMES).into()),
        ]),
        _ => Word::lit(pick(rng, LITS)),
    }
}

fn gen_dur(rng: &mut StdRng) -> Dur {
    match rng.random_range(0..3u32) {
        0 => Dur::from_millis(rng.random_range(1..5000u64)),
        1 => Dur::from_secs(rng.random_range(1..300u64)),
        _ => Dur::from_mins(rng.random_range(1..90u64)),
    }
}

fn gen_try_spec(rng: &mut StdRng) -> TrySpec {
    // At least one budget: a bare `try` has no source spelling.
    let time = rng.random::<bool>().then(|| gen_dur(rng));
    let attempts = if time.is_none() || rng.random::<bool>() {
        Some(rng.random_range(1..10u64) as u32)
    } else {
        None
    };
    let every = rng.random::<bool>().then(|| gen_dur(rng));
    TrySpec {
        time,
        attempts,
        every,
        ..TrySpec::default()
    }
}

fn gen_command(rng: &mut StdRng) -> Stmt {
    let mut words = vec![Word::lit(pick(rng, PROGRAMS))];
    for _ in 0..rng.random_range(0..3usize) {
        words.push(gen_word(rng));
    }
    let mut redirs = Vec::new();
    if rng.random_range(0..3u32) == 0 {
        let (from, source) = if rng.random::<bool>() {
            (RedirTarget::Variable, Word::lit(pick(rng, NAMES)))
        } else {
            (RedirTarget::File, gen_word(rng))
        };
        redirs.push(Redir::In { from, source });
    }
    if rng.random_range(0..2u32) == 0 {
        let to_var = rng.random::<bool>();
        redirs.push(Redir::Out {
            to: if to_var {
                RedirTarget::Variable
            } else {
                RedirTarget::File
            },
            append: rng.random_range(0..3u32) == 0,
            // `>&`/`->&` capture stderr too; printed append+both is
            // exercised only for variables (`->>&` has no file form).
            both: to_var && rng.random_range(0..3u32) == 0,
            target: if to_var {
                Word::lit(pick(rng, NAMES))
            } else {
                gen_word(rng)
            },
        });
    }
    Stmt::Command(Command { words, redirs })
}

fn gen_block(rng: &mut StdRng, depth: u32) -> Block {
    let n = rng.random_range(1..4usize);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    let structured = depth < 3 && rng.random_range(0..2u32) == 0;
    if !structured {
        return match rng.random_range(0..5u32) {
            0 => Stmt::Assign {
                var: pick(rng, NAMES).to_string(),
                value: gen_word(rng),
            },
            1 => Stmt::Failure,
            2 => Stmt::Success,
            _ => gen_command(rng),
        };
    }
    match rng.random_range(0..4u32) {
        0 => Stmt::Try {
            spec: gen_try_spec(rng),
            body: gen_block(rng, depth + 1),
            catch: rng.random::<bool>().then(|| gen_block(rng, depth + 1)),
        },
        1 => {
            let var = pick(rng, NAMES).to_string();
            let values = (0..rng.random_range(1..4usize))
                .map(|_| gen_word(rng))
                .collect();
            let body = gen_block(rng, depth + 1);
            if rng.random::<bool>() {
                Stmt::ForAny { var, values, body }
            } else {
                Stmt::ForAll { var, values, body }
            }
        }
        2 => Stmt::If {
            cond: Cond {
                lhs: gen_word(rng),
                op: [
                    CondOp::NumLt,
                    CondOp::NumLe,
                    CondOp::NumGt,
                    CondOp::NumGe,
                    CondOp::NumEq,
                    CondOp::NumNe,
                    CondOp::StrEq,
                    CondOp::StrNe,
                ][rng.random_range(0..8usize)],
                rhs: gen_word(rng),
            },
            then: gen_block(rng, depth + 1),
            els: rng.random::<bool>().then(|| gen_block(rng, depth + 1)),
        },
        _ => Stmt::Try {
            // A deadline-only nested try around a single command — the
            // paper's innermost idiom, generated often on purpose.
            spec: TrySpec {
                time: Some(gen_dur(rng)),
                attempts: None,
                every: None,
                ..TrySpec::default()
            },
            body: gen_block(rng, depth + 1),
            catch: None,
        },
    }
}

fn gen_script(rng: &mut StdRng) -> Script {
    let mut stmts: Vec<Stmt> = Vec::new();
    if rng.random_range(0..3u32) == 0 {
        stmts.push(Stmt::Function {
            name: format!("fn{}", rng.random_range(0..5u32)),
            body: gen_block(rng, 1),
        });
    }
    for _ in 0..rng.random_range(1..5usize) {
        stmts.push(gen_stmt(rng, 0));
    }
    Script {
        stmts: stmts.into(),
    }
}

/// Check every statement span in `block` against the source `text` and
/// the span of its enclosing construct: known, in bounds, ordered and
/// disjoint within the block, nested inside the parent, and with word /
/// try-header spans contained in their statement's span.
fn check_spans(block: &Block, text: &str, enclosing: ftsh::Span) {
    let mut prev_end = enclosing.start;
    for (stmt, span) in block.iter_spanned() {
        assert!(span.is_known(), "unspanned stmt {stmt:?} in:\n{text}");
        assert!(
            span.start < span.end && (span.end as usize) <= text.len(),
            "span {span:?} out of bounds in:\n{text}"
        );
        assert!(
            span.start >= prev_end,
            "sibling spans overlap at {span:?} in:\n{text}"
        );
        assert!(
            span.start >= enclosing.start && span.end <= enclosing.end,
            "stmt span {span:?} escapes enclosing {enclosing:?} in:\n{text}"
        );
        prev_end = span.end;
        let contains = |inner: ftsh::Span| inner.start >= span.start && inner.end <= span.end;
        match stmt {
            Stmt::Command(c) => {
                for w in &c.words {
                    assert!(
                        w.span().is_known() && contains(w.span()),
                        "word span {:?} outside stmt {span:?} in:\n{text}",
                        w.span()
                    );
                }
            }
            Stmt::Try { spec, body, catch } => {
                assert!(
                    spec.span.is_known() && contains(spec.span),
                    "try header span {:?} outside stmt {span:?} in:\n{text}",
                    spec.span
                );
                assert!(
                    text[spec.span.start as usize..].starts_with("try"),
                    "header span must start at the keyword in:\n{text}"
                );
                check_spans(body, text, span);
                if let Some(c) = catch {
                    check_spans(c, text, span);
                }
            }
            Stmt::ForAny { body, .. } | Stmt::ForAll { body, .. } => {
                check_spans(body, text, span);
            }
            Stmt::If { then, els, .. } => {
                check_spans(then, text, span);
                if let Some(e) = els {
                    check_spans(e, text, span);
                }
            }
            Stmt::Function { body, .. } => check_spans(body, text, span),
            Stmt::Assign { .. } | Stmt::Failure | Stmt::Success => {}
        }
    }
}

proptest! {
    /// The printer is a right inverse of the parser on generated ASTs.
    #[test]
    fn pretty_then_parse_is_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let script = gen_script(&mut rng);
        let text = pretty(&script);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("pretty output must parse: {e}\n---\n{text}"));
        prop_assert_eq!(&reparsed, &script, "not a fixpoint:\n---\n{}", text);
        // And the fixpoint is stable: printing again changes nothing.
        prop_assert_eq!(pretty(&reparsed), text);
    }

    /// Reparsing pretty output attaches a well-formed span to every
    /// node: spans exist, sit inside their parents, never overlap among
    /// siblings, and the spanned AST still equals the original (spans
    /// are metadata, not identity).
    #[test]
    fn reparse_of_pretty_output_is_fully_spanned(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let script = gen_script(&mut rng);
        let text = pretty(&script);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("pretty output must parse: {e}\n---\n{text}"));
        check_spans(
            &reparsed.stmts,
            &text,
            ftsh::Span::new(0, text.len() as u32),
        );
        prop_assert_eq!(reparsed, script);
    }
}
