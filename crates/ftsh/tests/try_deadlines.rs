//! Property: an outer `try for` deadline dominates any inner `try`
//! deadline, regardless of nesting depth. However deep the stack of
//! inner tries and however generous their budgets, a VM whose commands
//! never complete must be unwound and finished by the instant the
//! outermost deadline expires.

use ftsh::parse;
use ftsh::vm::{Effect, Vm, VmStatus};
use proptest::prelude::*;
use retry::{Dur, Time};
use std::fmt::Write as _;

/// Build `try for <outer> s` wrapping `depth` nested inner tries (each
/// `for <inner[i]> s`) around a single command.
fn nested_try_script(outer_secs: u64, inner_secs: &[u64]) -> String {
    let mut src = format!("try for {outer_secs} seconds\n");
    for s in inner_secs {
        let _ = writeln!(src, "try for {s} seconds");
    }
    src.push_str("wget http://server/data\n");
    for _ in inner_secs {
        src.push_str("end\n");
    }
    src.push_str("end\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn outer_deadline_dominates_inner(
        outer_secs in 1u64..120,
        inner_secs in proptest::collection::vec(1u64..100_000, 1..6),
        seed in any::<u64>(),
    ) {
        let src = nested_try_script(outer_secs, &inner_secs);
        let script = parse(&src).unwrap();
        let mut vm = Vm::with_seed(&script, seed);
        let deadline = Time::ZERO + Dur::from_secs(outer_secs);

        // Drive the VM on wake-ups alone: no command ever completes,
        // so only deadlines and backoff timers can move it forward.
        let mut now = Time::ZERO;
        let mut started = 0u32;
        let mut cancelled = 0u32;
        for _ in 0..100_000 {
            let tick = vm.tick(now);
            for e in &tick.effects {
                match e {
                    Effect::Start { .. } => started += 1,
                    Effect::Cancel { .. } => cancelled += 1,
                }
            }
            match tick.status {
                VmStatus::Done { success } => {
                    prop_assert!(!success, "a never-completing command cannot succeed");
                    prop_assert!(
                        now <= deadline,
                        "finished at {now}, after the outer deadline {deadline}"
                    );
                    // Whatever was in flight at the kill was cancelled.
                    prop_assert_eq!(started, cancelled, "dangling in-flight command");
                    return Ok(());
                }
                VmStatus::Running { next_wake } => {
                    let wake = next_wake.expect("running VM with held command must have a deadline");
                    prop_assert!(
                        wake <= deadline,
                        "VM scheduled a wake at {wake}, past the outer deadline {deadline}"
                    );
                    prop_assert!(wake >= now, "wake-ups must not go backwards");
                    now = wake.max(now + Dur::from_micros(1));
                }
            }
        }
        prop_assert!(false, "VM did not finish by the outer deadline");
    }
}
