//! Scenario 5 — Swift-style dataflow DAG (Figure 9).
//!
//! A [`DagSpec`] declares ftsh jobs with producer/consumer edges
//! through store keys: job B may start once every key it consumes has
//! been published. Each job is one simulated client running a
//! generated ftsh script; the scheduler *is* the retry discipline:
//!
//! * The **Ethernet** job senses the carrier with a free `df` probe —
//!   "how many of my inputs exist?" — and defers with exponential
//!   backoff until all of them do, only then committing fetches.
//! * The **Aloha** job blindly fetches each input until it appears;
//!   every poll of an absent key is an expensive store miss
//!   (see [`OpQueue`]). **Fixed** is the same script with no backoff.
//!
//! After its inputs land the job runs (local compute, no contention)
//! and publishes its outputs, retrying under the same discipline —
//! which is where [`FaultKind::EnospcWindow`] injections bite: during
//! the window every put fails at the store, and mid-flight
//! [`FaultKind::ClientKill`] specs kill a job outright (a restart
//! delay re-runs it from scratch; its published outputs survive).
//!
//! The spec round-trips through JSON exactly like
//! [`FaultPlan`](simgrid::faults::FaultPlan), so DAGs are data, not
//! code.

use crate::coord::{coord_vm, OpQueue, StoreOp};
use crate::driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver};
use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Vm};
use ftsh::Script;
use retry::{Discipline, Dur, Time};
use simgrid::faults::json::{self, Value};
use simgrid::faults::{FaultKind, FaultPlan};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use simgrid::{json_escape, Series, SimRng};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// One job of the workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct DagJob {
    /// Unique job name.
    pub name: String,
    /// Local compute time once the inputs are in hand.
    pub runtime: Dur,
    /// Store keys the job consumes.
    pub inputs: Vec<String>,
    /// Store keys the job publishes.
    pub outputs: Vec<String>,
}

/// A declarative workflow: jobs plus the dataflow edges implied by
/// shared key names. Inputs no job produces are treated as externally
/// staged — present in the store from the start.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DagSpec {
    /// The jobs, in declaration order (client `i` runs job `i`).
    pub jobs: Vec<DagJob>,
}

impl DagSpec {
    /// The default workflow: a Montage-like 8-job diamond.
    ///
    /// ```text
    /// extract ─┬─ align-a ─┐
    ///          ├─ align-b ─┼─ merge ─┬─ stats  ─┬─ archive
    ///          └─ align-c ─┘         └─ render ─┘
    /// ```
    pub fn diamond() -> DagSpec {
        let job = |name: &str, secs: u64, inputs: &[&str], outputs: &[&str]| DagJob {
            name: name.into(),
            runtime: Dur::from_secs(secs),
            inputs: inputs.iter().map(|s| (*s).into()).collect(),
            outputs: outputs.iter().map(|s| (*s).into()).collect(),
        };
        DagSpec {
            jobs: vec![
                job("extract", 2, &[], &["raw"]),
                job("align-a", 2, &["raw"], &["band-a"]),
                job("align-b", 3, &["raw"], &["band-b"]),
                job("align-c", 1, &["raw"], &["band-c"]),
                job("merge", 2, &["band-a", "band-b", "band-c"], &["mosaic"]),
                job("stats", 1, &["mosaic"], &["report"]),
                job("render", 2, &["mosaic"], &["image"]),
                job("archive", 1, &["report", "image"], &["archive"]),
            ],
        }
    }

    /// Inputs no job produces: staged into the store before t=0.
    pub fn external_inputs(&self) -> Vec<String> {
        let produced: HashSet<&str> = self
            .jobs
            .iter()
            .flat_map(|j| j.outputs.iter().map(String::as_str))
            .collect();
        let mut seen = HashSet::new();
        self.jobs
            .iter()
            .flat_map(|j| j.inputs.iter())
            .filter(|i| !produced.contains(i.as_str()) && seen.insert(i.as_str()))
            .cloned()
            .collect()
    }

    /// Structural validation: names unique, at most one producer per
    /// key, and the dataflow acyclic.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = HashSet::new();
        let mut producer: HashMap<&str, &str> = HashMap::new();
        for j in &self.jobs {
            if !names.insert(j.name.as_str()) {
                return Err(format!("duplicate job name {:?}", j.name));
            }
            for o in &j.outputs {
                if let Some(prev) = producer.insert(o, &j.name) {
                    return Err(format!(
                        "key {o:?} produced by both {prev:?} and {:?}",
                        j.name
                    ));
                }
            }
        }
        // Kahn's algorithm over job→job edges implied by the keys.
        let mut indeg = vec![0usize; self.jobs.len()];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); self.jobs.len()];
        let idx_of: HashMap<&str, usize> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.name.as_str(), i))
            .collect();
        for (i, j) in self.jobs.iter().enumerate() {
            for input in &j.inputs {
                if let Some(p) = producer.get(input.as_str()) {
                    out_edges[idx_of[p]].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..self.jobs.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &n in &out_edges[i] {
                indeg[n] -= 1;
                if indeg[n] == 0 {
                    ready.push(n);
                }
            }
        }
        if seen != self.jobs.len() {
            return Err("workflow has a dependency cycle".into());
        }
        Ok(())
    }

    /// Serialize to the same hand-rolled JSON dialect as
    /// [`FaultPlan::to_json`](simgrid::faults::FaultPlan::to_json).
    /// Runtimes are integer microseconds (`runtime_us`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"jobs\": [");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let list = |keys: &[String]| {
                let mut l = String::from("[");
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        l.push_str(", ");
                    }
                    l.push('"');
                    l.push_str(&json_escape(k));
                    l.push('"');
                }
                l.push(']');
                l
            };
            let _ = write!(
                s,
                "{{\"name\": \"{}\", \"runtime_us\": {}, \"inputs\": {}, \"outputs\": {}}}",
                json_escape(&j.name),
                j.runtime.as_micros(),
                list(&j.inputs),
                list(&j.outputs),
            );
        }
        s.push_str("]}");
        s
    }

    /// Parse a spec back from [`to_json`](DagSpec::to_json) output (or
    /// anything shaped like it). Unknown fields are ignored.
    pub fn parse_json(text: &str) -> Result<DagSpec, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("spec must be a JSON object")?;
        let jobs = json::get(obj, "jobs")
            .and_then(Value::as_array)
            .ok_or("spec needs a \"jobs\" array")?;
        let mut out = Vec::new();
        for (i, jv) in jobs.iter().enumerate() {
            let j = jv
                .as_object()
                .ok_or_else(|| format!("job {i} must be an object"))?;
            let name = json::get(j, "name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("job {i} needs a \"name\""))?
                .to_string();
            let us = json::get(j, "runtime_us")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("job {name:?} needs \"runtime_us\""))?;
            let keys = |field: &str| -> Result<Vec<String>, String> {
                match json::get(j, field) {
                    None => Ok(Vec::new()),
                    Some(v) => v
                        .as_array()
                        .ok_or_else(|| format!("job {name:?}: {field} must be an array"))?
                        .iter()
                        .map(|k| {
                            k.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| format!("job {name:?}: {field} must hold strings"))
                        })
                        .collect(),
                }
            };
            out.push(DagJob {
                inputs: keys("inputs")?,
                outputs: keys("outputs")?,
                name,
                runtime: Dur::from_micros(us),
            });
        }
        Ok(DagSpec { jobs: out })
    }
}

/// The fetch phase of one job's script: the Ethernet variant gates on
/// a free `df` probe of the input count, the Aloha variant polls each
/// input blindly. Jobs with no inputs have no fetch phase.
fn fetch_phase(
    discipline: Discipline,
    job: &DagJob,
    dep_timeout: Dur,
    fetch_timeout: Dur,
) -> String {
    if job.inputs.is_empty() {
        return String::new();
    }
    let one = job.inputs.len() == 1;
    let fetch_all = |budget: Dur, indent: &str| -> String {
        if one {
            format!(
                "{indent}try for {t} seconds\n\
                 {indent}  fetch {key}\n\
                 {indent}end\n",
                t = budget.as_secs(),
                key = job.inputs[0],
            )
        } else {
            format!(
                "{indent}forall dep in {deps}\n\
                 {indent}  try for {t} seconds\n\
                 {indent}    fetch ${{dep}}\n\
                 {indent}  end\n\
                 {indent}end\n",
                deps = job.inputs.join(" "),
                t = budget.as_secs(),
            )
        }
    };
    match discipline {
        Discipline::Ethernet => format!(
            "try for {t} seconds\n\
               df {name} -> n\n\
               if ${{n}} .lt. {want}\n\
                 failure\n\
               else\n\
            {fetches}\
               end\n\
             end\n",
            t = dep_timeout.as_secs(),
            name = job.name,
            want = job.inputs.len(),
            fetches = fetch_all(fetch_timeout, "    "),
        ),
        Discipline::Aloha | Discipline::Fixed => fetch_all(dep_timeout, ""),
    }
}

/// The full generated script for one job under a discipline: fetch
/// phase, local run, then publish each output (retried — ENOSPC
/// windows make puts fail).
pub fn dag_job_script_text(
    discipline: Discipline,
    job: &DagJob,
    dep_timeout: Dur,
    fetch_timeout: Dur,
) -> String {
    let mut s = fetch_phase(discipline, job, dep_timeout, fetch_timeout);
    let _ = writeln!(s, "run {}", job.name);
    for o in &job.outputs {
        let _ = write!(
            s,
            "try for {t} seconds\n\
               publish {o}\n\
             end\n",
            t = dep_timeout.as_secs(),
        );
    }
    s
}

/// Parse the generated script for one job.
pub fn dag_job_script(
    discipline: Discipline,
    job: &DagJob,
    dep_timeout: Dur,
    fetch_timeout: Dur,
) -> Script {
    ftsh::parse(&dag_job_script_text(
        discipline,
        job,
        dep_timeout,
        fetch_timeout,
    ))
    .expect("generated script parses")
}

/// Parameters of the DAG scenario.
#[derive(Clone, Debug)]
pub struct DagParams {
    /// The workflow (client `i` runs `spec.jobs[i]`).
    pub spec: DagSpec,
    /// Job discipline.
    pub discipline: Discipline,
    /// Store service time of one publish.
    pub put_service: Dur,
    /// Store service time of a fetch that hits.
    pub get_service: Dur,
    /// Store service time of a fetch that misses.
    pub miss_service: Dur,
    /// Cost of the `df` carrier-sense probe (no store server).
    pub probe_cost: Dur,
    /// `try` budget on the dependency wait and on each publish.
    pub dep_timeout: Dur,
    /// Inner `try` budget on each Ethernet fetch.
    pub fetch_timeout: Dur,
    /// Pause before a failed job re-runs.
    pub failure_think: Dur,
    /// Jobs start uniformly spread over this span.
    pub start_stagger: Dur,
    /// Backoff base for Aloha/Ethernet retries.
    pub backoff_base: Dur,
    /// Backoff cap for Aloha/Ethernet retries.
    pub backoff_cap: Dur,
    /// Master seed.
    pub seed: u64,
    /// Fault plan: `client-kill` kills job clients by index,
    /// `enospc-window` fails every publish for its duration. `None` ⇒
    /// no faults.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DagParams {
    fn default() -> DagParams {
        DagParams {
            spec: DagSpec::diamond(),
            discipline: Discipline::Ethernet,
            put_service: Dur::from_millis(100),
            get_service: Dur::from_millis(50),
            miss_service: Dur::from_secs(2),
            probe_cost: Dur::from_millis(10),
            dep_timeout: Dur::from_secs(600),
            fetch_timeout: Dur::from_secs(60),
            failure_think: Dur::from_millis(500),
            start_stagger: Dur::from_secs(1),
            backoff_base: Dur::from_millis(500),
            backoff_cap: Dur::from_secs(4),
            seed: 0x5eed,
            fault_plan: None,
        }
    }
}

impl DagParams {
    /// The effective plan: the configured one, or an empty plan on the
    /// scenario seed.
    pub fn effective_fault_plan(&self) -> FaultPlan {
        self.fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::new(self.seed))
    }
}

/// Scenario events.
#[derive(Debug)]
pub enum DagEv {
    /// The store finished the service with this sequence number.
    StoreDone {
        /// Sequence number stamped when the service began.
        seq: u64,
    },
}

/// The store + workflow-accounting world.
pub struct DagWorld {
    params: DagParams,
    scripts: Vec<Script>,
    name_to_idx: HashMap<String, usize>,
    rng: SimRng,
    store: OpQueue<String>,
    keys: HashSet<String>,
    /// Puts fail at the store until this instant (ENOSPC window).
    enospc_until: Time,
    done: Vec<bool>,
    /// When each job completed.
    pub done_at: Vec<Option<Time>>,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Expensive store misses served.
    pub misses: u64,
    /// Publishes failed by an ENOSPC window.
    pub puts_failed: u64,
    /// Jobs re-run after a failed unit.
    pub retries: u64,
    /// `client-kill` injections that hit a live job.
    pub kills: u64,
    /// Jobs re-admitted after a kill.
    pub restarts: u64,
    trace: Option<SharedSink>,
    probe_out: HashMap<usize, ftsh::Istr>,
}

/// Store service time of one op given the current key space.
fn op_cost<'a>(
    p: &'a DagParams,
    keys: &'a HashSet<String>,
) -> impl Fn(&StoreOp<String>) -> Dur + 'a {
    move |op| match op {
        StoreOp::Put(_) => p.put_service,
        StoreOp::Get(k) => {
            if keys.contains(k) {
                p.get_service
            } else {
                p.miss_service
            }
        }
    }
}

impl DagWorld {
    fn new(params: DagParams) -> DagWorld {
        debug_assert!(params.spec.validate().is_ok());
        let scripts = params
            .spec
            .jobs
            .iter()
            .map(|j| {
                dag_job_script(
                    params.discipline,
                    j,
                    params.dep_timeout,
                    params.fetch_timeout,
                )
            })
            .collect();
        let name_to_idx = params
            .spec
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.name.clone(), i))
            .collect();
        let keys: HashSet<String> = params.spec.external_inputs().into_iter().collect();
        let n = params.spec.jobs.len();
        DagWorld {
            scripts,
            name_to_idx,
            rng: SimRng::new(params.seed),
            store: OpQueue::new(),
            keys,
            enospc_until: Time::ZERO,
            done: vec![false; n],
            done_at: vec![None; n],
            deferrals: 0,
            misses: 0,
            puts_failed: 0,
            retries: 0,
            kills: 0,
            restarts: 0,
            trace: None,
            probe_out: HashMap::new(),
            params,
        }
    }

    fn job_vm(&mut self, client: ClientId) -> Vm {
        let seed = self.rng.next_u64();
        coord_vm(
            &self.scripts[client],
            self.params.discipline,
            ftsh::Env::new(),
            seed,
            self.params.backoff_base,
            self.params.backoff_cap,
        )
    }
}

impl CommandWorld for DagWorld {
    type Ev = DagEv;

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, DagEv>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome {
        let arg = |i: usize| spec.argv.get(i).map(ftsh::Istr::as_str).unwrap_or("");
        match spec.program() {
            // Local compute: no contention once the inputs are local.
            "run" => {
                let runtime = self.params.spec.jobs[client].runtime;
                ExecOutcome::At(ctx.now() + runtime, CmdResult::ok(""))
            }
            // The carrier-sense probe: how many of the named job's
            // inputs exist. Reads the cached key set — free of the
            // store server.
            "df" => {
                let Some(&idx) = self.name_to_idx.get(arg(1)) else {
                    return ExecOutcome::Now(CmdResult::fail());
                };
                let job = &self.params.spec.jobs[idx];
                let present = job.inputs.iter().filter(|k| self.keys.contains(*k)).count();
                simgrid::trace::emit(
                    &self.trace,
                    ctx.now(),
                    client as i64,
                    NO_ID,
                    TraceEv::CarrierSense {
                        free: present as u64,
                    },
                );
                if present < job.inputs.len() {
                    self.deferrals += 1;
                    simgrid::trace::emit(
                        &self.trace,
                        ctx.now(),
                        client as i64,
                        NO_ID,
                        TraceEv::Deferral,
                    );
                }
                let out = self
                    .probe_out
                    .entry(present)
                    .or_insert_with(|| ftsh::Istr::from(present.to_string()))
                    .clone();
                ExecOutcome::At(ctx.now() + self.params.probe_cost, CmdResult::ok(out))
            }
            verb @ ("publish" | "fetch") => {
                let key = arg(1);
                if key.is_empty() {
                    return ExecOutcome::Now(CmdResult::fail());
                }
                let op = if verb == "publish" {
                    StoreOp::Put(key.to_string())
                } else {
                    StoreOp::Get(key.to_string())
                };
                let cost = op_cost(&self.params, &self.keys);
                if let Some((seq, dur)) = self.store.submit(client, token, op, cost) {
                    ctx.schedule(ctx.now() + dur, DagEv::StoreDone { seq });
                }
                ExecOutcome::Held
            }
            _ => ExecOutcome::Now(CmdResult::fail()),
        }
    }

    fn cancelled(&mut self, ctx: &mut Ctx<'_, DagEv>, client: ClientId, token: CmdToken) {
        let cost = op_cost(&self.params, &self.keys);
        if let Some((seq, dur)) = self.store.cancel(client, token, cost) {
            ctx.schedule(ctx.now() + dur, DagEv::StoreDone { seq });
        }
    }

    fn inject_fault(&mut self, ctx: &mut Ctx<'_, DagEv>, kind: &FaultKind) -> Vec<Completion> {
        match kind {
            FaultKind::ClientKill { client, .. }
                if *client < self.done.len() && !self.done[*client] =>
            {
                self.kills += 1;
            }
            FaultKind::EnospcWindow { duration } => {
                self.enospc_until = self.enospc_until.max(ctx.now() + *duration);
            }
            _ => {}
        }
        Vec::new()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, DagEv>, ev: DagEv) -> Vec<Completion> {
        let mut out = Vec::new();
        let DagEv::StoreDone { seq } = ev;
        let cost = op_cost(&self.params, &self.keys);
        let Some(((client, token, op), next)) = self.store.service_done(seq, cost) else {
            return out;
        };
        if let Some((seq, dur)) = next {
            ctx.schedule(ctx.now() + dur, DagEv::StoreDone { seq });
        }
        match op {
            StoreOp::Put(key) => {
                // Mid-flight store corruption: the ENOSPC window fails
                // every write; the job's `try` re-publishes after it.
                if ctx.now() < self.enospc_until {
                    self.puts_failed += 1;
                    out.push(Completion {
                        client,
                        token,
                        result: CmdResult::fail(),
                    });
                } else {
                    self.keys.insert(key);
                    out.push(Completion {
                        client,
                        token,
                        result: CmdResult::ok(""),
                    });
                }
            }
            StoreOp::Get(key) => {
                let hit = self.keys.contains(&key);
                if !hit {
                    self.misses += 1;
                }
                out.push(Completion {
                    client,
                    token,
                    result: if hit {
                        CmdResult::ok("")
                    } else {
                        CmdResult::fail()
                    },
                });
            }
        }
        out
    }

    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, DagEv>,
        client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)> {
        if success {
            self.done[client] = true;
            self.done_at[client] = Some(ctx.now());
            return None; // one unit per job: retire
        }
        self.retries += 1;
        let vm = self.job_vm(client);
        Some((vm, ctx.now() + self.params.failure_think))
    }

    fn restart_client(&mut self, ctx: &mut Ctx<'_, DagEv>, client: ClientId) -> Option<(Vm, Time)> {
        if client >= self.done.len() || self.done[client] {
            return None;
        }
        self.restarts += 1;
        let vm = self.job_vm(client);
        Some((vm, ctx.now()))
    }
}

/// Results of one workflow run.
#[derive(Debug)]
pub struct DagOutcome {
    /// Jobs that completed.
    pub jobs_done: usize,
    /// Makespan: when the last job completed, in seconds (`None` if
    /// any job never finished).
    pub makespan: Option<f64>,
    /// Per-job completion time in spec order: x = job index
    /// (1-based), y = seconds. Unfinished jobs are absent.
    pub job_series: Series,
    /// Jobs re-run after a failed unit (budget exhausted).
    pub retries: u64,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Expensive store misses served (blind polls of absent keys).
    pub failed_fetches: u64,
    /// Publishes failed by an ENOSPC window.
    pub puts_failed: u64,
    /// `client-kill` injections that hit a live job.
    pub kills: u64,
    /// Jobs re-admitted after a kill.
    pub restarts: u64,
    /// Aggregated ftsh log summary across all job VMs.
    pub client_totals: ftsh::LogSummary,
    /// Events popped from this run's own queue.
    pub events_popped: u64,
    /// Past-scheduled events clamped forward to `now`.
    pub queue_clamps: u64,
}

/// Run the workflow for up to `duration` of virtual time.
///
/// ```
/// use gridworld::coord::{run_dag, DagParams};
/// use retry::Dur;
///
/// let o = run_dag(DagParams::default(), Dur::from_secs(300));
/// assert_eq!(o.jobs_done, 8);
/// ```
pub fn run_dag(params: DagParams, duration: Dur) -> DagOutcome {
    run_dag_traced(params, duration, None)
}

/// [`run_dag`] with an optional structured-trace sink.
pub fn run_dag_traced(params: DagParams, duration: Dur, trace: Option<SharedSink>) -> DagOutcome {
    params.spec.validate().expect("valid workflow");
    let n = params.spec.jobs.len();
    let mut world = DagWorld::new(params.clone());
    world.trace.clone_from(&trace);
    let mut rng = SimRng::new(params.seed ^ 0xC11E);
    let vms: Vec<Vm> = (0..n)
        .map(|c| {
            let seed = rng.fork(c as u64).next_u64();
            coord_vm(
                &world.scripts[c],
                params.discipline,
                ftsh::Env::new(),
                seed,
                params.backoff_base,
                params.backoff_cap,
            )
        })
        .collect();
    let starts: Vec<Time> = (0..n)
        .map(|_| {
            Time::ZERO
                + Dur::from_secs_f64(rng.uniform(0.0, params.start_stagger.as_secs_f64().max(1e-9)))
        })
        .collect();
    let plan = world.params.effective_fault_plan();
    let mut driver = SimDriver::with_starts(world, vms, starts);
    if let Some(sink) = trace {
        driver.set_trace(sink);
    }
    if plan.injections().next().is_some() {
        driver.arm_faults(plan);
    }
    driver.run_until(Time::ZERO + duration);
    let events_popped = driver.events_popped();
    let queue_clamps = driver.clamps();
    if queue_clamps > 0 {
        simgrid::trace::emit(
            &driver.trace().cloned(),
            driver.now(),
            NO_ID,
            NO_ID,
            TraceEv::QueueClamps {
                count: queue_clamps,
            },
        );
    }
    let totals = driver.log_totals;
    let w = &driver.world;
    let mut job_series = Series::new(params.discipline.label());
    for (i, at) in w.done_at.iter().enumerate() {
        if let Some(t) = at {
            job_series.push_xy((i + 1) as f64, t.as_secs_f64());
        }
    }
    let jobs_done = w.done.iter().filter(|d| **d).count();
    let makespan = if jobs_done == n {
        w.done_at
            .iter()
            .copied()
            .flatten()
            .map(Time::as_secs_f64)
            .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.max(t))))
    } else {
        None
    };
    DagOutcome {
        jobs_done,
        makespan,
        job_series,
        retries: w.retries,
        deferrals: w.deferrals,
        failed_fetches: w.misses,
        puts_failed: w.puts_failed,
        kills: w.kills,
        restarts: w.restarts,
        client_totals: totals,
        events_popped,
        queue_clamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::faults::FaultSpec;

    #[test]
    fn spec_json_round_trips() {
        let spec = DagSpec::diamond();
        let text = spec.to_json();
        let back = DagSpec::parse_json(&text).expect("parses");
        assert_eq!(spec, back);
        assert_eq!(back.to_json(), text, "stable serialization");
    }

    #[test]
    fn validate_rejects_cycles_and_duplicate_producers() {
        let mut cyc = DagSpec::diamond();
        cyc.jobs[0].inputs = vec!["archive".into()]; // extract now needs the sink
        assert!(cyc.validate().unwrap_err().contains("cycle"));

        let mut dup = DagSpec::diamond();
        dup.jobs[1].outputs.push("band-b".into());
        assert!(dup.validate().unwrap_err().contains("band-b"));

        assert!(DagSpec::diamond().validate().is_ok());
        assert!(DagSpec::diamond().external_inputs().is_empty());
    }

    #[test]
    fn all_disciplines_complete_without_faults() {
        for d in Discipline::ALL {
            let p = DagParams {
                discipline: d,
                ..DagParams::default()
            };
            let o = run_dag(p, Dur::from_secs(300));
            assert_eq!(o.jobs_done, 8, "{d}");
            assert!(o.makespan.is_some(), "{d}");
            assert_eq!(o.job_series.len(), 8, "{d}");
        }
    }

    #[test]
    fn ethernet_senses_aloha_polls() {
        let run = |d| {
            run_dag(
                DagParams {
                    discipline: d,
                    ..DagParams::default()
                },
                Dur::from_secs(300),
            )
        };
        let e = run(Discipline::Ethernet);
        assert!(e.deferrals > 0);
        assert_eq!(e.failed_fetches, 0, "sensed-free fetches always hit");
        let a = run(Discipline::Aloha);
        assert!(a.failed_fetches > 0, "blind polling misses");
    }

    fn fault_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with(FaultSpec::once(
                Time::ZERO + Dur::from_secs(1),
                FaultKind::EnospcWindow {
                    duration: Dur::from_secs(8),
                },
            ))
            .with(FaultSpec::once(
                Time::ZERO + Dur::from_secs(6),
                FaultKind::ClientKill {
                    client: 4, // merge
                    restart: Some(Dur::from_secs(5)),
                },
            ))
    }

    #[test]
    fn workflow_survives_store_corruption_and_job_kill() {
        for d in Discipline::ALL {
            let p = DagParams {
                discipline: d,
                seed: 2003,
                fault_plan: Some(fault_plan(2003)),
                ..DagParams::default()
            };
            let o = run_dag(p, Dur::from_secs(600));
            assert_eq!(o.jobs_done, 8, "{d}");
            // The Ethernet put reaches the store promptly, inside the
            // window. The blind disciplines' own miss storm congests
            // the FIFO so badly their put is served after the window
            // closes — the fault they feel is their own polling.
            if d == Discipline::Ethernet {
                assert!(o.puts_failed > 0, "{d}: the window must bite");
            } else {
                assert!(o.failed_fetches > 0, "{d}: the poll storm must show");
            }
            assert_eq!(o.kills, 1, "{d}");
            assert_eq!(o.restarts, 1, "{d}");
        }
    }

    #[test]
    fn ethernet_matches_or_beats_aloha_under_faults() {
        let mut spans = Vec::new();
        for d in [Discipline::Ethernet, Discipline::Aloha] {
            let p = DagParams {
                discipline: d,
                seed: 2003,
                fault_plan: Some(fault_plan(2003)),
                ..DagParams::default()
            };
            let o = run_dag(p, Dur::from_secs(600));
            spans.push(o.makespan.expect("completed"));
        }
        assert!(
            spans[0] <= spans[1],
            "ethernet {:.2}s vs aloha {:.2}s",
            spans[0],
            spans[1]
        );
    }
}
