//! Scenario 4 — fault-tolerant all-reduce/barrier (Figure 8).
//!
//! N worker ranks run synchronized rounds. In each round a rank
//! computes its partial value, publishes it to the shared store under
//! the key `(round, rank)`, and then fetches every peer's key —
//! `forall` over the peer list is the barrier: the rank's round
//! completes only when all N keys landed.
//!
//! The contended resource is the store's single-server FIFO front end
//! ([`OpQueue`]). A fetch of a key that is not there yet is an
//! *expensive miss* (an exhaustive directory scan holding the server),
//! so a discipline that polls blindly for a straggler degrades
//! everyone's puts and gets. The Ethernet rank instead probes a cached
//! per-round count of landed keys — free carrier sensing — and defers
//! (with exponential backoff) until the whole round is present before
//! committing any fetch.
//!
//! Rank kills: a [`FaultKind::ClientKill`] injection drops a rank
//! mid-round. Its published key survives, its in-flight store
//! operations are cancelled, and — if the spec carries a restart
//! delay — the world re-admits the rank with a fresh VM for the round
//! it was in, which re-computes and re-publishes (the store
//! deduplicates keys, so a re-publish never double-counts the
//! barrier). Live ranks notice nothing except that the round's last
//! key is late: the carrier stays sensed-busy until the straggler
//! lands.

use crate::coord::{coord_vm, OpQueue, StoreOp};
use crate::driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver};
use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Vm};
use ftsh::Script;
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use simgrid::{Series, SimRng};
use std::collections::{HashMap, HashSet};

/// The space-separated peer list `r0 r1 … rN-1` the barrier `forall`
/// iterates over.
pub fn peer_list(n_ranks: usize) -> String {
    let mut s = String::new();
    for r in 0..n_ranks {
        if r > 0 {
            s.push(' ');
        }
        s.push('r');
        s.push_str(&r.to_string());
    }
    s
}

/// The Aloha rank (Fixed is the same script with no backoff): publish,
/// then blindly fetch every peer's key until each lands.
///
/// ```text
/// compute ${rank} ${round}
/// publish ${rank} ${round}
/// forall peer in r0 r1 r2 r3
///   try for 600 seconds
///     fetch ${peer} ${round}
///   end
/// end
/// ```
pub fn allreduce_aloha_text(n_ranks: usize, round_timeout: Dur) -> String {
    format!(
        "compute ${{rank}} ${{round}}\n\
         publish ${{rank}} ${{round}}\n\
         forall peer in {peers}\n\
           try for {t} seconds\n\
             fetch ${{peer}} ${{round}}\n\
           end\n\
         end\n",
        peers = peer_list(n_ranks),
        t = round_timeout.as_secs(),
    )
}

/// The Ethernet rank senses the carrier first: a free `probe` of the
/// round's landed-key count gates the whole fetch phase, so no fetch
/// is committed until every peer has published.
///
/// ```text
/// compute ${rank} ${round}
/// publish ${rank} ${round}
/// try for 600 seconds
///   probe ${round} -> n
///   if ${n} .lt. 4
///     failure
///   else
///     forall peer in r0 r1 r2 r3
///       try for 60 seconds
///         fetch ${peer} ${round}
///       end
///     end
///   end
/// end
/// ```
pub fn allreduce_ethernet_text(n_ranks: usize, round_timeout: Dur, fetch_timeout: Dur) -> String {
    format!(
        "compute ${{rank}} ${{round}}\n\
         publish ${{rank}} ${{round}}\n\
         try for {t} seconds\n\
           probe ${{round}} -> n\n\
           if ${{n}} .lt. {n_ranks}\n\
             failure\n\
           else\n\
             forall peer in {peers}\n\
               try for {ft} seconds\n\
                 fetch ${{peer}} ${{round}}\n\
               end\n\
             end\n\
           end\n\
         end\n",
        peers = peer_list(n_ranks),
        t = round_timeout.as_secs(),
        ft = fetch_timeout.as_secs(),
    )
}

/// The rank script for one discipline.
pub fn allreduce_script(
    discipline: Discipline,
    n_ranks: usize,
    round_timeout: Dur,
    fetch_timeout: Dur,
) -> Script {
    let text = match discipline {
        Discipline::Ethernet => allreduce_ethernet_text(n_ranks, round_timeout, fetch_timeout),
        Discipline::Aloha | Discipline::Fixed => allreduce_aloha_text(n_ranks, round_timeout),
    };
    ftsh::parse(&text).expect("generated script parses")
}

/// Parameters of the all-reduce scenario.
#[derive(Clone, Debug)]
pub struct AllReduceParams {
    /// Number of worker ranks (clients `0..n_ranks`).
    pub n_ranks: usize,
    /// Rounds each rank must complete.
    pub rounds: u32,
    /// Rank discipline.
    pub discipline: Discipline,
    /// Base compute time of one partial value.
    pub compute_base: Dur,
    /// Uniform jitter added to each compute.
    pub compute_jitter: Dur,
    /// Store service time of one publish.
    pub put_service: Dur,
    /// Store service time of a fetch that hits.
    pub get_service: Dur,
    /// Store service time of a fetch that misses — the exhaustive
    /// directory scan blind polling pays.
    pub miss_service: Dur,
    /// Cost of the carrier-sense probe (local cached count; the store
    /// server is not involved).
    pub probe_cost: Dur,
    /// `try` budget on one rank-round (barrier wait included); an
    /// exhausted budget fails the unit and the rank re-runs the round.
    pub round_timeout: Dur,
    /// Inner `try` budget on each Ethernet fetch (the carrier was
    /// sensed free, so fetches are expected to hit at once).
    pub fetch_timeout: Dur,
    /// Pause after completing a round before starting the next.
    pub success_think: Dur,
    /// Pause after a failed round before re-running it.
    pub failure_think: Dur,
    /// Ranks start uniformly spread over this span.
    pub start_stagger: Dur,
    /// Backoff base for Aloha/Ethernet `try` retries (rounds run in
    /// seconds, so the submit scenario's 1 s..1 h envelope tightens).
    pub backoff_base: Dur,
    /// Backoff cap for Aloha/Ethernet `try` retries.
    pub backoff_cap: Dur,
    /// Master seed.
    pub seed: u64,
    /// Fault plan: `client-kill` specs name ranks by client index.
    /// `None` ⇒ no faults.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for AllReduceParams {
    fn default() -> AllReduceParams {
        AllReduceParams {
            n_ranks: 4,
            rounds: 3,
            discipline: Discipline::Ethernet,
            compute_base: Dur::from_secs(2),
            compute_jitter: Dur::from_secs(1),
            put_service: Dur::from_millis(100),
            get_service: Dur::from_millis(50),
            miss_service: Dur::from_secs(2),
            probe_cost: Dur::from_millis(10),
            round_timeout: Dur::from_secs(600),
            fetch_timeout: Dur::from_secs(60),
            success_think: Dur::from_millis(500),
            failure_think: Dur::from_millis(500),
            start_stagger: Dur::from_secs(2),
            backoff_base: Dur::from_millis(500),
            backoff_cap: Dur::from_secs(4),
            seed: 0x5eed,
            fault_plan: None,
        }
    }
}

impl AllReduceParams {
    /// The effective plan: the configured one, or an empty plan on the
    /// scenario seed (no physics — the store itself never fails).
    pub fn effective_fault_plan(&self) -> FaultPlan {
        self.fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::new(self.seed))
    }
}

/// Scenario events.
#[derive(Debug)]
pub enum AllReduceEv {
    /// The store finished the service with this sequence number.
    StoreDone {
        /// Sequence number stamped when the service began.
        seq: u64,
    },
}

/// The store + round-accounting world.
pub struct AllReduceWorld {
    params: AllReduceParams,
    script: Script,
    rng: SimRng,
    store: OpQueue<(u32, usize)>,
    /// Landed keys: `(round, rank)`, deduplicated.
    keys: HashSet<(u32, usize)>,
    /// Landed-key count per round — what the carrier-sense probe reads.
    landed: Vec<u32>,
    /// The round each rank is currently working on (== `rounds` once
    /// retired).
    rank_round: Vec<u32>,
    /// Ranks that completed each round.
    round_done: Vec<u32>,
    /// When the last rank completed each round.
    pub round_done_at: Vec<Option<Time>>,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Expensive store misses served (blind polls of absent keys).
    pub misses: u64,
    /// Rank-rounds that failed outright (round budget exhausted) and
    /// were re-run, plus rank-rounds wiped by a kill: work lost.
    pub rounds_lost: u64,
    /// `client-kill` injections that hit a live rank.
    pub kills: u64,
    /// Ranks re-admitted after a kill.
    pub restarts: u64,
    trace: Option<SharedSink>,
    /// Interned probe outputs per distinct landed count.
    probe_out: HashMap<u32, ftsh::Istr>,
}

impl AllReduceWorld {
    fn new(params: AllReduceParams) -> AllReduceWorld {
        let script = allreduce_script(
            params.discipline,
            params.n_ranks,
            params.round_timeout,
            params.fetch_timeout,
        );
        let rounds = params.rounds as usize;
        AllReduceWorld {
            script,
            rng: SimRng::new(params.seed),
            store: OpQueue::new(),
            keys: HashSet::new(),
            landed: vec![0; rounds],
            rank_round: vec![0; params.n_ranks],
            round_done: vec![0; rounds],
            round_done_at: vec![None; rounds],
            deferrals: 0,
            misses: 0,
            rounds_lost: 0,
            kills: 0,
            restarts: 0,
            trace: None,
            probe_out: HashMap::new(),
            params,
        }
    }

    /// A fresh VM for `rank`'s current round.
    fn rank_vm(&mut self, rank: ClientId) -> Vm {
        let seed = self.rng.next_u64();
        rank_unit_vm(
            &self.script,
            &self.params,
            rank,
            self.rank_round[rank],
            seed,
        )
    }
}

/// Build the VM one rank runs for one round: `${rank}`/`${round}` come
/// in through the environment, so one shared AST serves every rank and
/// round.
fn rank_unit_vm(
    script: &Script,
    params: &AllReduceParams,
    rank: ClientId,
    round: u32,
    seed: u64,
) -> Vm {
    let mut env = ftsh::Env::new();
    env.set("rank", format!("r{rank}"));
    env.set("round", round.to_string());
    coord_vm(
        script,
        params.discipline,
        env,
        seed,
        params.backoff_base,
        params.backoff_cap,
    )
}

/// `"r7"` → `7`.
fn parse_rank(word: &str) -> Option<usize> {
    word.strip_prefix('r')?.parse().ok()
}

/// Store service time of one op given the current key space: a get of
/// an absent key is the expensive scan.
fn op_cost<'a>(
    p: &'a AllReduceParams,
    keys: &'a HashSet<(u32, usize)>,
) -> impl Fn(&StoreOp<(u32, usize)>) -> Dur + 'a {
    move |op| match op {
        StoreOp::Put(_) => p.put_service,
        StoreOp::Get(k) => {
            if keys.contains(k) {
                p.get_service
            } else {
                p.miss_service
            }
        }
    }
}

impl CommandWorld for AllReduceWorld {
    type Ev = AllReduceEv;

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, AllReduceEv>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome {
        let arg = |i: usize| spec.argv.get(i).map(ftsh::Istr::as_str).unwrap_or("");
        match spec.program() {
            "compute" => {
                let jitter = self
                    .rng
                    .uniform(0.0, self.params.compute_jitter.as_secs_f64().max(1e-9));
                let dur = self.params.compute_base + Dur::from_secs_f64(jitter);
                ExecOutcome::At(ctx.now() + dur, CmdResult::ok(""))
            }
            // The carrier-sense probe: how many of this round's keys
            // have landed. Reads a cached count — free of the store
            // server.
            "probe" => {
                let Ok(round) = arg(1).parse::<u32>() else {
                    return ExecOutcome::Now(CmdResult::fail());
                };
                let count = self.landed.get(round as usize).copied().unwrap_or(0);
                simgrid::trace::emit(
                    &self.trace,
                    ctx.now(),
                    client as i64,
                    NO_ID,
                    TraceEv::CarrierSense {
                        free: u64::from(count),
                    },
                );
                if (count as usize) < self.params.n_ranks {
                    self.deferrals += 1;
                    simgrid::trace::emit(
                        &self.trace,
                        ctx.now(),
                        client as i64,
                        NO_ID,
                        TraceEv::Deferral,
                    );
                }
                let out = self
                    .probe_out
                    .entry(count)
                    .or_insert_with(|| ftsh::Istr::from(count.to_string()))
                    .clone();
                ExecOutcome::At(ctx.now() + self.params.probe_cost, CmdResult::ok(out))
            }
            verb @ ("publish" | "fetch") => {
                let (Some(rank), Ok(round)) = (parse_rank(arg(1)), arg(2).parse::<u32>()) else {
                    return ExecOutcome::Now(CmdResult::fail());
                };
                let op = if verb == "publish" {
                    StoreOp::Put((round, rank))
                } else {
                    StoreOp::Get((round, rank))
                };
                let cost = op_cost(&self.params, &self.keys);
                if let Some((seq, dur)) = self.store.submit(client, token, op, cost) {
                    ctx.schedule(ctx.now() + dur, AllReduceEv::StoreDone { seq });
                }
                ExecOutcome::Held
            }
            _ => ExecOutcome::Now(CmdResult::fail()),
        }
    }

    fn cancelled(&mut self, ctx: &mut Ctx<'_, AllReduceEv>, client: ClientId, token: CmdToken) {
        let cost = op_cost(&self.params, &self.keys);
        if let Some((seq, dur)) = self.store.cancel(client, token, cost) {
            ctx.schedule(ctx.now() + dur, AllReduceEv::StoreDone { seq });
        }
    }

    fn inject_fault(
        &mut self,
        _ctx: &mut Ctx<'_, AllReduceEv>,
        kind: &FaultKind,
    ) -> Vec<Completion> {
        if let FaultKind::ClientKill { client, .. } = kind {
            if *client < self.params.n_ranks
                && self.rank_round.get(*client).copied().unwrap_or(u32::MAX) < self.params.rounds
            {
                self.kills += 1;
                self.rounds_lost += 1;
            }
        }
        Vec::new()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, AllReduceEv>, ev: AllReduceEv) -> Vec<Completion> {
        let mut out = Vec::new();
        let AllReduceEv::StoreDone { seq } = ev;
        let cost = op_cost(&self.params, &self.keys);
        let Some(((client, token, op), next)) = self.store.service_done(seq, cost) else {
            return out;
        };
        if let Some((seq, dur)) = next {
            ctx.schedule(ctx.now() + dur, AllReduceEv::StoreDone { seq });
        }
        match op {
            StoreOp::Put(key) => {
                // Re-publishes after a rank restart deduplicate: the
                // barrier count never sees a key twice.
                if self.keys.insert(key) {
                    if let Some(c) = self.landed.get_mut(key.0 as usize) {
                        *c += 1;
                    }
                }
                out.push(Completion {
                    client,
                    token,
                    result: CmdResult::ok(""),
                });
            }
            StoreOp::Get(key) => {
                let hit = self.keys.contains(&key);
                if !hit {
                    self.misses += 1;
                }
                out.push(Completion {
                    client,
                    token,
                    result: if hit {
                        CmdResult::ok("")
                    } else {
                        CmdResult::fail()
                    },
                });
            }
        }
        out
    }

    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, AllReduceEv>,
        client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)> {
        if success {
            let k = self.rank_round[client] as usize;
            self.round_done[k] += 1;
            if self.round_done[k] as usize == self.params.n_ranks {
                self.round_done_at[k] = Some(ctx.now());
            }
            self.rank_round[client] += 1;
            if self.rank_round[client] >= self.params.rounds {
                return None; // all rounds done: retire
            }
            let vm = self.rank_vm(client);
            Some((vm, ctx.now() + self.params.success_think))
        } else {
            // Round budget exhausted (e.g. the barrier never filled
            // while a peer was dead): the whole rank-round re-runs.
            self.rounds_lost += 1;
            let vm = self.rank_vm(client);
            Some((vm, ctx.now() + self.params.failure_think))
        }
    }

    fn restart_client(
        &mut self,
        ctx: &mut Ctx<'_, AllReduceEv>,
        client: ClientId,
    ) -> Option<(Vm, Time)> {
        // A rank that already finished every round stays retired.
        if client >= self.params.n_ranks || self.rank_round[client] >= self.params.rounds {
            return None;
        }
        self.restarts += 1;
        let vm = self.rank_vm(client);
        Some((vm, ctx.now()))
    }
}

/// Results of one all-reduce run.
#[derive(Debug)]
pub struct AllReduceOutcome {
    /// Rounds globally completed (every rank landed).
    pub rounds_completed: u32,
    /// Time-to-global-completion: when the last rank finished the
    /// last round, in seconds (`None` if the run never got there).
    pub all_done_at: Option<f64>,
    /// Per-round global completion time: x = round (1-based), y =
    /// seconds. Incomplete rounds are absent.
    pub round_series: Series,
    /// Rank-rounds lost to kills or exhausted round budgets.
    pub rounds_lost: u64,
    /// `client-kill` injections that hit a live rank.
    pub kills: u64,
    /// Ranks re-admitted after a kill.
    pub restarts: u64,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Expensive store misses served (blind polls of absent keys).
    pub failed_fetches: u64,
    /// Aggregated ftsh log summary across all rank VMs.
    pub client_totals: ftsh::LogSummary,
    /// Events popped from this run's own queue.
    pub events_popped: u64,
    /// Past-scheduled events clamped forward to `now`.
    pub queue_clamps: u64,
}

/// Run the all-reduce for up to `duration` of virtual time.
///
/// ```
/// use gridworld::coord::{run_allreduce, AllReduceParams};
/// use retry::{Discipline, Dur};
///
/// let o = run_allreduce(
///     AllReduceParams {
///         n_ranks: 3,
///         rounds: 2,
///         discipline: Discipline::Ethernet,
///         ..AllReduceParams::default()
///     },
///     Dur::from_secs(120),
/// );
/// assert_eq!(o.rounds_completed, 2);
/// ```
pub fn run_allreduce(params: AllReduceParams, duration: Dur) -> AllReduceOutcome {
    run_allreduce_traced(params, duration, None)
}

/// [`run_allreduce`] with an optional structured-trace sink: every
/// rank VM plus the store world record into it (probes, deferrals,
/// per-round `unit-done`s, fault injections).
pub fn run_allreduce_traced(
    params: AllReduceParams,
    duration: Dur,
    trace: Option<SharedSink>,
) -> AllReduceOutcome {
    let mut world = AllReduceWorld::new(params.clone());
    world.trace.clone_from(&trace);
    let mut rng = SimRng::new(params.seed ^ 0xC11E);
    let vms: Vec<Vm> = (0..params.n_ranks)
        .map(|c| {
            let seed = rng.fork(c as u64).next_u64();
            rank_unit_vm(&world.script, &params, c, 0, seed)
        })
        .collect();
    let starts: Vec<Time> = (0..params.n_ranks)
        .map(|_| {
            Time::ZERO
                + Dur::from_secs_f64(rng.uniform(0.0, params.start_stagger.as_secs_f64().max(1e-9)))
        })
        .collect();
    let plan = world.params.effective_fault_plan();
    let mut driver = SimDriver::with_starts(world, vms, starts);
    if let Some(sink) = trace {
        driver.set_trace(sink);
    }
    if plan.injections().next().is_some() {
        driver.arm_faults(plan);
    }
    driver.run_until(Time::ZERO + duration);
    let events_popped = driver.events_popped();
    let queue_clamps = driver.clamps();
    if queue_clamps > 0 {
        simgrid::trace::emit(
            &driver.trace().cloned(),
            driver.now(),
            NO_ID,
            NO_ID,
            TraceEv::QueueClamps {
                count: queue_clamps,
            },
        );
    }
    let totals = driver.log_totals;
    let w = &driver.world;
    let mut round_series = Series::new(params.discipline.label());
    for (k, at) in w.round_done_at.iter().enumerate() {
        if let Some(t) = at {
            round_series.push_xy((k + 1) as f64, t.as_secs_f64());
        }
    }
    let rounds_completed = w.round_done_at.iter().filter(|t| t.is_some()).count() as u32;
    let all_done_at = w
        .round_done_at
        .last()
        .copied()
        .flatten()
        .map(Time::as_secs_f64);
    AllReduceOutcome {
        rounds_completed,
        all_done_at,
        round_series,
        rounds_lost: w.rounds_lost,
        kills: w.kills,
        restarts: w.restarts,
        deferrals: w.deferrals,
        failed_fetches: w.misses,
        client_totals: totals,
        events_popped,
        queue_clamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::faults::FaultSpec;

    fn base(d: Discipline) -> AllReduceParams {
        AllReduceParams {
            discipline: d,
            ..AllReduceParams::default()
        }
    }

    #[test]
    fn all_disciplines_complete_without_faults() {
        for d in Discipline::ALL {
            let o = run_allreduce(base(d), Dur::from_secs(300));
            assert_eq!(o.rounds_completed, 3, "{d}");
            assert!(o.all_done_at.is_some(), "{d}");
            assert_eq!(o.kills, 0, "{d}");
            assert_eq!(o.round_series.len(), 3, "{d}");
        }
    }

    #[test]
    fn ethernet_defers_and_avoids_misses() {
        let o = run_allreduce(base(Discipline::Ethernet), Dur::from_secs(300));
        assert!(o.deferrals > 0, "barrier waits must show up as deferrals");
        assert_eq!(o.failed_fetches, 0, "sensed-free fetches always hit");
        let a = run_allreduce(base(Discipline::Aloha), Dur::from_secs(300));
        assert!(a.failed_fetches > 0, "blind polling misses");
    }

    fn kill_plan(seed: u64, rank: usize, restart: Option<Dur>) -> FaultPlan {
        FaultPlan::new(seed).with(FaultSpec::once(
            Time::ZERO + Dur::from_secs(4),
            FaultKind::ClientKill {
                client: rank,
                restart,
            },
        ))
    }

    #[test]
    fn mid_round_kill_with_restart_completes_every_discipline() {
        for d in Discipline::ALL {
            let mut p = base(d);
            p.fault_plan = Some(kill_plan(p.seed, 1, Some(Dur::from_secs(6))));
            let o = run_allreduce(p, Dur::from_secs(600));
            assert_eq!(o.rounds_completed, 3, "{d}");
            assert_eq!(o.kills, 1, "{d}");
            assert_eq!(o.restarts, 1, "{d}");
            assert!(o.rounds_lost >= 1, "{d}");
        }
    }

    #[test]
    fn kill_without_restart_stalls_the_barrier() {
        let mut p = base(Discipline::Ethernet);
        p.rounds = 2;
        p.fault_plan = Some(kill_plan(p.seed, 2, None));
        let o = run_allreduce(p, Dur::from_secs(120));
        assert_eq!(o.rounds_completed, 0, "a dead rank blocks every round");
        assert_eq!(o.kills, 1);
        assert_eq!(o.restarts, 0);
        assert!(o.deferrals > 0, "survivors keep sensing a busy carrier");
    }

    #[test]
    fn ethernet_matches_or_beats_aloha_under_kills() {
        let mut times = Vec::new();
        for d in [Discipline::Ethernet, Discipline::Aloha] {
            let mut p = base(d);
            p.seed = 2003;
            p.fault_plan = Some(kill_plan(2003, 1, Some(Dur::from_secs(6))));
            let o = run_allreduce(p, Dur::from_secs(600));
            assert_eq!(o.rounds_completed, 3, "{d}");
            times.push(o.all_done_at.expect("completed"));
        }
        assert!(
            times[0] <= times[1],
            "ethernet {:.2}s vs aloha {:.2}s",
            times[0],
            times[1]
        );
    }

    #[test]
    fn generated_scripts_parse_for_any_population() {
        for n in [1, 2, 8, 64] {
            for d in Discipline::ALL {
                let s = allreduce_script(d, n, Dur::from_secs(600), Dur::from_secs(60));
                assert!(!s.stmts.is_empty());
            }
        }
    }
}
