//! Coordinated workloads: fault-tolerant collectives and DAG
//! workflows (Figures 8–9).
//!
//! The paper's three scenarios are independent clients racing one
//! contended resource. This module adds workloads where progress is
//! *gated on every participant*, the regime MPICH-G2-style collectives
//! and Swift-style dataflow live in:
//!
//! * [`allreduce`] — N ftsh worker ranks compute a partial value,
//!   publish it through the shared put/get store, and use `forall`
//!   over peer fetches as the barrier. A round completes only when
//!   every rank lands; [`FaultKind::ClientKill`] injections kill ranks
//!   mid-round (optionally restarting them), and the metric is
//!   time-to-global-completion and rounds lost per discipline.
//! * [`dag`] — a declarative [`DagSpec`](dag::DagSpec) of ftsh jobs
//!   with producer/consumer edges through store keys: a job may start
//!   once its inputs exist. Ethernet jobs sense the carrier with a
//!   free `df` probe; Aloha jobs poll blindly with expensive misses.
//!
//! Both families run on the same [`SimDriver`](crate::driver)
//! machinery as the paper scenarios — shared `Arc<[Stmt]>` ASTs,
//! structured traces, byte-identical results across sweep threads and
//! event-queue shards — and against the real `gridd` daemon via the
//! bench live driver.
//!
//! ## The contended resource
//!
//! Both worlds share one store model, [`OpQueue`]: a single-server
//! FIFO in front of the key space. Publishing and fetching consume
//! server time; a fetch of a key that does not exist yet is an
//! *expensive miss* (an exhaustive directory scan), so blind polling
//! for a straggler's output degrades everyone's service. The
//! carrier-sense probe reads a cached key count without touching the
//! server — sensing is free, committing work is not, exactly the
//! asymmetry §6 of the paper builds its Ethernet discipline on.
//!
//! [`FaultKind::ClientKill`]: simgrid::faults::FaultKind::ClientKill

use crate::driver::ClientId;
use crate::scripts::unit_vm;
use ftsh::vm::CmdToken;
use ftsh::{Env, Script, Vm};
use retry::{BackoffPolicy, Discipline, Dur};
use std::collections::VecDeque;

pub mod allreduce;
pub mod dag;

pub use allreduce::{run_allreduce, run_allreduce_traced, AllReduceOutcome, AllReduceParams};
pub use dag::{run_dag, run_dag_traced, DagJob, DagOutcome, DagParams, DagSpec};

/// One operation queued at the shared store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOp<K> {
    /// Publish (put) a key.
    Put(K),
    /// Look a key up (get).
    Get(K),
}

/// The single-server FIFO front end of the shared store: every put and
/// get waits its turn, and the server works on exactly one operation
/// at a time. The queue does not know the key space — callers decide
/// each operation's service time (hit vs. expensive miss) and apply
/// its effect when the service completes.
///
/// Every started service gets a fresh sequence number; a `ServiceDone`
/// event carrying a stale number (the service was aborted by a cancel)
/// is ignored by [`service_done`](OpQueue::service_done).
#[derive(Debug)]
pub struct OpQueue<K> {
    queue: VecDeque<(ClientId, CmdToken, StoreOp<K>)>,
    serving: Option<(ClientId, CmdToken, StoreOp<K>)>,
    seq: u64,
}

impl<K> Default for OpQueue<K> {
    fn default() -> OpQueue<K> {
        OpQueue::new()
    }
}

impl<K> OpQueue<K> {
    /// An empty, idle store queue.
    pub fn new() -> OpQueue<K> {
        OpQueue {
            queue: VecDeque::new(),
            serving: None,
            seq: 0,
        }
    }

    /// Enqueue one operation. If the server was idle it starts at
    /// once: the caller must schedule a `ServiceDone` for the returned
    /// `(seq, dur)`, where `dur` came from `dur_of` on the op now
    /// being served.
    pub fn submit(
        &mut self,
        client: ClientId,
        token: CmdToken,
        op: StoreOp<K>,
        dur_of: impl FnOnce(&StoreOp<K>) -> Dur,
    ) -> Option<(u64, Dur)> {
        self.queue.push_back((client, token, op));
        if self.serving.is_none() {
            self.begin(dur_of)
        } else {
            None
        }
    }

    /// The service with sequence number `seq` finished. Returns the
    /// completed operation plus, if more work is queued, the next
    /// service to schedule. A stale `seq` returns `None`.
    #[allow(clippy::type_complexity)]
    pub fn service_done(
        &mut self,
        seq: u64,
        dur_of: impl FnOnce(&StoreOp<K>) -> Dur,
    ) -> Option<((ClientId, CmdToken, StoreOp<K>), Option<(u64, Dur)>)> {
        if seq != self.seq || self.serving.is_none() {
            return None;
        }
        let done = self.serving.take().expect("checked");
        let next = self.begin(dur_of);
        Some((done, next))
    }

    /// A client's command was cancelled: drop its queued operations
    /// and abort its in-service one. If the abort freed the server and
    /// work is queued, the next service starts (schedule its
    /// `ServiceDone`).
    pub fn cancel(
        &mut self,
        client: ClientId,
        token: CmdToken,
        dur_of: impl FnOnce(&StoreOp<K>) -> Dur,
    ) -> Option<(u64, Dur)> {
        self.queue.retain(|&(c, t, _)| (c, t) != (client, token));
        match &self.serving {
            Some((c, t, _)) if (*c, *t) == (client, token) => {
                self.serving = None;
                self.begin(dur_of)
            }
            _ => None,
        }
    }

    /// Operations waiting or in service (store congestion).
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.serving.is_some())
    }

    /// The operation currently being served, if any.
    pub fn serving(&self) -> Option<&(ClientId, CmdToken, StoreOp<K>)> {
        self.serving.as_ref()
    }

    fn begin(&mut self, dur_of: impl FnOnce(&StoreOp<K>) -> Dur) -> Option<(u64, Dur)> {
        debug_assert!(self.serving.is_none());
        let head = self.queue.pop_front()?;
        let dur = dur_of(&head.2);
        self.serving = Some(head);
        self.seq += 1;
        Some((self.seq, dur))
    }
}

/// Build one coord work-unit VM. Collective rounds complete in
/// seconds, not the submit scenario's minutes, so Aloha and Ethernet
/// run the exponential policy tightened to `backoff_base..backoff_cap`
/// (still with the ×[1,2) spreading factor); Fixed keeps hammering
/// with no delay.
pub fn coord_vm(
    script: &Script,
    discipline: Discipline,
    env: Env,
    seed: u64,
    backoff_base: Dur,
    backoff_cap: Dur,
) -> Vm {
    let mut vm = unit_vm(script, discipline, env, seed);
    if discipline != Discipline::Fixed {
        vm.set_default_backoff(BackoffPolicy::exponential(backoff_base, backoff_cap));
    }
    vm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur(ms: u64) -> Dur {
        Dur::from_millis(ms)
    }

    #[test]
    fn fifo_order_and_seq_invalidation() {
        let mut q: OpQueue<u32> = OpQueue::new();
        let cost = |op: &StoreOp<u32>| match op {
            StoreOp::Put(_) => dur(100),
            StoreOp::Get(_) => dur(50),
        };
        let first = q.submit(0, 1, StoreOp::Put(7), cost);
        assert_eq!(first, Some((1, dur(100))));
        assert_eq!(q.submit(1, 1, StoreOp::Get(7), cost), None);
        assert_eq!(q.depth(), 2);

        // Stale sequence numbers are ignored.
        assert!(q.service_done(99, cost).is_none());

        let ((c, t, op), next) = q.service_done(1, cost).expect("head served");
        assert_eq!((c, t, op), (0, 1, StoreOp::Put(7)));
        assert_eq!(next, Some((2, dur(50))));
        let ((c, _, _), next) = q.service_done(2, cost).expect("second served");
        assert_eq!(c, 1);
        assert!(next.is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn cancel_aborts_service_and_starts_next() {
        let mut q: OpQueue<u32> = OpQueue::new();
        let cost = |_: &StoreOp<u32>| dur(10);
        let (seq, _) = q.submit(0, 1, StoreOp::Get(1), cost).expect("starts");
        q.submit(1, 1, StoreOp::Get(2), cost);
        q.submit(1, 2, StoreOp::Get(3), cost);
        // Cancelling a queued (not serving) op removes it silently.
        assert!(q.cancel(1, 2, cost).is_none());
        // Cancelling the in-service op starts client 1's first get;
        // the aborted service's seq goes stale.
        let next = q.cancel(0, 1, cost).expect("next starts");
        assert!(q.service_done(seq, cost).is_none(), "aborted seq is stale");
        let ((c, t, _), more) = q.service_done(next.0, cost).expect("served");
        assert_eq!((c, t), (1, 1));
        assert!(more.is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn coord_vm_backoff_by_discipline() {
        let script = ftsh::parse("try for 2 seconds\n x\nend\n").unwrap();
        // Fixed keeps the no-delay policy; the others get the
        // tightened exponential. Observable via the VM default.
        let f = coord_vm(
            &script,
            Discipline::Fixed,
            Env::new(),
            1,
            dur(500),
            dur(8000),
        );
        let e = coord_vm(
            &script,
            Discipline::Ethernet,
            Env::new(),
            1,
            dur(500),
            dur(8000),
        );
        assert_eq!(f.default_backoff(), BackoffPolicy::None);
        assert_eq!(
            e.default_backoff(),
            BackoffPolicy::exponential(dur(500), dur(8000))
        );
    }
}
