//! The simulation driver: multiplexes a population of ftsh VMs over
//! one discrete-event queue.
//!
//! Each client of a scenario runs a real ftsh script on a real
//! [`Vm`]; the scenario implements [`CommandWorld`], which decides what
//! each command (`condor_submit`, `wget`, `write-output`, …) does to
//! the shared resources and when it completes. The driver owns the
//! plumbing: wake-ups at backoff instants and `try` deadlines, command
//! completion routing, cancellation of in-flight work, and work-unit
//! restarts.

use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Effect, Tick, Vm, VmStatus};
use retry::Time;
use simgrid::trace::SharedSink;
use simgrid::EventQueue;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of VM ticks across every driver on any thread.
/// The perf harness samples this around a run to normalise allocation
/// counts to allocations-per-tick; it never affects behaviour.
static VM_TICKS: AtomicU64 = AtomicU64::new(0);

/// Total VM ticks process-wide since start (monotonic).
pub fn vm_ticks_total() -> u64 {
    VM_TICKS.load(Ordering::Relaxed)
}

/// A client index within a scenario.
pub type ClientId = usize;

/// Events the driver understands; `W` is the scenario's own event type.
#[derive(Debug)]
pub enum SimEv<W> {
    /// Tick a client's VM (backoff wake-up or `try` deadline).
    Wake(ClientId),
    /// A command scheduled with [`ExecOutcome::At`] finished.
    CmdDone {
        /// Owning client.
        client: ClientId,
        /// The client's work-unit epoch when the command started (VM
        /// token numbering restarts with every unit, so completions
        /// from a finished unit must not leak into the next).
        epoch: u64,
        /// The VM's token for the command.
        token: CmdToken,
        /// Result to deliver.
        result: CmdResult,
    },
    /// A scenario-specific event.
    World(W),
}

/// What the world decides about a just-started command.
#[derive(Debug)]
pub enum ExecOutcome {
    /// Completes immediately with this result.
    Now(CmdResult),
    /// Completes at the given instant with this result, unless the VM
    /// cancels it first.
    At(Time, CmdResult),
    /// The world holds it and will complete it later by returning a
    /// [`Completion`] from [`CommandWorld::on_event`] (e.g. a transfer
    /// that starts only when a server queue drains).
    Held,
}

/// A deferred completion produced by the world.
#[derive(Debug)]
pub struct Completion {
    /// Owning client.
    pub client: ClientId,
    /// Command token.
    pub token: CmdToken,
    /// Result to deliver.
    pub result: CmdResult,
}

/// Access to the event queue (and clock) for world callbacks.
pub struct Ctx<'a, W> {
    /// The scenario's event queue; schedule [`SimEv::World`] events or
    /// [`SimEv::CmdDone`] completions here.
    pub queue: &'a mut EventQueue<SimEv<W>>,
    epochs: &'a [u64],
}

impl<W> Ctx<'_, W> {
    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Schedule a world event.
    pub fn schedule(&mut self, at: Time, ev: W) {
        self.queue.schedule(at, SimEv::World(ev));
    }

    /// Schedule the completion of a currently held command. The
    /// completion is stamped with the client's current work-unit
    /// epoch, so it is dropped automatically if the unit has moved on
    /// by the time it fires.
    pub fn schedule_completion(
        &mut self,
        at: Time,
        client: ClientId,
        token: CmdToken,
        result: CmdResult,
    ) {
        self.queue.schedule(
            at,
            SimEv::CmdDone {
                client,
                epoch: self.epochs[client],
                token,
                result,
            },
        );
    }
}

/// A scenario: what commands do, and what happens between work units.
pub trait CommandWorld: Sized {
    /// Scenario-specific event payload.
    type Ev;

    /// A client's VM started a command. Decide its fate.
    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ev>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome;

    /// A command the world was still holding (or that was scheduled via
    /// `At`) has been cancelled by a `try` deadline: release whatever
    /// it held.
    fn cancelled(&mut self, ctx: &mut Ctx<'_, Self::Ev>, client: ClientId, token: CmdToken);

    /// A scenario event fired. Return any held-command completions it
    /// triggers.
    fn on_event(&mut self, ctx: &mut Ctx<'_, Self::Ev>, ev: Self::Ev) -> Vec<Completion>;

    /// A client's script finished (one work unit). Return the next VM
    /// and the instant it should start, or `None` to retire the client.
    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ev>,
        client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)>;
}

/// The generic scenario engine.
pub struct SimDriver<W: CommandWorld> {
    /// The scenario state, accessible between runs for metrics.
    pub world: W,
    /// Aggregated ftsh log summary over every finished work unit —
    /// total attempts, backoffs, kills across the population.
    pub log_totals: ftsh::LogSummary,
    queue: EventQueue<SimEv<W::Ev>>,
    vms: Vec<Option<Vm>>,
    epochs: Vec<u64>,
    cancelled: HashSet<(ClientId, u64, CmdToken)>,
    /// Tokens currently live with the world or scheduled; used to
    /// suppress stale completions.
    live: HashSet<(ClientId, u64, CmdToken)>,
    /// Structured-trace sink shared by every client VM (and installed
    /// on replacement VMs as units complete). `None` ⇒ tracing off and
    /// the tick path pays nothing.
    tracer: Option<SharedSink>,
}

impl<W: CommandWorld> SimDriver<W> {
    /// Create a driver over `world` with the given client VMs, all
    /// starting at `T+0`.
    pub fn new(world: W, vms: Vec<Vm>) -> SimDriver<W> {
        let n = vms.len();
        SimDriver::with_starts(world, vms, vec![Time::ZERO; n])
    }

    /// Create a driver whose clients start at the given instants.
    /// Real populations never start in the same microsecond; staggered
    /// starts keep the t=0 thundering herd from defeating carrier
    /// sense before it has anything to measure.
    pub fn with_starts(world: W, vms: Vec<Vm>, starts: Vec<Time>) -> SimDriver<W> {
        assert_eq!(vms.len(), starts.len(), "one start time per client");
        let mut queue = EventQueue::new();
        for (c, &at) in starts.iter().enumerate() {
            queue.schedule(at, SimEv::Wake(c));
        }
        let n = vms.len();
        SimDriver {
            world,
            log_totals: ftsh::LogSummary::default(),
            queue,
            vms: vms.into_iter().map(Some).collect(),
            epochs: vec![0; n],
            cancelled: HashSet::new(),
            live: HashSet::new(),
            tracer: None,
        }
    }

    /// Schedule an initial scenario event (consumer ticks, samplers…).
    pub fn schedule_world(&mut self, at: Time, ev: W::Ev) {
        self.queue.schedule(at, SimEv::World(ev));
    }

    /// Install a structured-trace sink: every client VM (current and
    /// future replacements) records attempt spans, backoffs, and
    /// command boundaries into it, labelled by client index.
    pub fn set_trace(&mut self, sink: SharedSink) {
        for (c, vm) in self.vms.iter_mut().enumerate() {
            if let Some(vm) = vm {
                vm.set_tracer(sink.clone(), c as i64);
            }
        }
        self.tracer = Some(sink);
    }

    /// The trace sink, if one is installed (for worlds that emit their
    /// own records).
    pub fn trace(&self) -> Option<&SharedSink> {
        self.tracer.as_ref()
    }

    /// Events popped from this run's own queue — the per-run
    /// engine-work metric (unlike the deprecated process-global
    /// [`simgrid::events_popped_total`], concurrent sweep workers do
    /// not contaminate each other here).
    pub fn events_popped(&self) -> u64 {
        self.queue.popped()
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Run until the queue drains or virtual time would pass `end`.
    /// Events strictly after `end` remain unpopped, so the final clock
    /// never exceeds `end`.
    pub fn run_until(&mut self, end: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            match ev {
                SimEv::Wake(c) => self.tick_client(c, now),
                SimEv::CmdDone {
                    client,
                    epoch,
                    token,
                    result,
                } => self.deliver(client, epoch, token, result, now),
                SimEv::World(w) => {
                    let completions = {
                        let mut ctx = Ctx {
                            queue: &mut self.queue,
                            epochs: &self.epochs,
                        };
                        self.world.on_event(&mut ctx, w)
                    };
                    for c in completions {
                        let epoch = self.epochs[c.client];
                        self.deliver(c.client, epoch, c.token, c.result, now);
                    }
                }
            }
        }
    }

    fn deliver(
        &mut self,
        client: ClientId,
        epoch: u64,
        token: CmdToken,
        result: CmdResult,
        now: Time,
    ) {
        if self.cancelled.remove(&(client, epoch, token)) {
            return; // the try deadline beat the completion
        }
        if epoch != self.epochs[client] || !self.live.remove(&(client, epoch, token)) {
            return; // unit already retired
        }
        if let Some(vm) = self.vms[client].as_mut() {
            vm.complete(token, result);
        }
        self.tick_client(client, now);
    }

    fn tick_client(&mut self, client: ClientId, now: Time) {
        loop {
            let Some(vm) = self.vms[client].as_mut() else {
                return;
            };
            VM_TICKS.fetch_add(1, Ordering::Relaxed);
            let Tick { effects, status } = vm.tick(now);
            let mut completed_inline = false;
            for eff in effects {
                match eff {
                    Effect::Start { token, spec, .. } => {
                        let outcome = {
                            let mut ctx = Ctx {
                                queue: &mut self.queue,
                                epochs: &self.epochs,
                            };
                            self.world.exec(&mut ctx, client, token, &spec)
                        };
                        match outcome {
                            ExecOutcome::Now(result) => {
                                let vm = self.vms[client].as_mut().expect("vm present");
                                vm.complete(token, result);
                                completed_inline = true;
                            }
                            ExecOutcome::At(at, result) => {
                                let epoch = self.epochs[client];
                                self.live.insert((client, epoch, token));
                                self.queue.schedule(
                                    at,
                                    SimEv::CmdDone {
                                        client,
                                        epoch,
                                        token,
                                        result,
                                    },
                                );
                            }
                            ExecOutcome::Held => {
                                let epoch = self.epochs[client];
                                self.live.insert((client, epoch, token));
                            }
                        }
                    }
                    Effect::Cancel { token } => {
                        let epoch = self.epochs[client];
                        if self.live.remove(&(client, epoch, token)) {
                            self.cancelled.insert((client, epoch, token));
                            let mut ctx = Ctx {
                                queue: &mut self.queue,
                                epochs: &self.epochs,
                            };
                            self.world.cancelled(&mut ctx, client, token);
                        }
                    }
                }
            }
            if completed_inline {
                continue; // commands finished synchronously: step again
            }
            match status {
                VmStatus::Done { success } => {
                    // Retire the unit; its epoch's stale completions
                    // will be dropped on arrival.
                    self.epochs[client] += 1;
                    if let Some(vm) = &self.vms[client] {
                        self.log_totals += vm.log().summary();
                    }
                    self.vms[client] = None;
                    let next = {
                        let mut ctx = Ctx {
                            queue: &mut self.queue,
                            epochs: &self.epochs,
                        };
                        self.world.unit_done(&mut ctx, client, success)
                    };
                    match next {
                        Some((mut vm, at)) => {
                            if let Some(sink) = &self.tracer {
                                vm.set_tracer(sink.clone(), client as i64);
                            }
                            self.vms[client] = Some(vm);
                            if at <= now {
                                continue; // start immediately
                            }
                            self.queue.schedule(at, SimEv::Wake(client));
                            return;
                        }
                        None => return, // client retired
                    }
                }
                VmStatus::Running { next_wake: Some(t) } => {
                    self.queue.schedule(t.max(now), SimEv::Wake(client));
                    return;
                }
                VmStatus::Running { next_wake: None } => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::parse;
    use retry::Dur;

    /// A toy world: `work` succeeds after 2 s; `flaky` fails the first
    /// `fail_first` times then behaves like `work`; units restart 1 s
    /// after finishing; clients retire after `max_units`.
    struct ToyWorld {
        fail_first: u32,
        failures_injected: u32,
        successes: u32,
        units: u32,
        max_units: u32,
        script: &'static str,
        cancel_count: u32,
    }

    impl ToyWorld {
        fn vm(&self, seed: u64) -> Vm {
            Vm::with_seed(&parse(self.script).unwrap(), seed)
        }
    }

    impl CommandWorld for ToyWorld {
        type Ev = ();

        fn exec(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            _token: CmdToken,
            spec: &CommandSpec,
        ) -> ExecOutcome {
            match spec.program() {
                "work" => ExecOutcome::At(ctx.now() + Dur::from_secs(2), CmdResult::ok("")),
                "flaky" => {
                    if self.failures_injected < self.fail_first {
                        self.failures_injected += 1;
                        ExecOutcome::Now(CmdResult::fail())
                    } else {
                        ExecOutcome::At(ctx.now() + Dur::from_secs(2), CmdResult::ok(""))
                    }
                }
                "hang" => ExecOutcome::Held,
                _ => ExecOutcome::Now(CmdResult::fail()),
            }
        }

        fn cancelled(&mut self, _ctx: &mut Ctx<'_, ()>, _client: ClientId, _token: CmdToken) {
            self.cancel_count += 1;
        }

        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _ev: ()) -> Vec<Completion> {
            Vec::new()
        }

        fn unit_done(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            success: bool,
        ) -> Option<(Vm, Time)> {
            self.units += 1;
            if success {
                self.successes += 1;
            }
            if self.units >= self.max_units {
                return None;
            }
            Some((self.vm(self.units as u64), ctx.now() + Dur::from_secs(1)))
        }
    }

    #[test]
    fn repeated_units_accumulate() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 5,
            script: "work\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 5);
        // 5 units x (2s work + 1s gap) minus the trailing gap.
        assert_eq!(d.now(), Time::from_secs(14));
    }

    #[test]
    fn retries_inside_try_use_backoff() {
        let world = ToyWorld {
            fail_first: 2,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 1,
            script: "try for 1 hour\n flaky\nend\n",
            cancel_count: 0,
        };
        let vm = world.vm(7);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 1);
        // Two instant failures with backoff 1..2 then 2..4 s, then 2 s
        // of work: total in [5, 8] s.
        let t = d.now().as_secs_f64();
        assert!((5.0..=8.0).contains(&t), "elapsed {t}");
    }

    #[test]
    fn held_command_cancelled_by_deadline() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 1,
            script: "try for 10 seconds or 1 times\n hang\nend\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 0);
        assert_eq!(d.world.cancel_count, 1, "world told about the cancel");
        assert_eq!(d.now(), Time::from_secs(10));
    }

    #[test]
    fn many_clients_interleave() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 30, // 10 clients x 3 units
            script: "work\n",
            cancel_count: 0,
        };
        let vms = (0..10).map(|i| world.vm(i)).collect();
        let mut d = SimDriver::new(world, vms);
        d.run_until(Time::from_secs(1000));
        // The budget is a shared counter checked on completion, so the
        // clients still in flight when it trips also land: between 30
        // and 39 units complete, then everyone retires.
        assert!(
            (30..40).contains(&d.world.units),
            "units = {}",
            d.world.units
        );
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: u32::MAX,
            script: "work\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(30));
        assert!(d.now() <= Time::from_secs(30));
        let units_at_30 = d.world.units;
        assert!(units_at_30 >= 9, "about one unit per 3s: {units_at_30}");
        // Resume: more work happens.
        d.run_until(Time::from_secs(60));
        assert!(d.world.units > units_at_30);
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;
    use ftsh::parse;
    use retry::Dur;

    /// A world whose single command is Held forever; units time out via
    /// `try` and restart. Completions scheduled for dead units must be
    /// dropped, even though the new unit reuses token numbers.
    struct StaleWorld {
        delivered: u32,
        units: u32,
    }

    impl CommandWorld for StaleWorld {
        type Ev = ();

        fn exec(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            client: ClientId,
            token: CmdToken,
            _spec: &CommandSpec,
        ) -> ExecOutcome {
            // Schedule a completion far in the future — after the unit
            // will have died and been replaced.
            ctx.schedule_completion(
                ctx.now() + Dur::from_secs(100),
                client,
                token,
                CmdResult::ok("stale"),
            );
            ExecOutcome::Held
        }

        fn cancelled(&mut self, _ctx: &mut Ctx<'_, ()>, _c: ClientId, _t: CmdToken) {}

        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _ev: ()) -> Vec<Completion> {
            Vec::new()
        }

        fn unit_done(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            success: bool,
        ) -> Option<(Vm, Time)> {
            self.units += 1;
            if success {
                self.delivered += 1;
            }
            if self.units >= 3 {
                return None;
            }
            let script = parse("try for 5 seconds or 1 times\n hang\nend\n").unwrap();
            Some((Vm::with_seed(&script, self.units as u64), ctx.now()))
        }
    }

    #[test]
    fn stale_completions_never_cross_unit_epochs() {
        let script = parse("try for 5 seconds or 1 times\n hang\nend\n").unwrap();
        let vm = Vm::with_seed(&script, 0);
        let world = StaleWorld {
            delivered: 0,
            units: 0,
        };
        let mut d = SimDriver::new(world, vec![vm]);
        // Run long enough for all stale completions (t+100s) to fire.
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.units, 3, "three units each timed out");
        assert_eq!(
            d.world.delivered, 0,
            "no stale completion may succeed a later unit"
        );
    }
}
