//! The simulation driver: multiplexes a population of ftsh VMs over
//! one discrete-event queue.
//!
//! Each client of a scenario runs a real ftsh script on a real
//! [`Vm`]; the scenario implements [`CommandWorld`], which decides what
//! each command (`condor_submit`, `wget`, `write-output`, …) does to
//! the shared resources and when it completes. The driver owns the
//! plumbing: wake-ups at backoff instants and `try` deadlines, command
//! completion routing, cancellation of in-flight work, and work-unit
//! restarts.

use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Effect, Vm, VmStatus};
use retry::Time;
use simgrid::faults::{FaultKind, FaultPlan};
use simgrid::trace::{emit, SharedSink, TraceEv, NO_ID};
use simgrid::{EventQueue, SimRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of VM ticks across every driver on any thread.
/// The perf harness samples this around a run to normalise allocation
/// counts to allocations-per-tick; it never affects behaviour.
static VM_TICKS: AtomicU64 = AtomicU64::new(0);

/// Total VM ticks process-wide since start (monotonic).
pub fn vm_ticks_total() -> u64 {
    VM_TICKS.load(Ordering::Relaxed)
}

/// A client index within a scenario.
pub type ClientId = usize;

/// Events the driver understands; `W` is the scenario's own event type.
#[derive(Debug)]
pub enum SimEv<W> {
    /// Tick a client's VM (backoff wake-up or `try` deadline).
    Wake(ClientId),
    /// A command scheduled with [`ExecOutcome::At`] finished.
    CmdDone {
        /// Owning client.
        client: ClientId,
        /// The client's work-unit epoch when the command started (VM
        /// token numbering restarts with every unit, so completions
        /// from a finished unit must not leak into the next).
        epoch: u64,
        /// The VM's token for the command.
        token: CmdToken,
        /// Result to deliver.
        result: CmdResult,
    },
    /// A scenario-specific event.
    World(W),
    /// An armed [`FaultPlan`] spec (by index) triggers now.
    Fault(usize),
    /// A client killed by [`FaultKind::ClientKill`] reaches its
    /// restart instant; the world is asked for a replacement VM.
    Revive(ClientId),
}

/// What the world decides about a just-started command.
#[derive(Debug)]
pub enum ExecOutcome {
    /// Completes immediately with this result.
    Now(CmdResult),
    /// Completes at the given instant with this result, unless the VM
    /// cancels it first.
    At(Time, CmdResult),
    /// The world holds it and will complete it later by returning a
    /// [`Completion`] from [`CommandWorld::on_event`] (e.g. a transfer
    /// that starts only when a server queue drains).
    Held,
}

/// A deferred completion produced by the world.
#[derive(Debug)]
pub struct Completion {
    /// Owning client.
    pub client: ClientId,
    /// Command token.
    pub token: CmdToken,
    /// Result to deliver.
    pub result: CmdResult,
}

/// Access to the event queue (and clock) for world callbacks.
pub struct Ctx<'a, W> {
    /// The scenario's event queue; schedule [`SimEv::World`] events or
    /// [`SimEv::CmdDone`] completions here.
    pub queue: &'a mut EventQueue<SimEv<W>>,
    epochs: &'a [u64],
}

impl<W> Ctx<'_, W> {
    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Schedule a world event.
    pub fn schedule(&mut self, at: Time, ev: W) {
        self.queue.schedule(at, SimEv::World(ev));
    }

    /// Schedule the completion of a currently held command. The
    /// completion is stamped with the client's current work-unit
    /// epoch, so it is dropped automatically if the unit has moved on
    /// by the time it fires.
    pub fn schedule_completion(
        &mut self,
        at: Time,
        client: ClientId,
        token: CmdToken,
        result: CmdResult,
    ) {
        self.queue.schedule_keyed(
            client,
            at,
            SimEv::CmdDone {
                client,
                epoch: self.epochs[client],
                token,
                result,
            },
        );
    }
}

/// A scenario: what commands do, and what happens between work units.
pub trait CommandWorld: Sized {
    /// Scenario-specific event payload.
    type Ev;

    /// A client's VM started a command. Decide its fate.
    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ev>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome;

    /// A command the world was still holding (or that was scheduled via
    /// `At`) has been cancelled by a `try` deadline: release whatever
    /// it held.
    fn cancelled(&mut self, ctx: &mut Ctx<'_, Self::Ev>, client: ClientId, token: CmdToken);

    /// A scenario event fired. Return any held-command completions it
    /// triggers.
    fn on_event(&mut self, ctx: &mut Ctx<'_, Self::Ev>, ev: Self::Ev) -> Vec<Completion>;

    /// A client's script finished (one work unit). Return the next VM
    /// and the instant it should start, or `None` to retire the client.
    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ev>,
        client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)>;

    /// An armed fault plan injected a world-physical fault (schedd
    /// kill/restart, ENOSPC window, free-space lie, black-hole toggle).
    /// Return any held-command completions the fault releases. The
    /// default ignores the fault — worlds opt in to the kinds they
    /// model.
    fn inject_fault(&mut self, ctx: &mut Ctx<'_, Self::Ev>, kind: &FaultKind) -> Vec<Completion> {
        let _ = (ctx, kind);
        Vec::new()
    }

    /// A client killed by a [`FaultKind::ClientKill`] injection has
    /// reached its restart instant. Return the replacement VM and the
    /// instant it should start, or `None` to leave the client dead.
    /// The default leaves it dead — worlds that model rank recovery
    /// (the coordinated workloads) opt in.
    fn restart_client(
        &mut self,
        ctx: &mut Ctx<'_, Self::Ev>,
        client: ClientId,
    ) -> Option<(Vm, Time)> {
        let _ = (ctx, client);
        None
    }
}

/// Driver-side state for an armed [`FaultPlan`]; absent (one `Option`
/// test) when no plan is armed, so the default path stays
/// allocation-free.
struct FaultState {
    plan: FaultPlan,
    /// The plan's private RNG stream (loss draws only).
    rng: SimRng,
    /// Triggers fired so far, per spec index.
    fired: Vec<u32>,
    /// Active message-loss windows: `(channel, probability, until)`.
    loss: Vec<(String, f64, Time)>,
    /// Active latency-spike windows: `(channel, extra, until)`.
    latency: Vec<(String, retry::Dur, Time)>,
    /// Per-client VM clock offsets in microseconds.
    skew_us: Vec<i64>,
    /// Monotonicity clamp for each client's skewed clock (a VM must
    /// never observe time running backwards when skew changes mid-run).
    last_vm_now: Vec<Time>,
    /// Program name per live asynchronous command, kept only when the
    /// plan contains channel faults.
    programs: HashMap<(ClientId, u64, CmdToken), String>,
    track_programs: bool,
    /// Completions already delayed once by a latency spike (so a spike
    /// adds its extra exactly once per message).
    delayed: HashSet<(ClientId, u64, CmdToken)>,
}

impl FaultState {
    fn new(plan: FaultPlan, n_clients: usize) -> FaultState {
        let track_programs = plan.specs.iter().any(|s| {
            matches!(
                s.kind,
                FaultKind::MsgLoss { .. } | FaultKind::LatencySpike { .. }
            )
        });
        let rng = plan.rng();
        let fired = vec![0; plan.specs.len()];
        FaultState {
            plan,
            rng,
            fired,
            loss: Vec::new(),
            latency: Vec::new(),
            skew_us: vec![0; n_clients],
            last_vm_now: vec![Time::ZERO; n_clients],
            programs: HashMap::new(),
            track_programs,
            delayed: HashSet::new(),
        }
    }

    /// The extra delay an active latency spike adds to a completion of
    /// `program` arriving at `now`, if any.
    fn latency_extra(&self, program: &str, now: Time) -> Option<retry::Dur> {
        self.latency
            .iter()
            .filter(|(ch, _, until)| ch == program && now < *until)
            .map(|(_, extra, _)| *extra)
            .max()
    }

    /// Whether an active loss window swallows a completion of
    /// `program` arriving at `now` (draws from the plan RNG stream).
    fn lose(&mut self, program: &str, now: Time) -> bool {
        let p: f64 = self
            .loss
            .iter()
            .filter(|(ch, _, until)| ch == program && now < *until)
            .map(|(_, p, _)| *p)
            .fold(0.0, f64::max);
        p > 0.0 && self.rng.chance(p)
    }
}

/// The generic scenario engine.
pub struct SimDriver<W: CommandWorld> {
    /// The scenario state, accessible between runs for metrics.
    pub world: W,
    /// Aggregated ftsh log summary over every finished work unit —
    /// total attempts, backoffs, kills across the population.
    pub log_totals: ftsh::LogSummary,
    queue: EventQueue<SimEv<W::Ev>>,
    vms: Vec<Option<Vm>>,
    epochs: Vec<u64>,
    cancelled: HashSet<(ClientId, u64, CmdToken)>,
    /// Tokens currently live with the world or scheduled; used to
    /// suppress stale completions.
    live: HashSet<(ClientId, u64, CmdToken)>,
    /// Structured-trace sink shared by every client VM (and installed
    /// on replacement VMs as units complete). `None` ⇒ tracing off and
    /// the tick path pays nothing.
    tracer: Option<SharedSink>,
    /// Armed fault plan, if any. `None` ⇒ faults off and the event
    /// loop pays one `Option` test.
    faults: Option<FaultState>,
    /// Reusable effects buffer swapped into each VM tick, so the hot
    /// loop never allocates a fresh `Vec` per tick.
    effects_buf: Vec<Effect>,
}

impl<W: CommandWorld> SimDriver<W> {
    /// Create a driver over `world` with the given client VMs, all
    /// starting at `T+0`.
    pub fn new(world: W, vms: Vec<Vm>) -> SimDriver<W> {
        let n = vms.len();
        SimDriver::with_starts(world, vms, vec![Time::ZERO; n])
    }

    /// Create a driver whose clients start at the given instants.
    /// Real populations never start in the same microsecond; staggered
    /// starts keep the t=0 thundering herd from defeating carrier
    /// sense before it has anything to measure.
    pub fn with_starts(world: W, vms: Vec<Vm>, starts: Vec<Time>) -> SimDriver<W> {
        assert_eq!(vms.len(), starts.len(), "one start time per client");
        let mut queue = EventQueue::new();
        for (c, &at) in starts.iter().enumerate() {
            queue.schedule_keyed(c, at, SimEv::Wake(c));
        }
        let n = vms.len();
        let vms: Vec<Option<Vm>> = vms
            .into_iter()
            .map(|mut vm| {
                // The driver only ever reads the O(1) log summary;
                // retaining full event vectors across a large
                // population is pure allocation churn.
                vm.set_log_detail(false);
                Some(vm)
            })
            .collect();
        SimDriver {
            world,
            log_totals: ftsh::LogSummary::default(),
            queue,
            vms,
            epochs: vec![0; n],
            cancelled: HashSet::new(),
            live: HashSet::new(),
            tracer: None,
            faults: None,
            effects_buf: Vec::new(),
        }
    }

    /// Arm a fault plan: every time-triggered injection spec is
    /// scheduled on the event queue and will fire deterministically
    /// from the sim clock plus the plan's private RNG stream, emitting
    /// a `fault` trace record at each trigger. Physics specs
    /// (consumed by worlds at construction) are not scheduled. Arming
    /// an empty plan schedules nothing and draws nothing, so the
    /// default path is unchanged.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        for (i, spec) in plan.injections() {
            self.queue.schedule(spec.at, SimEv::Fault(i));
        }
        let n = self.vms.len();
        self.faults = Some(FaultState::new(plan, n));
    }

    /// Schedule an initial scenario event (consumer ticks, samplers…).
    pub fn schedule_world(&mut self, at: Time, ev: W::Ev) {
        self.queue.schedule(at, SimEv::World(ev));
    }

    /// Install a structured-trace sink: every client VM (current and
    /// future replacements) records attempt spans, backoffs, and
    /// command boundaries into it, labelled by client index.
    pub fn set_trace(&mut self, sink: SharedSink) {
        for (c, vm) in self.vms.iter_mut().enumerate() {
            if let Some(vm) = vm {
                vm.set_tracer(sink.clone(), c as i64);
            }
        }
        self.tracer = Some(sink);
    }

    /// The trace sink, if one is installed (for worlds that emit their
    /// own records).
    pub fn trace(&self) -> Option<&SharedSink> {
        self.tracer.as_ref()
    }

    /// Events popped from this run's own queue — the per-run
    /// engine-work metric. Per-queue, so concurrent sweep workers do
    /// not contaminate each other's counts.
    pub fn events_popped(&self) -> u64 {
        self.queue.popped()
    }

    /// Past-schedules clamped to `now` by this run's queue. Nonzero
    /// means some event asked for an instant already in the past and
    /// was silently moved forward — worth surfacing in run stats.
    pub fn clamps(&self) -> u64 {
        self.queue.clamped()
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Run until the queue drains or virtual time would pass `end`.
    /// Events strictly after `end` remain unpopped, so the final clock
    /// never exceeds `end`.
    pub fn run_until(&mut self, end: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            match ev {
                SimEv::Wake(c) => self.tick_client(c, now),
                SimEv::CmdDone {
                    client,
                    epoch,
                    token,
                    result,
                } => self.deliver(client, epoch, token, result, now),
                SimEv::World(w) => {
                    let completions = {
                        let mut ctx = Ctx {
                            queue: &mut self.queue,
                            epochs: &self.epochs,
                        };
                        self.world.on_event(&mut ctx, w)
                    };
                    for c in completions {
                        let epoch = self.epochs[c.client];
                        self.deliver(c.client, epoch, c.token, c.result, now);
                    }
                }
                SimEv::Fault(i) => self.trigger_fault(i, now),
                SimEv::Revive(c) => self.revive_client(c, now),
            }
        }
    }

    /// Fire spec `i` of the armed plan at `now`: emit the trace
    /// record, apply (or forward) the fault, and reschedule the next
    /// trigger of a repeating spec.
    fn trigger_fault(&mut self, i: usize, now: Time) {
        let Some(fs) = &mut self.faults else {
            return; // plan disarmed after scheduling; nothing to do
        };
        let spec = fs.plan.specs[i].clone();
        fs.fired[i] += 1;
        if fs.fired[i] < spec.count {
            if let Some(every) = spec.every {
                self.queue.schedule(now + every, SimEv::Fault(i));
            }
        }
        emit(
            &self.tracer,
            now,
            NO_ID,
            NO_ID,
            TraceEv::FaultInjected {
                kind: spec.kind.tag().to_string(),
                detail: spec.kind.detail(),
            },
        );
        match &spec.kind {
            FaultKind::MsgLoss {
                channel,
                probability,
                duration,
            } => fs
                .loss
                .push((channel.clone(), *probability, now + *duration)),
            FaultKind::LatencySpike {
                channel,
                extra,
                duration,
            } => fs.latency.push((channel.clone(), *extra, now + *duration)),
            FaultKind::ClockSkew { client, skew_us } => {
                if let Some(s) = fs.skew_us.get_mut(*client) {
                    *s = *skew_us;
                }
            }
            FaultKind::ClientKill { client, restart } => {
                let (c, restart) = (*client, *restart);
                let killed = self.kill_client(c);
                // Let the world observe the kill (round accounting,
                // resource bookkeeping) after the VM is gone.
                let completions = {
                    let mut ctx = Ctx {
                        queue: &mut self.queue,
                        epochs: &self.epochs,
                    };
                    self.world.inject_fault(&mut ctx, &spec.kind)
                };
                for comp in completions {
                    let epoch = self.epochs[comp.client];
                    self.deliver(comp.client, epoch, comp.token, comp.result, now);
                }
                // Only a kill that found a live VM earns a revival: a
                // client that already retired (or was killed twice)
                // must not be resurrected by a stale restart delay.
                if let (true, Some(delay)) = (killed, restart) {
                    self.queue.schedule_keyed(c, now + delay, SimEv::Revive(c));
                }
            }
            kind => {
                let completions = {
                    let mut ctx = Ctx {
                        queue: &mut self.queue,
                        epochs: &self.epochs,
                    };
                    self.world.inject_fault(&mut ctx, kind)
                };
                for c in completions {
                    let epoch = self.epochs[c.client];
                    self.deliver(c.client, epoch, c.token, c.result, now);
                }
            }
        }
    }

    /// Tear down client `client` right now: its VM is dropped
    /// mid-unit, every in-flight command is cancelled (so the world
    /// releases held resources), and the epoch bump swallows any
    /// completion already in the queue. The client stays dead until a
    /// [`SimEv::Revive`] asks the world for a replacement. Returns
    /// whether a live VM was actually torn down.
    fn kill_client(&mut self, client: ClientId) -> bool {
        let Some(slot) = self.vms.get_mut(client) else {
            return false; // plan named a client outside this population
        };
        let Some(vm) = slot.take() else {
            return false; // already dead (or retired): kill is a no-op
        };
        self.log_totals += vm.log().summary();
        let epoch = self.epochs[client];
        let mut in_flight: Vec<(ClientId, u64, CmdToken)> = self
            .live
            .iter()
            .filter(|k| k.0 == client && k.1 == epoch)
            .copied()
            .collect();
        in_flight.sort_unstable(); // deterministic world-callback order
        for key in in_flight {
            self.live.remove(&key);
            if let Some(fs) = &mut self.faults {
                fs.programs.remove(&key);
                fs.delayed.remove(&key);
            }
            let mut ctx = Ctx {
                queue: &mut self.queue,
                epochs: &self.epochs,
            };
            self.world.cancelled(&mut ctx, client, key.2);
        }
        self.epochs[client] += 1;
        true
    }

    /// A killed client's restart delay elapsed: ask the world for a
    /// replacement VM and start it. A world that returns `None` (the
    /// default) leaves the client dead.
    fn revive_client(&mut self, client: ClientId, now: Time) {
        match self.vms.get(client) {
            Some(None) => {}
            _ => return, // still alive, or out of range
        }
        let next = {
            let mut ctx = Ctx {
                queue: &mut self.queue,
                epochs: &self.epochs,
            };
            self.world.restart_client(&mut ctx, client)
        };
        if let Some((mut vm, at)) = next {
            vm.set_log_detail(false);
            if let Some(sink) = &self.tracer {
                vm.set_tracer(sink.clone(), client as i64);
            }
            self.vms[client] = Some(vm);
            if at <= now {
                self.tick_client(client, now);
            } else {
                self.queue.schedule_keyed(client, at, SimEv::Wake(client));
            }
        }
    }

    /// The instant client `client`'s VM observes when ticked at `now`:
    /// the sim clock plus any armed clock skew, clamped monotonic.
    fn vm_now(&mut self, client: ClientId, now: Time) -> Time {
        match &mut self.faults {
            None => now,
            Some(fs) => {
                let skew = fs.skew_us.get(client).copied().unwrap_or(0);
                let skewed = if skew >= 0 {
                    now + retry::Dur::from_micros(skew as u64)
                } else {
                    Time::from_micros(now.as_micros().saturating_sub(skew.unsigned_abs()))
                };
                let clamped = skewed.max(fs.last_vm_now[client]);
                fs.last_vm_now[client] = clamped;
                clamped
            }
        }
    }

    /// Map a wake instant from client `client`'s (possibly skewed) VM
    /// timeline back onto the sim clock.
    fn unskew(&self, client: ClientId, t: Time) -> Time {
        match &self.faults {
            None => t,
            Some(fs) => {
                let skew = fs.skew_us.get(client).copied().unwrap_or(0);
                if skew >= 0 {
                    Time::from_micros(t.as_micros().saturating_sub(skew as u64))
                } else {
                    t + retry::Dur::from_micros(skew.unsigned_abs())
                }
            }
        }
    }

    fn deliver(
        &mut self,
        client: ClientId,
        epoch: u64,
        token: CmdToken,
        result: CmdResult,
        now: Time,
    ) {
        let key = (client, epoch, token);
        if self.cancelled.remove(&key) {
            if let Some(fs) = &mut self.faults {
                fs.programs.remove(&key);
                fs.delayed.remove(&key);
            }
            return; // the try deadline beat the completion
        }
        if epoch != self.epochs[client] || !self.live.contains(&key) {
            return; // unit already retired
        }
        let mut result = result;
        if let Some(fs) = &mut self.faults {
            if fs.track_programs {
                if let Some(program) = fs.programs.get(&key) {
                    // A latency spike holds the message once; on its
                    // delayed arrival it is subject to loss as usual.
                    if !fs.delayed.contains(&key) {
                        if let Some(extra) = fs.latency_extra(program, now) {
                            fs.delayed.insert(key);
                            self.queue.schedule_keyed(
                                client,
                                now + extra,
                                SimEv::CmdDone {
                                    client,
                                    epoch,
                                    token,
                                    result,
                                },
                            );
                            return;
                        }
                    }
                    let program = program.clone();
                    if fs.lose(&program, now) {
                        result = CmdResult::fail();
                    }
                }
                fs.programs.remove(&key);
                fs.delayed.remove(&key);
            }
        }
        self.live.remove(&key);
        if let Some(vm) = self.vms[client].as_mut() {
            vm.complete(token, result);
        }
        self.tick_client(client, now);
    }

    fn tick_client(&mut self, client: ClientId, now: Time) {
        let mut effects = std::mem::take(&mut self.effects_buf);
        'driving: loop {
            let vm_now = self.vm_now(client, now);
            let Some(vm) = self.vms[client].as_mut() else {
                break 'driving;
            };
            VM_TICKS.fetch_add(1, Ordering::Relaxed);
            let status = vm.tick_into(vm_now, &mut effects);
            let mut completed_inline = false;
            for eff in effects.drain(..) {
                match eff {
                    Effect::Start { token, spec, .. } => {
                        let outcome = {
                            let mut ctx = Ctx {
                                queue: &mut self.queue,
                                epochs: &self.epochs,
                            };
                            self.world.exec(&mut ctx, client, token, &spec)
                        };
                        match outcome {
                            ExecOutcome::Now(result) => {
                                let vm = self.vms[client].as_mut().expect("vm present");
                                vm.complete(token, result);
                                completed_inline = true;
                            }
                            ExecOutcome::At(at, result) => {
                                let epoch = self.epochs[client];
                                self.live.insert((client, epoch, token));
                                if let Some(fs) = &mut self.faults {
                                    if fs.track_programs {
                                        fs.programs.insert(
                                            (client, epoch, token),
                                            spec.program().to_string(),
                                        );
                                    }
                                }
                                self.queue.schedule_keyed(
                                    client,
                                    at,
                                    SimEv::CmdDone {
                                        client,
                                        epoch,
                                        token,
                                        result,
                                    },
                                );
                            }
                            ExecOutcome::Held => {
                                let epoch = self.epochs[client];
                                self.live.insert((client, epoch, token));
                                if let Some(fs) = &mut self.faults {
                                    if fs.track_programs {
                                        fs.programs.insert(
                                            (client, epoch, token),
                                            spec.program().to_string(),
                                        );
                                    }
                                }
                            }
                        }
                        // The spec has served its purpose; hand its
                        // argv buffer back for the next dispatch.
                        if let Some(vm) = self.vms[client].as_mut() {
                            vm.recycle_spec(spec);
                        }
                    }
                    Effect::Cancel { token } => {
                        let epoch = self.epochs[client];
                        if self.live.remove(&(client, epoch, token)) {
                            self.cancelled.insert((client, epoch, token));
                            if let Some(fs) = &mut self.faults {
                                fs.programs.remove(&(client, epoch, token));
                            }
                            let mut ctx = Ctx {
                                queue: &mut self.queue,
                                epochs: &self.epochs,
                            };
                            self.world.cancelled(&mut ctx, client, token);
                        }
                    }
                }
            }
            if completed_inline {
                continue; // commands finished synchronously: step again
            }
            match status {
                VmStatus::Done { success } => {
                    // Retire the unit; its epoch's stale completions
                    // will be dropped on arrival.
                    self.epochs[client] += 1;
                    let mut retired = self.vms[client].take();
                    if let Some(vm) = &retired {
                        self.log_totals += vm.log().summary();
                    }
                    let next = {
                        let mut ctx = Ctx {
                            queue: &mut self.queue,
                            epochs: &self.epochs,
                        };
                        self.world.unit_done(&mut ctx, client, success)
                    };
                    match next {
                        Some((mut vm, at)) => {
                            if let Some(old) = retired.as_mut() {
                                vm.adopt_spares(old);
                            }
                            vm.set_log_detail(false);
                            if let Some(sink) = &self.tracer {
                                vm.set_tracer(sink.clone(), client as i64);
                            }
                            self.vms[client] = Some(vm);
                            if at <= now {
                                continue; // start immediately
                            }
                            self.queue.schedule_keyed(client, at, SimEv::Wake(client));
                            break 'driving;
                        }
                        None => break 'driving, // client retired
                    }
                }
                VmStatus::Running { next_wake: Some(t) } => {
                    let t = self.unskew(client, t);
                    self.queue
                        .schedule_keyed(client, t.max(now), SimEv::Wake(client));
                    break 'driving;
                }
                VmStatus::Running { next_wake: None } => break 'driving,
            }
        }
        self.effects_buf = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::parse;
    use retry::Dur;

    /// A toy world: `work` succeeds after 2 s; `flaky` fails the first
    /// `fail_first` times then behaves like `work`; units restart 1 s
    /// after finishing; clients retire after `max_units`.
    struct ToyWorld {
        fail_first: u32,
        failures_injected: u32,
        successes: u32,
        units: u32,
        max_units: u32,
        script: &'static str,
        cancel_count: u32,
    }

    impl ToyWorld {
        fn vm(&self, seed: u64) -> Vm {
            Vm::with_seed(&parse(self.script).unwrap(), seed)
        }
    }

    impl CommandWorld for ToyWorld {
        type Ev = ();

        fn exec(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            _token: CmdToken,
            spec: &CommandSpec,
        ) -> ExecOutcome {
            match spec.program() {
                "work" => ExecOutcome::At(ctx.now() + Dur::from_secs(2), CmdResult::ok("")),
                "flaky" => {
                    if self.failures_injected < self.fail_first {
                        self.failures_injected += 1;
                        ExecOutcome::Now(CmdResult::fail())
                    } else {
                        ExecOutcome::At(ctx.now() + Dur::from_secs(2), CmdResult::ok(""))
                    }
                }
                "hang" => ExecOutcome::Held,
                _ => ExecOutcome::Now(CmdResult::fail()),
            }
        }

        fn cancelled(&mut self, _ctx: &mut Ctx<'_, ()>, _client: ClientId, _token: CmdToken) {
            self.cancel_count += 1;
        }

        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _ev: ()) -> Vec<Completion> {
            Vec::new()
        }

        fn unit_done(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            success: bool,
        ) -> Option<(Vm, Time)> {
            self.units += 1;
            if success {
                self.successes += 1;
            }
            if self.units >= self.max_units {
                return None;
            }
            Some((self.vm(self.units as u64), ctx.now() + Dur::from_secs(1)))
        }
    }

    #[test]
    fn repeated_units_accumulate() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 5,
            script: "work\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 5);
        // 5 units x (2s work + 1s gap) minus the trailing gap.
        assert_eq!(d.now(), Time::from_secs(14));
    }

    #[test]
    fn retries_inside_try_use_backoff() {
        let world = ToyWorld {
            fail_first: 2,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 1,
            script: "try for 1 hour\n flaky\nend\n",
            cancel_count: 0,
        };
        let vm = world.vm(7);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 1);
        // Two instant failures with backoff 1..2 then 2..4 s, then 2 s
        // of work: total in [5, 8] s.
        let t = d.now().as_secs_f64();
        assert!((5.0..=8.0).contains(&t), "elapsed {t}");
    }

    #[test]
    fn held_command_cancelled_by_deadline() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 1,
            script: "try for 10 seconds or 1 times\n hang\nend\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.successes, 0);
        assert_eq!(d.world.cancel_count, 1, "world told about the cancel");
        assert_eq!(d.now(), Time::from_secs(10));
    }

    #[test]
    fn many_clients_interleave() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: 30, // 10 clients x 3 units
            script: "work\n",
            cancel_count: 0,
        };
        let vms = (0..10).map(|i| world.vm(i)).collect();
        let mut d = SimDriver::new(world, vms);
        d.run_until(Time::from_secs(1000));
        // The budget is a shared counter checked on completion, so the
        // clients still in flight when it trips also land: between 30
        // and 39 units complete, then everyone retires.
        assert!(
            (30..40).contains(&d.world.units),
            "units = {}",
            d.world.units
        );
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let world = ToyWorld {
            fail_first: 0,
            failures_injected: 0,
            successes: 0,
            units: 0,
            max_units: u32::MAX,
            script: "work\n",
            cancel_count: 0,
        };
        let vm = world.vm(0);
        let mut d = SimDriver::new(world, vec![vm]);
        d.run_until(Time::from_secs(30));
        assert!(d.now() <= Time::from_secs(30));
        let units_at_30 = d.world.units;
        assert!(units_at_30 >= 9, "about one unit per 3s: {units_at_30}");
        // Resume: more work happens.
        d.run_until(Time::from_secs(60));
        assert!(d.world.units > units_at_30);
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;
    use ftsh::parse;
    use retry::Dur;

    /// A world whose single command is Held forever; units time out via
    /// `try` and restart. Completions scheduled for dead units must be
    /// dropped, even though the new unit reuses token numbers.
    struct StaleWorld {
        delivered: u32,
        units: u32,
    }

    impl CommandWorld for StaleWorld {
        type Ev = ();

        fn exec(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            client: ClientId,
            token: CmdToken,
            _spec: &CommandSpec,
        ) -> ExecOutcome {
            // Schedule a completion far in the future — after the unit
            // will have died and been replaced.
            ctx.schedule_completion(
                ctx.now() + Dur::from_secs(100),
                client,
                token,
                CmdResult::ok("stale"),
            );
            ExecOutcome::Held
        }

        fn cancelled(&mut self, _ctx: &mut Ctx<'_, ()>, _c: ClientId, _t: CmdToken) {}

        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _ev: ()) -> Vec<Completion> {
            Vec::new()
        }

        fn unit_done(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            success: bool,
        ) -> Option<(Vm, Time)> {
            self.units += 1;
            if success {
                self.delivered += 1;
            }
            if self.units >= 3 {
                return None;
            }
            let script = parse("try for 5 seconds or 1 times\n hang\nend\n").unwrap();
            Some((Vm::with_seed(&script, self.units as u64), ctx.now()))
        }
    }

    #[test]
    fn stale_completions_never_cross_unit_epochs() {
        let script = parse("try for 5 seconds or 1 times\n hang\nend\n").unwrap();
        let vm = Vm::with_seed(&script, 0);
        let world = StaleWorld {
            delivered: 0,
            units: 0,
        };
        let mut d = SimDriver::new(world, vec![vm]);
        // Run long enough for all stale completions (t+100s) to fire.
        d.run_until(Time::from_secs(1000));
        assert_eq!(d.world.units, 3, "three units each timed out");
        assert_eq!(
            d.world.delivered, 0,
            "no stale completion may succeed a later unit"
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use ftsh::parse;
    use retry::Dur;
    use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
    use simgrid::trace::VecSink;
    use std::sync::{Arc, Mutex};

    /// `work` completes asynchronously after 2 s; units restart 1 s
    /// after finishing until `max_units` have run.
    struct WorkWorld {
        successes: u32,
        units: u32,
        max_units: u32,
        cancel_count: u32,
        injected: Vec<String>,
        revive: bool,
        revivals: u32,
    }

    impl WorkWorld {
        fn new(max_units: u32) -> WorkWorld {
            WorkWorld {
                successes: 0,
                units: 0,
                max_units,
                cancel_count: 0,
                injected: Vec::new(),
                revive: false,
                revivals: 0,
            }
        }

        fn reviving(max_units: u32) -> WorkWorld {
            WorkWorld {
                revive: true,
                ..WorkWorld::new(max_units)
            }
        }

        fn vm(script: &str, seed: u64) -> Vm {
            Vm::with_seed(&parse(script).unwrap(), seed)
        }
    }

    impl CommandWorld for WorkWorld {
        type Ev = ();

        fn exec(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            _token: CmdToken,
            spec: &CommandSpec,
        ) -> ExecOutcome {
            match spec.program() {
                "work" => ExecOutcome::At(ctx.now() + Dur::from_secs(2), CmdResult::ok("")),
                "hang" => ExecOutcome::Held,
                _ => ExecOutcome::Now(CmdResult::fail()),
            }
        }

        fn cancelled(&mut self, _ctx: &mut Ctx<'_, ()>, _client: ClientId, _token: CmdToken) {
            self.cancel_count += 1;
        }

        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _ev: ()) -> Vec<Completion> {
            Vec::new()
        }

        fn inject_fault(&mut self, _ctx: &mut Ctx<'_, ()>, kind: &FaultKind) -> Vec<Completion> {
            self.injected.push(kind.tag().to_string());
            Vec::new()
        }

        fn restart_client(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
        ) -> Option<(Vm, Time)> {
            if !self.revive {
                return None;
            }
            self.revivals += 1;
            Some((
                Self::vm("work\n", 1000 + u64::from(self.revivals)),
                ctx.now(),
            ))
        }

        fn unit_done(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            _client: ClientId,
            success: bool,
        ) -> Option<(Vm, Time)> {
            self.units += 1;
            if success {
                self.successes += 1;
            }
            if self.units >= self.max_units {
                return None;
            }
            Some((
                Self::vm("work\n", self.units as u64),
                ctx.now() + Dur::from_secs(1),
            ))
        }
    }

    #[test]
    fn msg_loss_fails_in_window_then_clears() {
        // Certain loss over [0, 3 s): the first `work` completion
        // (t = 2 s) is dropped on the wire and surfaces as a failure;
        // the second unit's completion (t = 5 s) is past the window.
        let mut d = SimDriver::new(WorkWorld::new(2), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::ZERO,
            FaultKind::MsgLoss {
                channel: "work".into(),
                probability: 1.0,
                duration: Dur::from_secs(3),
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.units, 2);
        assert_eq!(d.world.successes, 1, "lost in window, delivered after");
    }

    #[test]
    fn latency_spike_delays_completion_once() {
        // +5 s on the `work` channel: the t = 2 s completion lands at
        // t = 7 s instead. The message is delayed exactly once, not
        // re-delayed on its deferred arrival.
        let mut d = SimDriver::new(WorkWorld::new(1), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::ZERO,
            FaultKind::LatencySpike {
                channel: "work".into(),
                extra: Dur::from_secs(5),
                duration: Dur::from_secs(60),
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.successes, 1, "delayed is not lost");
        assert_eq!(d.now(), Time::from_secs(7));
    }

    #[test]
    fn clock_skew_stretches_vm_deadlines() {
        // A VM running 5 s behind the sim clock reaches its 10 s `try`
        // deadline 5 s of sim time late: the hang is cancelled at
        // t = 15 s, not t = 10 s.
        let script = "try for 10 seconds or 1 times\n hang\nend\n";
        let mut d = SimDriver::new(WorkWorld::new(1), vec![WorkWorld::vm(script, 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::from_secs(1),
            FaultKind::ClockSkew {
                client: 0,
                skew_us: -5_000_000,
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.cancel_count, 1);
        assert_eq!(d.now(), Time::from_secs(15));
    }

    #[test]
    fn unhandled_kinds_are_forwarded_to_the_world() {
        let mut d = SimDriver::new(WorkWorld::new(4), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(
            FaultPlan::new(1)
                .with(FaultSpec::repeating(
                    Time::from_secs(1),
                    Dur::from_secs(2),
                    3,
                    FaultKind::ScheddKill { downtime: None },
                ))
                .with(FaultSpec::once(
                    Time::from_secs(4),
                    FaultKind::ScheddRestart,
                )),
        );
        d.run_until(Time::from_secs(100));
        assert_eq!(
            d.world.injected,
            vec![
                "schedd-kill",
                "schedd-kill",
                "schedd-restart",
                "schedd-kill"
            ],
            "repeats fire every 2 s from t = 1 s, interleaved with the restart"
        );
    }

    #[test]
    fn client_kill_without_restart_leaves_client_dead() {
        // Kill at t = 1 s, mid-flight in the first 2 s `work`: the
        // in-flight command is cancelled (so the world releases it),
        // no unit ever completes, and the default `restart_client`
        // leaves the client dead.
        let mut d = SimDriver::new(WorkWorld::new(5), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::from_secs(1),
            FaultKind::ClientKill {
                client: 0,
                restart: None,
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.units, 0, "killed mid-unit, nothing completes");
        assert_eq!(d.world.cancel_count, 1, "in-flight work released");
        assert_eq!(d.world.injected, vec!["client-kill"], "world observes it");
        assert_eq!(d.world.revivals, 0);
    }

    #[test]
    fn client_kill_with_restart_resumes_units() {
        // Kill at t = 1 s, restart after 2 s: the replacement VM starts
        // at t = 3 s, so two units land at t = 5 s and t = 8 s
        // (2 s work + 1 s gap). The completion of the killed unit
        // (scheduled for t = 2 s, old epoch) must not leak in.
        let mut d = SimDriver::new(WorkWorld::reviving(2), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::from_secs(1),
            FaultKind::ClientKill {
                client: 0,
                restart: Some(Dur::from_secs(2)),
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.revivals, 1);
        assert_eq!(d.world.successes, 2, "replacement VM finishes the work");
        assert_eq!(d.now(), Time::from_secs(8));
    }

    #[test]
    fn client_kill_after_retirement_is_a_noop() {
        // The single unit finishes at t = 2 s and the client retires;
        // a kill at t = 10 s finds no VM and must change nothing.
        let mut d = SimDriver::new(WorkWorld::new(1), vec![WorkWorld::vm("work\n", 0)]);
        d.arm_faults(FaultPlan::new(1).with(FaultSpec::once(
            Time::from_secs(10),
            FaultKind::ClientKill {
                client: 0,
                restart: Some(Dur::from_secs(1)),
            },
        )));
        d.run_until(Time::from_secs(100));
        assert_eq!(d.world.successes, 1);
        assert_eq!(d.world.cancel_count, 0);
    }

    #[test]
    fn every_injection_lands_in_the_trace() {
        let buf = Arc::new(Mutex::new(VecSink::new()));
        let sink: SharedSink = buf.clone();
        let mut d = SimDriver::new(WorkWorld::new(2), vec![WorkWorld::vm("work\n", 0)]);
        d.set_trace(sink);
        d.arm_faults(
            FaultPlan::new(1)
                .with(FaultSpec::repeating(
                    Time::ZERO,
                    Dur::from_secs(1),
                    2,
                    FaultKind::ScheddKill { downtime: None },
                ))
                .with(FaultSpec::once(
                    Time::from_secs(2),
                    FaultKind::MsgLoss {
                        channel: "work".into(),
                        probability: 0.5,
                        duration: Dur::from_secs(1),
                    },
                )),
        );
        d.run_until(Time::from_secs(100));
        let records = buf.lock().unwrap().take();
        let faults: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.ev {
                TraceEv::FaultInjected { kind, detail } => {
                    Some((r.t, kind.clone(), detail.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(faults.len(), 3, "two kills + one loss window");
        assert_eq!(faults[0].1, "schedd-kill");
        assert_eq!(faults[2].0, Time::from_secs(2));
        assert_eq!(faults[2].1, "msg-loss");
        assert!(faults[2].2.contains("channel=work"), "{}", faults[2].2);
    }
}
