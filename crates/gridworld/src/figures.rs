//! Regeneration of every figure in the paper's evaluation (§5).
//!
//! Each function runs the corresponding scenario and returns a
//! [`SeriesSet`] whose series match the figure's legend. Absolute
//! numbers come from a simulated testbed and differ from the paper's
//! 2003 hardware; the *shapes* — who wins, where Fixed collapses,
//! where the broadcast-jam spikes appear — are the reproduction
//! target (see EXPERIMENTS.md).

use crate::coord::allreduce::{run_allreduce_traced, AllReduceParams};
use crate::coord::dag::{run_dag_traced, DagParams};
use crate::scenarios::blackhole::{run_blackhole_traced, BlackHoleParams};
use crate::scenarios::buffer::{run_buffer_traced, BufferParams};
use crate::scenarios::submit::{run_submission_traced, SubmitParams};
use crate::sweep;
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::{SharedSink, TraceRecord, VecSink};
use simgrid::{Series, SeriesSet};
use std::sync::{Arc, Mutex};

/// One regenerated figure plus its engine-work count and (when
/// requested) its structured trace.
///
/// Sweep figures run one independent simulation per (discipline,
/// population) point, possibly on several threads; the trace is the
/// concatenation of each point's records **in point order**, so the
/// bytes are identical no matter how the sweep was scheduled.
pub struct FigureRun {
    /// The figure's series.
    pub set: SeriesSet,
    /// Events popped across every simulation run behind this figure
    /// (aggregated per run — see [`crate::driver::SimDriver::events_popped`]).
    pub events_popped: u64,
    /// Past-scheduled events clamped forward to `now`, summed over
    /// every run behind this figure. Always zero in a healthy run;
    /// surfaced by `figures --stats` as a regression tripwire.
    pub clamps: u64,
    /// Structured-trace records, present only when tracing was
    /// requested. Timestamps restart at `T+0` for each sweep point.
    pub trace: Option<Vec<TraceRecord>>,
}

/// A per-point trace collector: `(sink to install, handle to drain)`,
/// both `None` when tracing is off.
#[allow(clippy::type_complexity)]
fn point_sink(traced: bool) -> (Option<SharedSink>, Option<Arc<Mutex<VecSink>>>) {
    if traced {
        let h = Arc::new(Mutex::new(VecSink::new()));
        (Some(h.clone() as SharedSink), Some(h))
    } else {
        (None, None)
    }
}

/// Combine a scenario's built-in physics with a custom injection
/// plan: the custom specs are appended after the built-ins, so a
/// custom physics spec overrides (physics accessors are last-wins)
/// while the stock physics otherwise survive, and every custom
/// injection is armed. The custom plan's seed drives the merged
/// plan's RNG stream. `None` ⇒ `None`: the scenario runs its built-in
/// plan untouched.
fn merge_plan(base: FaultPlan, custom: Option<&FaultPlan>) -> Option<FaultPlan> {
    custom.map(|c| {
        let mut p = FaultPlan::new(c.seed);
        p.extend_from(&base);
        p.extend_from(c);
        p
    })
}

/// Take the records out of a point's collector.
fn drain(handle: Option<Arc<Mutex<VecSink>>>) -> Vec<TraceRecord> {
    handle
        .map(|h| h.lock().expect("trace sink lock").take())
        .unwrap_or_default()
}

/// Split per-point `(value, events, clamps, records)` tuples into the
/// value vector, the event and clamp totals, and the in-order
/// concatenated trace.
#[allow(clippy::type_complexity)]
fn collect_points(
    results: Vec<(f64, u64, u64, Vec<TraceRecord>)>,
) -> (Vec<f64>, u64, u64, Vec<TraceRecord>) {
    let mut values = Vec::with_capacity(results.len());
    let mut events = 0u64;
    let mut clamps = 0u64;
    let mut trace = Vec::new();
    for (v, e, c, t) in results {
        values.push(v);
        events += e;
        clamps += c;
        trace.extend(t);
    }
    (values, events, clamps, trace)
}

/// The cross product of disciplines and population sizes, in figure
/// order: one independent simulation point each, ready for a parallel
/// sweep.
fn cross_points(ns: &[usize]) -> Vec<(Discipline, usize)> {
    Discipline::ALL
        .iter()
        .flat_map(|&d| ns.iter().map(move |&n| (d, n)))
        .collect()
}

/// Reassemble per-point sweep results (in `cross_points` order) into
/// one series per discipline.
fn series_per_discipline(set: &mut SeriesSet, ns: &[usize], values: Vec<f64>) {
    let mut it = values.into_iter();
    for d in Discipline::ALL {
        let mut series = Series::new(d.label());
        for &n in ns {
            series.push_xy(n as f64, it.next().expect("one value per point"));
        }
        set.add(series);
    }
}

/// Scale of a figure run: `full` matches the paper's population sizes
/// and windows; `quick` is a reduced version for CI and Criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale populations and windows.
    Full,
    /// Reduced sizes for fast iteration.
    Quick,
}

impl Scale {
    fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Figure 1 — *Scalability of Job Submission*: jobs submitted in a
/// five-minute window vs. number of submitters, for the three
/// disciplines.
pub fn fig1_submission_scalability(scale: Scale, seed: u64) -> SeriesSet {
    fig1_run(scale, seed, false, None).set
}

fn fig1_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let ns: Vec<usize> = scale.pick(
        vec![
            5, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 425, 450, 500,
        ],
        vec![50, 200, 450],
    );
    let window = scale.pick(Dur::from_mins(5), Dur::from_secs(90));
    let mut set = SeriesSet::new(
        "Figure 1: Scalability of Job Submission",
        "Number of Submitters",
        "Jobs Submitted",
    );
    let points = cross_points(&ns);
    let results = sweep::map(&points, |&(d, n)| {
        let (sink, handle) = point_sink(traced);
        let mut params = SubmitParams {
            n_clients: n,
            discipline: d,
            seed: seed ^ (n as u64),
            ..SubmitParams::default()
        };
        params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
        let o = run_submission_traced(params, window, sink);
        (
            o.jobs_submitted as f64,
            o.events_popped,
            o.queue_clamps,
            drain(handle),
        )
    });
    let (jobs, events_popped, clamps, trace) = collect_points(results);
    series_per_discipline(&mut set, &ns, jobs);
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

/// Figure 1x — *Submission at Population Extremes*: Figure 1's
/// population axis pushed two to three orders of magnitude past the
/// paper's 500 submitters, up to 100 000 concurrent ftsh clients
/// against the same single schedd. Ethernet and Aloha only: both are
/// self-limiting (carrier sense, exponential backoff), so their event
/// volume stays proportional to the population. Fixed retries without
/// delay, which makes its event count scale with the window instead of
/// the population — its collapse is already established by Figure 1,
/// so it is excluded rather than simulated at ruinous cost.
pub fn fig1x_population_extremes(scale: Scale, seed: u64) -> SeriesSet {
    fig1x_run(scale, seed, false, None).set
}

/// The disciplines fig1x sweeps (see [`fig1x_population_extremes`]).
const FIG1X_DISCIPLINES: [Discipline; 2] = [Discipline::Ethernet, Discipline::Aloha];

fn fig1x_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let ns: Vec<usize> = scale.pick(
        vec![1_000, 3_000, 10_000, 30_000, 100_000],
        vec![1_000, 10_000],
    );
    // A shorter window than fig1: at these populations the FD table
    // saturates within seconds, so steady state arrives almost
    // immediately and a two-minute window already averages over many
    // backoff generations.
    let window = scale.pick(Dur::from_secs(120), Dur::from_secs(45));
    let mut set = SeriesSet::new(
        "Figure 1x: Submission at Population Extremes",
        "Number of Submitters",
        "Jobs Submitted",
    );
    let points: Vec<(Discipline, usize)> = FIG1X_DISCIPLINES
        .iter()
        .flat_map(|&d| ns.iter().map(move |&n| (d, n)))
        .collect();
    let results = sweep::map(&points, |&(d, n)| {
        let (sink, handle) = point_sink(traced);
        let mut params = SubmitParams {
            n_clients: n,
            discipline: d,
            seed: seed ^ (n as u64),
            // Spread the start burst over a minute: 100k clients
            // arriving within fig1's 10 s would all collide before
            // carrier sense has anything to measure.
            start_stagger: Dur::from_secs(60),
            ..SubmitParams::default()
        };
        params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
        let o = run_submission_traced(params, window, sink);
        (
            o.jobs_submitted as f64,
            o.events_popped,
            o.queue_clamps,
            drain(handle),
        )
    });
    let (jobs, events_popped, clamps, trace) = collect_points(results);
    let mut it = jobs.into_iter();
    for d in FIG1X_DISCIPLINES {
        let mut series = Series::new(d.label());
        for &n in &ns {
            series.push_xy(n as f64, it.next().expect("one value per point"));
        }
        set.add(series);
    }
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

fn submit_timeline(
    d: Discipline,
    scale: Scale,
    seed: u64,
    traced: bool,
    plan: Option<&FaultPlan>,
    title: &str,
) -> FigureRun {
    // The paper ran its timelines at 400 submitters, just past its
    // testbed's crash knee; our knee sits at ~405 attempts' worth of
    // descriptors, so 425 puts the timeline in the same regime.
    let mut params = SubmitParams {
        n_clients: scale.pick(425, 120),
        discipline: d,
        seed,
        ..SubmitParams::default()
    };
    params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
    let window = scale.pick(Dur::from_secs(1800), Dur::from_secs(300));
    let (sink, handle) = point_sink(traced);
    let o = run_submission_traced(params, window, sink);
    let mut set = SeriesSet::new(title, "Time (s)", "Available FDs / Jobs Submitted");
    let mut fd = o.fd_series;
    fd.name = "Available FDs".into();
    let mut jobs = o.jobs_series;
    jobs.name = "Jobs Submitted".into();
    set.add(fd);
    set.add(jobs);
    FigureRun {
        set,
        events_popped: o.events_popped,
        clamps: o.queue_clamps,
        trace: traced.then(|| drain(handle)),
    }
}

/// Figure 2 — *Timeline of Aloha Submitter*: available FDs and
/// cumulative jobs over 30 minutes with the submitter population just
/// past the crash knee.
pub fn fig2_aloha_timeline(scale: Scale, seed: u64) -> SeriesSet {
    fig2_run(scale, seed, false, None).set
}

fn fig2_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    submit_timeline(
        Discipline::Aloha,
        scale,
        seed,
        traced,
        plan,
        "Figure 2: Timeline of Aloha Submitter",
    )
}

/// Figure 3 — *Timeline of Ethernet Submitter*: as Figure 2 for the
/// Ethernet discipline.
pub fn fig3_ethernet_timeline(scale: Scale, seed: u64) -> SeriesSet {
    fig3_run(scale, seed, false, None).set
}

fn fig3_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    submit_timeline(
        Discipline::Ethernet,
        scale,
        seed,
        traced,
        plan,
        "Figure 3: Timeline of Ethernet Submitter",
    )
}

/// The steady-state measurement window for the buffer figures: run
/// until the buffer has been saturated, then count what the consumer
/// drains in the last segment.
fn buffer_run(
    d: Discipline,
    n: usize,
    scale: Scale,
    seed: u64,
    traced: bool,
    plan: Option<&FaultPlan>,
) -> (f64, u64, u64, u64, Vec<TraceRecord>) {
    let total = scale.pick(Dur::from_secs(180), Dur::from_secs(120));
    let measure_from = scale.pick(Dur::from_secs(120), Dur::from_secs(80));
    let mut params = BufferParams {
        n_producers: n,
        discipline: d,
        seed: seed ^ (n as u64),
        ..BufferParams::default()
    };
    params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
    let (sink, handle) = point_sink(traced);
    let o = run_buffer_traced(params, total, sink);
    let consumed = o.consumed_between(Time::ZERO + measure_from, Time::ZERO + total);
    (
        consumed,
        o.collisions,
        o.events_popped,
        o.queue_clamps,
        drain(handle),
    )
}

/// Figure 4 — *Buffer Throughput*: files consumed in the steady-state
/// window vs. number of producers.
pub fn fig4_buffer_throughput(scale: Scale, seed: u64) -> SeriesSet {
    fig4_run(scale, seed, false, None).set
}

fn fig4_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let ns: Vec<usize> = scale.pick(vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50], vec![10, 40]);
    let mut set = SeriesSet::new(
        "Figure 4: Buffer Throughput",
        "Number of Producers",
        "Total Files Consumed",
    );
    let points = cross_points(&ns);
    let results = sweep::map(&points, |&(d, n)| {
        let (consumed, _, events, clamps, recs) = buffer_run(d, n, scale, seed, traced, plan);
        (consumed, events, clamps, recs)
    });
    let (consumed, events_popped, clamps, trace) = collect_points(results);
    series_per_discipline(&mut set, &ns, consumed);
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

/// Figure 5 — *Buffer Collisions*: mid-write ENOSPC collisions over
/// the whole run vs. number of producers.
pub fn fig5_buffer_collisions(scale: Scale, seed: u64) -> SeriesSet {
    fig5_run(scale, seed, false, None).set
}

fn fig5_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let ns: Vec<usize> = scale.pick(vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50], vec![10, 40]);
    let mut set = SeriesSet::new(
        "Figure 5: Buffer Collisions",
        "Number of Producers",
        "Total Collisions",
    );
    let points = cross_points(&ns);
    let results = sweep::map(&points, |&(d, n)| {
        let (_, collisions, events, clamps, recs) = buffer_run(d, n, scale, seed, traced, plan);
        (collisions as f64, events, clamps, recs)
    });
    let (collisions, events_popped, clamps, trace) = collect_points(results);
    series_per_discipline(&mut set, &ns, collisions);
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

fn reader_figure(
    d: Discipline,
    scale: Scale,
    seed: u64,
    traced: bool,
    plan: Option<&FaultPlan>,
    title: &str,
) -> FigureRun {
    let mut params = BlackHoleParams {
        discipline: d,
        seed,
        ..BlackHoleParams::default()
    };
    params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
    let window = scale.pick(Dur::from_secs(900), Dur::from_secs(300));
    let (sink, handle) = point_sink(traced);
    let o = run_blackhole_traced(params, window, sink);
    let mut set = SeriesSet::new(title, "Time (s)", "Number of Events");
    let mut t = o.transfer_series;
    t.name = "Transfers".into();
    set.add(t);
    if d == Discipline::Ethernet {
        let mut s = o.deferral_series;
        s.name = "Deferrals".into();
        set.add(s);
    } else {
        let mut s = o.collision_series;
        s.name = "Collisions".into();
        set.add(s);
    }
    FigureRun {
        set,
        events_popped: o.events_popped,
        clamps: o.queue_clamps,
        trace: traced.then(|| drain(handle)),
    }
}

/// Figure 6 — *Aloha File Reader*: cumulative transfers and collisions
/// over 900 s with one black-hole server.
pub fn fig6_aloha_reader(scale: Scale, seed: u64) -> SeriesSet {
    fig6_run(scale, seed, false, None).set
}

fn fig6_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    reader_figure(
        Discipline::Aloha,
        scale,
        seed,
        traced,
        plan,
        "Figure 6: Aloha File Reader",
    )
}

/// Figure 7 — *Ethernet File Reader*: cumulative transfers and
/// deferrals over 900 s with one black-hole server.
pub fn fig7_ethernet_reader(scale: Scale, seed: u64) -> SeriesSet {
    fig7_run(scale, seed, false, None).set
}

fn fig7_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    reader_figure(
        Discipline::Ethernet,
        scale,
        seed,
        traced,
        plan,
        "Figure 7: Ethernet File Reader",
    )
}

/// Figure 8 — *Fault-Tolerant All-Reduce*: per-round global completion
/// time for N ranks barriering through the shared store, with one rank
/// killed mid-round and restarted. One series per discipline; lower and
/// complete is better (a missing point is a round the discipline never
/// globally finished inside the window).
pub fn fig8_allreduce(scale: Scale, seed: u64) -> SeriesSet {
    fig8_run(scale, seed, false, None).set
}

/// The built-in fig8 injection: rank 1 is killed 4 s in — mid-compute
/// of the first round for every discipline — and restarts 6 s later,
/// forcing the barrier to hold while the straggler catches up.
fn fig8_kill_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(FaultSpec::once(
        Time::ZERO + Dur::from_secs(4),
        FaultKind::ClientKill {
            client: 1,
            restart: Some(Dur::from_secs(6)),
        },
    ))
}

fn fig8_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let rounds = scale.pick(3, 2);
    let window = scale.pick(Dur::from_secs(600), Dur::from_secs(300));
    let mut set = SeriesSet::new(
        "Figure 8: Fault-Tolerant All-Reduce (kill + restart)",
        "Round",
        "Global Completion Time (s)",
    );
    let results = sweep::map(&Discipline::ALL, |&d| {
        let kill = fig8_kill_plan(seed);
        let mut params = AllReduceParams {
            discipline: d,
            rounds,
            seed,
            ..AllReduceParams::default()
        };
        params.fault_plan = merge_plan(kill.clone(), plan).or(Some(kill));
        let (sink, handle) = point_sink(traced);
        let o = run_allreduce_traced(params, window, sink);
        (
            o.round_series,
            o.events_popped,
            o.queue_clamps,
            drain(handle),
        )
    });
    let mut events_popped = 0u64;
    let mut clamps = 0u64;
    let mut trace = Vec::new();
    for (series, e, c, recs) in results {
        set.add(series);
        events_popped += e;
        clamps += c;
        trace.extend(recs);
    }
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

/// Figure 9 — *Swift-Style DAG Workflow*: per-job completion time for
/// the eight-job diamond workflow flowing through the shared store,
/// with an ENOSPC window corrupting publishes early on and the `merge`
/// job killed (and restarted) mid-flight. One series per discipline;
/// the x axis is the job's index in the spec, the last point is the
/// workflow makespan.
pub fn fig9_dag(scale: Scale, seed: u64) -> SeriesSet {
    fig9_run(scale, seed, false, None).set
}

/// The built-in fig9 injection: publishes fail for 8 s starting 1 s in
/// (the store "fills up" under the first wave of outputs), and the
/// `merge` job — the diamond's waist — is killed 6 s in, restarting
/// 5 s later.
fn fig9_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultSpec::once(
            Time::ZERO + Dur::from_secs(1),
            FaultKind::EnospcWindow {
                duration: Dur::from_secs(8),
            },
        ))
        .with(FaultSpec::once(
            Time::ZERO + Dur::from_secs(6),
            FaultKind::ClientKill {
                client: 4,
                restart: Some(Dur::from_secs(5)),
            },
        ))
}

fn fig9_run(scale: Scale, seed: u64, traced: bool, plan: Option<&FaultPlan>) -> FigureRun {
    let window = scale.pick(Dur::from_secs(600), Dur::from_secs(300));
    let mut set = SeriesSet::new(
        "Figure 9: DAG Workflow (ENOSPC window + merge kill)",
        "Job Index (spec order)",
        "Completion Time (s)",
    );
    let results = sweep::map(&Discipline::ALL, |&d| {
        let faults = fig9_fault_plan(seed);
        let mut params = DagParams {
            discipline: d,
            seed,
            ..DagParams::default()
        };
        params.fault_plan = merge_plan(faults.clone(), plan).or(Some(faults));
        let (sink, handle) = point_sink(traced);
        let o = run_dag_traced(params, window, sink);
        (o.job_series, o.events_popped, o.queue_clamps, drain(handle))
    });
    let mut events_popped = 0u64;
    let mut clamps = 0u64;
    let mut trace = Vec::new();
    for (series, e, c, recs) in results {
        set.add(series);
        events_popped += e;
        clamps += c;
        trace.extend(recs);
    }
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

/// Ablation A — carrier-sense threshold sweep: jobs submitted and
/// schedd crashes vs. the Ethernet client's free-FD threshold, in the
/// overload regime. Shows the knob the paper fixes at 1000: too low
/// reverts to Aloha behaviour, too high over-defers.
pub fn ablation_threshold_sweep(scale: Scale, seed: u64) -> SeriesSet {
    ablation_threshold_run(scale, seed, false, None).set
}

fn ablation_threshold_run(
    scale: Scale,
    seed: u64,
    traced: bool,
    plan: Option<&FaultPlan>,
) -> FigureRun {
    let thresholds: Vec<u64> = scale.pick(
        vec![0, 100, 500, 1000, 2000, 4000, 6000, 7000, 7500, 7900],
        vec![0, 1000, 4000],
    );
    let window = scale.pick(Dur::from_mins(5), Dur::from_secs(90));
    let mut set = SeriesSet::new(
        "Ablation: carrier-sense threshold (450 submitters)",
        "Threshold (free FDs)",
        "Jobs Submitted / Crashes",
    );
    let mut jobs = Series::new("Jobs");
    let mut crashes = Series::new("Crashes");
    let outcomes = sweep::map(&thresholds, |&t| {
        let (sink, handle) = point_sink(traced);
        let mut params = SubmitParams {
            n_clients: 450,
            discipline: Discipline::Ethernet,
            threshold: t,
            seed,
            ..SubmitParams::default()
        };
        params.fault_plan = merge_plan(params.builtin_fault_plan(), plan);
        let o = run_submission_traced(params, window, sink);
        (
            o.jobs_submitted,
            o.crashes,
            o.events_popped,
            o.queue_clamps,
            drain(handle),
        )
    });
    let mut events_popped = 0u64;
    let mut clamps = 0u64;
    let mut trace = Vec::new();
    for (&t, (j, c, e, cl, recs)) in thresholds.iter().zip(outcomes) {
        jobs.push_xy(t as f64, j as f64);
        crashes.push_xy(t as f64, c as f64);
        events_popped += e;
        clamps += cl;
        trace.extend(recs);
    }
    set.add(jobs);
    set.add(crashes);
    FigureRun {
        set,
        events_popped,
        clamps,
        trace: traced.then_some(trace),
    }
}

/// Ablation B — the shared-channel story of §3: throughput S vs.
/// offered load G for the three station disciplines on a slotted
/// medium (the "Aloha saturates" remark, mechanically).
pub fn ablation_channel_saturation(scale: Scale, seed: u64) -> SeriesSet {
    use simgrid::{simulate_channel, ChannelDiscipline};
    let ps: Vec<f64> = scale.pick(
        vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1],
        vec![0.005, 0.05],
    );
    let slots = scale.pick(100_000, 10_000);
    let mut set = SeriesSet::new(
        "Ablation: slotted-channel throughput (50 stations)",
        "Offered load G (new frames/slot)",
        "Throughput S (successes/slot)",
    );
    for (d, label) in [
        (ChannelDiscipline::Ethernet, "Ethernet"),
        (ChannelDiscipline::Aloha, "Aloha"),
        (ChannelDiscipline::Fixed, "Fixed"),
    ] {
        let mut series = Series::new(label);
        for &p in &ps {
            let st = simulate_channel(d, 50, p, slots, seed);
            series.push_xy(st.offered_load(), st.throughput());
        }
        set.add(series);
    }
    set
}

/// All figures by id (`"fig1"` … `"fig7"`, plus the ablations
/// `"ablation-threshold"` and `"ablation-channel"`).
pub fn by_name(name: &str, scale: Scale, seed: u64) -> Option<SeriesSet> {
    by_name_full(name, scale, seed, false).map(|r| r.set)
}

/// [`by_name`] with the engine-work count and (when `traced`) the
/// figure's structured trace. The trace is bit-deterministic per seed:
/// sweep points collect into private buffers that are concatenated in
/// point order, so sequential and parallel sweeps produce identical
/// bytes. `ablation-channel` has no VMs or event queue; it traces
/// nothing and reports zero events.
pub fn by_name_full(name: &str, scale: Scale, seed: u64, traced: bool) -> Option<FigureRun> {
    by_name_with_plan(name, scale, seed, traced, None)
}

/// [`by_name_full`] with an optional custom fault plan: the plan's
/// specs are injected on top of the figure's built-in scenario physics
/// (see [`merge_plan`] for the override rule). `ablation-channel` has
/// no event queue; it ignores the plan.
pub fn by_name_with_plan(
    name: &str,
    scale: Scale,
    seed: u64,
    traced: bool,
    plan: Option<&FaultPlan>,
) -> Option<FigureRun> {
    Some(match name {
        "fig1" => fig1_run(scale, seed, traced, plan),
        "fig1x" => fig1x_run(scale, seed, traced, plan),
        "fig2" => fig2_run(scale, seed, traced, plan),
        "fig3" => fig3_run(scale, seed, traced, plan),
        "fig4" => fig4_run(scale, seed, traced, plan),
        "fig5" => fig5_run(scale, seed, traced, plan),
        "fig6" => fig6_run(scale, seed, traced, plan),
        "fig7" => fig7_run(scale, seed, traced, plan),
        "fig8" => fig8_run(scale, seed, traced, plan),
        "fig9" => fig9_run(scale, seed, traced, plan),
        "ablation-threshold" => ablation_threshold_run(scale, seed, traced, plan),
        "ablation-channel" => FigureRun {
            set: ablation_channel_saturation(scale, seed),
            events_popped: 0,
            clamps: 0,
            trace: traced.then(Vec::new),
        },
        _ => return None,
    })
}

/// The ids of the extra ablation figures.
pub const ALL_ABLATIONS: [&str; 2] = ["ablation-threshold", "ablation-channel"];

/// The ids of the extended (beyond-paper) figures. Kept out of
/// [`ALL_FIGURES`] so `figures all` and the determinism gate stay at
/// paper scale; regenerate explicitly with `figures fig1x`.
pub const EXTENDED_FIGURES: [&str; 1] = ["fig1x"];

/// The ids of the coordinated-workload figures (beyond the paper's
/// seven, see [`crate::coord`]). Kept out of [`ALL_FIGURES`] so
/// `figures all` stays at paper scale; regenerate explicitly with
/// `figures fig8` / `figures fig9`.
pub const COORD_FIGURES: [&str; 2] = ["fig8", "fig9"];

/// The ids of all figures.
pub const ALL_FIGURES: [&str; 7] = ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_has_three_disciplines() {
        let set = fig1_submission_scalability(Scale::Quick, 1);
        assert_eq!(set.series.len(), 3);
        for s in &set.series {
            assert_eq!(s.len(), 3, "three population sizes in quick mode");
        }
        // Shape: at the overload point (450), Ethernet > Fixed.
        let eth = set.get("Ethernet").unwrap().points.last().unwrap().1;
        let fix = set.get("Fixed").unwrap().points.last().unwrap().1;
        assert!(eth > fix, "ethernet {eth} vs fixed {fix}");
    }

    #[test]
    fn quick_timelines_have_two_series() {
        for f in [
            fig2_aloha_timeline(Scale::Quick, 1),
            fig3_ethernet_timeline(Scale::Quick, 1),
        ] {
            assert_eq!(f.series.len(), 2);
            assert!(f.series.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn quick_reader_figures() {
        let f6 = fig6_aloha_reader(Scale::Quick, 1);
        assert!(f6.get("Transfers").is_some());
        assert!(f6.get("Collisions").is_some());
        let f7 = fig7_ethernet_reader(Scale::Quick, 1);
        assert!(f7.get("Transfers").is_some());
        assert!(f7.get("Deferrals").is_some());
    }

    #[test]
    fn quick_ablations_have_shape() {
        let t = ablation_threshold_sweep(Scale::Quick, 1);
        assert_eq!(t.series.len(), 2);
        let jobs = t.get("Jobs").unwrap();
        // Threshold 1000 beats threshold 0 in the overload regime.
        assert!(jobs.points[1].1 > jobs.points[0].1);

        let c = ablation_channel_saturation(Scale::Quick, 1);
        let eth = c.get("Ethernet").unwrap().last().unwrap();
        let alo = c.get("Aloha").unwrap().last().unwrap();
        let fix = c.get("Fixed").unwrap().last().unwrap();
        assert!(eth > alo && alo > fix);
    }

    #[test]
    fn by_name_covers_all() {
        for name in ALL_FIGURES.iter().chain(&COORD_FIGURES) {
            // Only check dispatch, not execution, for the heavy ones.
            assert!(name.starts_with("fig"));
        }
        assert!(by_name("fig10", Scale::Quick, 0).is_none());
    }

    #[test]
    fn quick_coord_figures_have_shape() {
        // fig8: three discipline series, each completing both quick
        // rounds despite the kill, with Ethernet's global completion
        // no later than Aloha's.
        let f8 = fig8_allreduce(Scale::Quick, 1);
        assert_eq!(f8.series.len(), 3);
        for s in &f8.series {
            assert_eq!(s.len(), 2, "{}: both rounds complete", s.name);
        }
        let eth = f8.get("Ethernet").unwrap().last().unwrap();
        let alo = f8.get("Aloha").unwrap().last().unwrap();
        assert!(eth <= alo, "ethernet {eth} vs aloha {alo}");

        // fig9: all eight jobs finish under the faults; the makespan
        // (last point) keeps the same ordering.
        let f9 = fig9_dag(Scale::Quick, 1);
        assert_eq!(f9.series.len(), 3);
        for s in &f9.series {
            assert_eq!(s.len(), 8, "{}: all jobs complete", s.name);
        }
        let eth = f9.get("Ethernet").unwrap().last().unwrap();
        let alo = f9.get("Aloha").unwrap().last().unwrap();
        assert!(eth <= alo, "ethernet {eth} vs aloha {alo}");
    }
}
