//! # gridworld — the paper's three evaluation scenarios, end to end
//!
//! Populations of clients running real ftsh scripts (see
//! [`scripts`]) are multiplexed over a discrete-event simulation by
//! [`driver::SimDriver`]; the scenario worlds in [`scenarios`] give
//! the commands their semantics against the contended resources of
//! `simgrid`. [`figures`] regenerates every figure of §5.

#![warn(missing_docs)]

pub mod coord;
pub mod driver;
pub mod figures;
pub mod scenarios;
pub mod scripts;
pub mod sweep;

pub use driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver, SimEv};
pub use figures::{by_name_full, FigureRun, Scale};
pub use scenarios::blackhole::{
    run_blackhole, run_blackhole_traced, BlackHoleOutcome, BlackHoleParams,
};
pub use scenarios::buffer::{run_buffer, run_buffer_traced, BufferOutcome, BufferParams};
pub use scenarios::submit::{run_submission, run_submission_traced, SubmitOutcome, SubmitParams};
