//! Scenario 3 — black holes (Figures 6–7).
//!
//! Three clients repeatedly fetch a 100 MB file from one of three
//! single-threaded replica servers chosen in random order. One server
//! is a permanent black hole: it accepts connections but never sends a
//! byte. The Aloha reader commits 60 seconds to whichever server it
//! picked; the Ethernet reader first fetches a well-known one-byte
//! flag file under a 5-second limit and only then commits to the
//! transfer.

use crate::driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver};
use crate::scripts::{reader_script, unit_vm};
use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Vm};
use ftsh::Script;
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use simgrid::{Admission, FileServer, Series, ServerKind, SimRng};
use std::collections::HashMap;

/// Parameters of the reader scenario (defaults: the paper's numbers).
#[derive(Clone, Debug)]
pub struct BlackHoleParams {
    /// Number of reader clients (paper: 3).
    pub n_clients: usize,
    /// Reader discipline (the paper compares Aloha and Ethernet here).
    pub discipline: Discipline,
    /// Server hostnames; index into `black_holes` marks the traps.
    pub servers: Vec<String>,
    /// Which servers are black holes (paper: one of three).
    pub black_holes: Vec<usize>,
    /// Server bandwidth in bytes/second (100 MB ≈ 10 s ⇒ 10 MB/s).
    pub bandwidth: u64,
    /// Size of the data file (paper: 100 MB).
    pub data_size: u64,
    /// Size of the flag file (paper: 1 byte).
    pub flag_size: u64,
    /// Connection setup latency.
    pub connect_latency: Dur,
    /// Pause between work units.
    pub unit_think: Dur,
    /// Master seed.
    pub seed: u64,
    /// Fault plan for this run. `None` ⇒ [`builtin_fault_plan`]: the
    /// scenario's stock failure physics, nothing injected.
    ///
    /// [`builtin_fault_plan`]: BlackHoleParams::builtin_fault_plan
    pub fault_plan: Option<FaultPlan>,
}

impl BlackHoleParams {
    /// The scenario's built-in failure physics as a fault plan: the
    /// servers named by `black_holes` are black holes from t=0 for the
    /// whole run. Custom plans replace this wholesale and may instead
    /// flap servers with timed [`FaultKind::ServerBlackHole`] toggles.
    pub fn builtin_fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with(FaultSpec::physics(FaultKind::BlackHoleServers {
            servers: self
                .black_holes
                .iter()
                .filter_map(|&i| self.servers.get(i).cloned())
                .collect(),
        }))
    }
}

impl Default for BlackHoleParams {
    fn default() -> BlackHoleParams {
        BlackHoleParams {
            n_clients: 3,
            discipline: Discipline::Ethernet,
            servers: vec!["xxx".into(), "yyy".into(), "zzz".into()],
            black_holes: vec![2],
            bandwidth: 10 * (1 << 20),
            data_size: 100 * (1 << 20),
            flag_size: 1,
            connect_latency: Dur::from_millis(100),
            unit_think: Dur::from_millis(100),
            seed: 0xb1ac_401e,
            fault_plan: None,
        }
    }
}

/// Scenario events.
#[derive(Debug)]
pub enum BlackHoleEv {
    /// A server finished its current transfer (valid per server seq).
    TransferDone {
        /// Server index.
        server: usize,
        /// Validity sequence number.
        seq: u64,
    },
}

/// The replica-servers world.
pub struct BlackHoleWorld {
    params: BlackHoleParams,
    /// The effective fault plan (custom or built-in physics).
    fault_plan: FaultPlan,
    /// Which servers are currently black holes (toggled by injected
    /// [`FaultKind::ServerBlackHole`] faults).
    black_hole: Vec<bool>,
    script: Script,
    rng: SimRng,
    servers: Vec<FileServer<(ClientId, CmdToken)>>,
    server_seq: Vec<u64>,
    /// The connection currently being served, per server.
    active_transfer: Vec<Option<(ClientId, CmdToken)>>,
    /// Bytes requested per in-flight connection.
    request_size: HashMap<(ClientId, CmdToken), u64>,
    /// Which server each in-flight connection is on.
    conn_server: HashMap<(ClientId, CmdToken), usize>,
    /// Successful 100 MB transfers.
    pub transfers: u64,
    /// Failed/killed data-transfer attempts (Figure 6's collisions).
    pub collisions: u64,
    /// Failed/killed flag probes (Figure 7's deferrals).
    pub deferrals: u64,
    /// Event timeline: cumulative transfers.
    pub transfer_series: Series,
    /// Event timeline: cumulative collisions.
    pub collision_series: Series,
    /// Event timeline: cumulative deferrals.
    pub deferral_series: Series,
    /// Per-client instants of successful transfers.
    pub per_client_successes: Vec<Vec<Time>>,
    /// Structured-trace sink for scenario-level events (deferrals and
    /// collisions as attempts die); `None` ⇒ no records, no cost.
    trace: Option<SharedSink>,
}

impl BlackHoleWorld {
    fn new(params: BlackHoleParams) -> BlackHoleWorld {
        let fault_plan = params
            .fault_plan
            .clone()
            .unwrap_or_else(|| params.builtin_fault_plan());
        let black_hole: Vec<bool> = params
            .servers
            .iter()
            .map(|name| {
                fault_plan
                    .black_hole_physics()
                    .is_some_and(|traps| traps.iter().any(|t| t == name))
            })
            .collect();
        let servers = black_hole
            .iter()
            .map(|&trap| {
                let kind = if trap {
                    ServerKind::BlackHole
                } else {
                    ServerKind::Normal
                };
                FileServer::new(kind, params.bandwidth)
            })
            .collect();
        BlackHoleWorld {
            script: reader_script(params.discipline),
            fault_plan,
            black_hole,
            rng: SimRng::new(params.seed),
            server_seq: vec![0; params.servers.len()],
            active_transfer: vec![None; params.servers.len()],
            servers,
            request_size: HashMap::new(),
            conn_server: HashMap::new(),
            transfers: 0,
            collisions: 0,
            deferrals: 0,
            transfer_series: Series::new("transfers"),
            collision_series: Series::new("collisions"),
            deferral_series: Series::new("deferrals"),
            per_client_successes: vec![Vec::new(); params.n_clients],
            trace: None,
            params,
        }
    }

    fn host_index(&self, host: &str) -> Option<usize> {
        self.params.servers.iter().position(|s| s == host)
    }

    /// Start serving the given connection: schedule its completion.
    fn start_transfer(
        &mut self,
        ctx: &mut Ctx<'_, BlackHoleEv>,
        server: usize,
        conn: (ClientId, CmdToken),
    ) {
        let size = self.request_size[&conn];
        self.server_seq[server] += 1;
        self.active_transfer[server] = Some(conn);
        let dur = self.servers[server].transfer_time(size);
        ctx.schedule(
            ctx.now() + dur,
            BlackHoleEv::TransferDone {
                server,
                seq: self.server_seq[server],
            },
        );
    }

    fn unit_env(&mut self) -> ftsh::Env {
        // Shuffle the host order for this work unit ("a server chosen
        // at random").
        let mut order: Vec<usize> = (0..self.params.servers.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.range_u64(0, i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut env = ftsh::Env::new();
        for (slot, &srv) in order.iter().enumerate() {
            env.set(format!("h{}", slot + 1), self.params.servers[srv].clone());
        }
        env
    }

    /// A failed or killed attempt: classify by what was being fetched.
    fn record_miss(&mut self, now: Time, client: ClientId, was_flag: bool) {
        if was_flag {
            self.deferrals += 1;
            self.deferral_series.push(now, self.deferrals as f64);
            simgrid::trace::emit(&self.trace, now, client as i64, NO_ID, TraceEv::Deferral);
        } else {
            self.collisions += 1;
            self.collision_series.push(now, self.collisions as f64);
            simgrid::trace::emit(&self.trace, now, client as i64, NO_ID, TraceEv::Collision);
        }
    }
}

/// Parse `http://host/path` into (host, path).
fn parse_url(url: &str) -> Option<(&str, &str)> {
    let rest = url.strip_prefix("http://")?;
    let (host, path) = rest.split_once('/')?;
    Some((host, path))
}

impl CommandWorld for BlackHoleWorld {
    type Ev = BlackHoleEv;

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, BlackHoleEv>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome {
        if spec.program() != "wget" {
            return ExecOutcome::Now(CmdResult::fail());
        }
        let Some((host, path)) = spec.argv.get(1).and_then(|u| parse_url(u)) else {
            return ExecOutcome::Now(CmdResult::fail());
        };
        let Some(server) = self.host_index(host) else {
            // Unknown host: DNS failure, reported quickly.
            return ExecOutcome::At(ctx.now() + self.params.connect_latency, CmdResult::fail());
        };
        let size = if path == "flag" {
            self.params.flag_size
        } else {
            self.params.data_size
        };
        if path == "flag" && !self.black_hole[server] {
            // A live server answers the one-byte liveness probe promptly
            // even while a bulk transfer occupies its data channel —
            // carrier sensing distinguishes dead from busy (§5). Only a
            // black hole leaves the probe hanging.
            let dur = self.params.connect_latency + self.servers[server].transfer_time(size);
            return ExecOutcome::At(ctx.now() + dur, CmdResult::ok(""));
        }
        let conn = (client, token);
        self.request_size.insert(conn, size);
        self.conn_server.insert(conn, server);
        match self.servers[server].connect(conn) {
            Admission::Serving => {
                self.start_transfer(ctx, server, conn);
                ExecOutcome::Held
            }
            Admission::Queued | Admission::Hung => ExecOutcome::Held,
        }
    }

    fn cancelled(&mut self, ctx: &mut Ctx<'_, BlackHoleEv>, client: ClientId, token: CmdToken) {
        let conn = (client, token);
        let Some(server) = self.conn_server.remove(&conn) else {
            return;
        };
        let size = self.request_size.remove(&conn).unwrap_or(0);
        let was_flag = size == self.params.flag_size;
        self.record_miss(ctx.now(), client, was_flag);
        if self.active_transfer[server] == Some(conn) {
            // The killed client was the one being served: invalidate
            // its completion and promote the next in line.
            self.server_seq[server] += 1;
            self.active_transfer[server] = None;
        }
        let d = self.servers[server].disconnect(conn);
        if let Some(next) = d.promoted {
            self.start_transfer(ctx, server, next);
        }
    }

    fn inject_fault(
        &mut self,
        ctx: &mut Ctx<'_, BlackHoleEv>,
        kind: &FaultKind,
    ) -> Vec<Completion> {
        if let FaultKind::ServerBlackHole { server, enable } = kind {
            if let Some(idx) = self.host_index(server) {
                if *enable && self.active_transfer[idx].take().is_some() {
                    // The in-flight transfer falls silent: invalidate
                    // its scheduled completion. The client stays
                    // connected (Held) until its own deadline fires.
                    self.server_seq[idx] += 1;
                }
                self.black_hole[idx] = *enable;
                let new_kind = if *enable {
                    ServerKind::BlackHole
                } else {
                    ServerKind::Normal
                };
                if let Some(next) = self.servers[idx].set_kind(new_kind) {
                    self.start_transfer(ctx, idx, next);
                }
            }
        }
        Vec::new()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, BlackHoleEv>, ev: BlackHoleEv) -> Vec<Completion> {
        let mut out = Vec::new();
        match ev {
            BlackHoleEv::TransferDone { server, seq } => {
                if seq != self.server_seq[server] {
                    return out; // that transfer was killed
                }
                let Some(conn) = self.active_transfer[server].take() else {
                    return out;
                };
                let size = self.request_size.remove(&conn).unwrap_or(0);
                self.conn_server.remove(&conn);
                if size == self.params.data_size {
                    self.transfers += 1;
                    self.transfer_series.push(ctx.now(), self.transfers as f64);
                    self.per_client_successes[conn.0].push(ctx.now());
                }
                out.push(Completion {
                    client: conn.0,
                    token: conn.1,
                    result: CmdResult::ok(""),
                });
                if let Some(next) = self.servers[server].finish_current() {
                    self.start_transfer(ctx, server, next);
                }
                out
            }
        }
    }

    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, BlackHoleEv>,
        _client: ClientId,
        _success: bool,
    ) -> Option<(Vm, Time)> {
        let env = self.unit_env();
        let seed = self.rng.next_u64();
        let vm = unit_vm(&self.script, self.params.discipline, env, seed);
        Some((vm, ctx.now() + self.params.unit_think))
    }
}

/// Results of a reader run.
#[derive(Debug)]
pub struct BlackHoleOutcome {
    /// Successful 100 MB transfers.
    pub transfers: u64,
    /// Failed/killed data attempts.
    pub collisions: u64,
    /// Failed/killed flag probes.
    pub deferrals: u64,
    /// Cumulative transfer timeline.
    pub transfer_series: Series,
    /// Cumulative collision timeline.
    pub collision_series: Series,
    /// Cumulative deferral timeline.
    pub deferral_series: Series,
    /// The longest time any single client went between successful
    /// transfers — the "hiccup" the Aloha reader suffers on the black
    /// hole.
    pub longest_stall: Dur,
    /// Events popped from this run's own queue (per-run engine work).
    pub events_popped: u64,
    /// Past-scheduled events the queue clamped forward to `now`.
    pub queue_clamps: u64,
}

/// Run the scenario for `duration` of virtual time (paper: 900 s).
pub fn run_blackhole(params: BlackHoleParams, duration: Dur) -> BlackHoleOutcome {
    run_blackhole_traced(params, duration, None)
}

/// [`run_blackhole`] with an optional structured-trace sink: every
/// reader VM plus the replica-server world record into it (attempt
/// spans, backoffs, flag-probe deferrals, transfer collisions).
pub fn run_blackhole_traced(
    params: BlackHoleParams,
    duration: Dur,
    trace: Option<SharedSink>,
) -> BlackHoleOutcome {
    let mut world = BlackHoleWorld::new(params.clone());
    world.trace.clone_from(&trace);
    let mut vms = Vec::with_capacity(params.n_clients);
    let mut rng = SimRng::new(params.seed ^ 0x5e1f);
    for _ in 0..params.n_clients {
        let env = world.unit_env();
        vms.push(unit_vm(
            &world.script,
            params.discipline,
            env,
            rng.next_u64(),
        ));
    }
    let plan = world.fault_plan.clone();
    let mut driver = SimDriver::new(world, vms);
    if let Some(sink) = trace {
        driver.set_trace(sink);
    }
    if plan.injections().next().is_some() {
        driver.arm_faults(plan);
    }
    driver.run_until(Time::ZERO + duration);
    let events_popped = driver.events_popped();
    let queue_clamps = driver.clamps();
    if queue_clamps > 0 {
        simgrid::trace::emit(
            &driver.trace().cloned(),
            driver.now(),
            simgrid::trace::NO_ID,
            simgrid::trace::NO_ID,
            simgrid::trace::TraceEv::QueueClamps {
                count: queue_clamps,
            },
        );
    }
    let w = &driver.world;
    let mut longest = Dur::ZERO;
    for times in &w.per_client_successes {
        let mut prev = Time::ZERO;
        for &t in times {
            longest = longest.max(t.saturating_since(prev));
            prev = t;
        }
        longest = longest.max((Time::ZERO + duration).saturating_since(prev));
    }
    BlackHoleOutcome {
        transfers: w.transfers,
        collisions: w.collisions,
        deferrals: w.deferrals,
        transfer_series: w.transfer_series.clone(),
        collision_series: w.collision_series.clone(),
        deferral_series: w.deferral_series.clone(),
        longest_stall: longest,
        events_popped,
        queue_clamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(d: Discipline) -> BlackHoleOutcome {
        let params = BlackHoleParams {
            discipline: d,
            ..BlackHoleParams::default()
        };
        run_blackhole(params, Dur::from_secs(900))
    }

    #[test]
    fn aloha_reader_makes_progress_but_stalls() {
        let o = run(Discipline::Aloha);
        assert!(o.transfers > 20, "transfers {}", o.transfers);
        assert!(o.collisions > 3, "collisions {}", o.collisions);
        assert!(
            o.longest_stall >= Dur::from_secs(55),
            "expected a ~60s black-hole stall, saw {}",
            o.longest_stall
        );
    }

    #[test]
    fn ethernet_reader_avoids_stalls() {
        let o = run(Discipline::Ethernet);
        assert!(o.transfers > 30, "transfers {}", o.transfers);
        assert!(o.deferrals > 3, "deferrals {}", o.deferrals);
        assert!(
            o.longest_stall < Dur::from_secs(55),
            "no 60s hiccups expected, saw {}",
            o.longest_stall
        );
    }

    #[test]
    fn ethernet_outperforms_aloha() {
        let a = run(Discipline::Aloha);
        let e = run(Discipline::Ethernet);
        assert!(
            e.transfers > a.transfers,
            "ethernet {} vs aloha {}",
            e.transfers,
            a.transfers
        );
        assert!(e.collisions < a.collisions.max(1));
    }

    #[test]
    fn no_black_hole_means_no_collisions_for_aloha() {
        let params = BlackHoleParams {
            discipline: Discipline::Aloha,
            black_holes: vec![],
            ..BlackHoleParams::default()
        };
        let o = run_blackhole(params, Dur::from_secs(300));
        assert_eq!(o.collisions, 0, "healthy servers, 3 clients, no misses");
        assert!(o.transfers > 20);
    }

    #[test]
    fn all_black_holes_means_no_transfers() {
        let params = BlackHoleParams {
            discipline: Discipline::Aloha,
            black_holes: vec![0, 1, 2],
            ..BlackHoleParams::default()
        };
        let o = run_blackhole(params, Dur::from_secs(300));
        assert_eq!(o.transfers, 0);
        assert!(o.collisions > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Discipline::Aloha);
        let b = run(Discipline::Aloha);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn url_parsing() {
        assert_eq!(parse_url("http://xxx/data"), Some(("xxx", "data")));
        assert_eq!(parse_url("http://yyy/flag"), Some(("yyy", "flag")));
        assert_eq!(parse_url("ftp://xxx/data"), None);
        assert_eq!(parse_url("http://nohost"), None);
    }
}
