//! Scenario 2 — the shared output buffer (Figures 4–5).
//!
//! N producer jobs write output files of unknown size (uniform in
//! (0, 1 MB]) into a 120 MB shared filesystem buffer; a consumer drains
//! completed files at 1 MB/s and deletes them (the Kangaroo pattern).
//! Files are written incrementally over one second; running out of
//! space mid-write is a *collision*: the partial file is deleted and
//! the producer retries under its discipline.
//!
//! The Ethernet producer cannot know its own future output size budget
//! a priori, but it can observe the buffer: it assumes every incomplete
//! file will grow to the average size of the completed ones, subtracts
//! that from the reported free space, and defers when what remains is
//! smaller than the file it is about to write.

use crate::driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver};
use crate::scripts::{buffer_script, unit_vm};
use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Vm};
use ftsh::Script;
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use simgrid::{DiskBuffer, FileId, Series, SimRng, WriteError};
use std::collections::HashMap;

/// One mebibyte.
pub const MB: u64 = 1 << 20;

/// Parameters of the buffer scenario (defaults: the paper's numbers).
#[derive(Clone, Debug)]
pub struct BufferParams {
    /// Number of producers (x-axis of Figures 4–5).
    pub n_producers: usize,
    /// Producer discipline.
    pub discipline: Discipline,
    /// Shared buffer capacity (paper: 120 MB).
    pub capacity: u64,
    /// Consumer drain rate in bytes/second (paper: 1 MB/s).
    pub consumer_rate: u64,
    /// Maximum output file size (paper: 1 MB, uniform from 0).
    pub max_file: u64,
    /// Time to produce (write) one file (paper: one per second).
    pub write_time: Dur,
    /// Number of incremental write chunks per file.
    pub chunks: u32,
    /// Consumer poll interval when the buffer has nothing complete.
    pub consumer_poll: Dur,
    /// Total I/O bandwidth of the shared filesystem in bytes/second.
    /// Producer write attempts (including ones that end in ENOSPC —
    /// the data still crosses the wire before the server rejects it)
    /// compete with the consumer's reads for this bandwidth; wasted
    /// collision traffic is precisely how Fixed producers starve the
    /// consumer in Figure 4.
    pub io_capacity: u64,
    /// Cost of generating the next output / probing free space.
    pub probe_cost: Dur,
    /// Pause after a failed unit (exhausted try) before the next file.
    pub failure_think: Dur,
    /// Metrics sampling interval.
    pub sample_every: Dur,
    /// Master seed.
    pub seed: u64,
    /// Fault plan for this run. `None` ⇒ [`builtin_fault_plan`]: the
    /// scenario's stock failure physics, nothing injected.
    ///
    /// [`builtin_fault_plan`]: BufferParams::builtin_fault_plan
    pub fault_plan: Option<FaultPlan>,
}

impl BufferParams {
    /// The scenario's built-in failure physics as a fault plan: writes
    /// collide with ENOSPC once the shared buffer holds `capacity`
    /// bytes. Custom plans replace this wholesale, so the capacity is
    /// itself a [`FaultSpec`] parameter.
    pub fn builtin_fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with(FaultSpec::physics(FaultKind::EnospcAtCapacity {
            capacity_bytes: self.capacity,
        }))
    }
}

impl Default for BufferParams {
    fn default() -> BufferParams {
        BufferParams {
            n_producers: 20,
            discipline: Discipline::Ethernet,
            capacity: 120 * MB,
            consumer_rate: MB,
            max_file: MB,
            write_time: Dur::from_secs(1),
            chunks: 4,
            consumer_poll: Dur::from_millis(100),
            io_capacity: 4 * MB,
            probe_cost: Dur::from_millis(10),
            failure_think: Dur::from_millis(100),
            sample_every: Dur::from_secs(5),
            seed: 0xbfed,
            fault_plan: None,
        }
    }
}

/// Scenario events.
#[derive(Debug)]
pub enum BufferEv {
    /// Write the next chunk of an in-progress file.
    WriteChunk {
        /// Producer that owns the write.
        client: ClientId,
        /// Its command token.
        token: CmdToken,
        /// Chunks still to write after this one.
        remaining: u32,
    },
    /// Consumer looks for (or finishes) a file.
    ConsumerTick,
    /// Consumer finished reading a file.
    ConsumerDone {
        /// The file being consumed.
        id: FileId,
    },
    /// Periodic metrics sample.
    Sample,
}

struct ActiveWrite {
    file: FileId,
    chunk_bytes: u64,
    last_chunk_bytes: u64,
    /// When the write began: ENOSPC surfaces at close time (as over
    /// NFS), so failures complete a full write-time after the start.
    started: Time,
}

/// The shared-buffer world.
pub struct BufferWorld {
    params: BufferParams,
    /// The effective fault plan (custom or built-in physics).
    fault_plan: FaultPlan,
    /// Injected [`FaultKind::EnospcWindow`]: every write chunk landing
    /// before this instant fails with ENOSPC regardless of occupancy.
    enospc_until: Time,
    /// Injected [`FaultKind::FreeSpaceLie`]: `(delta_bytes, until)` —
    /// the carrier-sense estimate is skewed by `delta_bytes` while the
    /// window is open.
    space_lie: (i64, Time),
    script: Script,
    rng: SimRng,
    /// The shared buffer.
    pub disk: DiskBuffer,
    /// In-flight writes by (client, token).
    active: HashMap<(ClientId, CmdToken), ActiveWrite>,
    consumer_busy: bool,
    /// Cumulative bytes producers attempted to write (successful or
    /// rejected) — the filesystem's ingress load.
    bytes_attempted: u64,
    /// Snapshot of (time, bytes_attempted) at the last consumer
    /// scheduling decision, for the congestion estimate.
    io_snapshot: (Time, u64),
    /// Files fully consumed (the paper's throughput metric).
    pub files_consumed: u64,
    /// Bytes consumed.
    pub bytes_consumed: u64,
    /// Files successfully completed by producers.
    pub files_produced: u64,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Timeline of cumulative files consumed.
    pub consumed_series: Series,
    /// Timeline of cumulative collisions.
    pub collision_series: Series,
    /// Timeline of buffer occupancy (bytes).
    pub occupancy_series: Series,
    /// Structured-trace sink for scenario-level events (probes,
    /// deferrals, ENOSPC collisions); `None` ⇒ no records, no cost.
    trace: Option<SharedSink>,
}

impl BufferWorld {
    fn new(params: BufferParams) -> BufferWorld {
        let fault_plan = params
            .fault_plan
            .clone()
            .unwrap_or_else(|| params.builtin_fault_plan());
        let capacity = fault_plan.capacity_physics().unwrap_or(params.capacity);
        BufferWorld {
            script: buffer_script(params.discipline),
            fault_plan,
            enospc_until: Time::ZERO,
            space_lie: (0, Time::ZERO),
            rng: SimRng::new(params.seed),
            disk: DiskBuffer::new(capacity),
            active: HashMap::new(),
            consumer_busy: false,
            bytes_attempted: 0,
            io_snapshot: (Time::ZERO, 0),
            files_consumed: 0,
            bytes_consumed: 0,
            files_produced: 0,
            deferrals: 0,
            consumed_series: Series::new("files consumed"),
            collision_series: Series::new("collisions"),
            occupancy_series: Series::new("occupancy"),
            trace: None,
            params,
        }
    }

    fn sample(&mut self, now: Time) {
        self.consumed_series.push(now, self.files_consumed as f64);
        self.collision_series
            .push(now, self.disk.collisions() as f64);
        self.occupancy_series.push(now, self.disk.used() as f64);
    }
}

impl CommandWorld for BufferWorld {
    type Ev = BufferEv;

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, BufferEv>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome {
        match spec.program() {
            // Generate the next output: its size is only known to the
            // job itself (captured into ${size} by the script).
            "make-output" => {
                let size = self.rng.range_u64(1, self.params.max_file + 1);
                ExecOutcome::At(
                    ctx.now() + self.params.probe_cost,
                    CmdResult::ok(format!("{size}\n")),
                )
            }
            // The Ethernet estimator over the observable buffer state.
            "estimate-space" => {
                let mut est = self.disk.ethernet_estimate_free();
                let (delta, until) = self.space_lie;
                if ctx.now() < until {
                    est = est.saturating_add(delta);
                }
                simgrid::trace::emit(
                    &self.trace,
                    ctx.now(),
                    client as i64,
                    NO_ID,
                    TraceEv::CarrierSense {
                        free: est.max(0) as u64,
                    },
                );
                if est <= 0 {
                    self.deferrals += 1;
                    simgrid::trace::emit(
                        &self.trace,
                        ctx.now(),
                        client as i64,
                        NO_ID,
                        TraceEv::Deferral,
                    );
                }
                ExecOutcome::At(
                    ctx.now() + self.params.probe_cost,
                    CmdResult::ok(format!("{est}\n")),
                )
            }
            "write-output" => {
                let Some(size) = spec.argv.get(1).and_then(|s| s.parse::<u64>().ok()) else {
                    return ExecOutcome::Now(CmdResult::fail());
                };
                let size = size.max(1);
                let chunks = self.params.chunks.max(1);
                let chunk_bytes = size / chunks as u64;
                let last_chunk_bytes = size - chunk_bytes * (chunks as u64 - 1);
                let file = self.disk.create();
                self.active.insert(
                    (client, token),
                    ActiveWrite {
                        file,
                        chunk_bytes,
                        last_chunk_bytes,
                        started: ctx.now(),
                    },
                );
                // First chunk lands after one chunk interval.
                ctx.schedule(
                    ctx.now() + self.params.write_time / chunks as u64,
                    BufferEv::WriteChunk {
                        client,
                        token,
                        remaining: chunks - 1,
                    },
                );
                ExecOutcome::Held
            }
            _ => ExecOutcome::Now(CmdResult::fail()),
        }
    }

    fn cancelled(&mut self, _ctx: &mut Ctx<'_, BufferEv>, client: ClientId, token: CmdToken) {
        // Deadline mid-write: abandon the partial file.
        if let Some(w) = self.active.remove(&(client, token)) {
            let _ = self.disk.delete(w.file);
        }
    }

    fn inject_fault(&mut self, ctx: &mut Ctx<'_, BufferEv>, kind: &FaultKind) -> Vec<Completion> {
        match kind {
            FaultKind::EnospcWindow { duration } => {
                self.enospc_until = self.enospc_until.max(ctx.now() + *duration);
            }
            FaultKind::FreeSpaceLie {
                delta_bytes,
                duration,
            } => {
                self.space_lie = (*delta_bytes, ctx.now() + *duration);
            }
            _ => {}
        }
        Vec::new()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, BufferEv>, ev: BufferEv) -> Vec<Completion> {
        let mut out = Vec::new();
        match ev {
            BufferEv::WriteChunk {
                client,
                token,
                remaining,
            } => {
                let Some(w) = self.active.get(&(client, token)) else {
                    return out; // cancelled or already resolved
                };
                let bytes = if remaining == 0 {
                    w.last_chunk_bytes
                } else {
                    w.chunk_bytes
                };
                let file = w.file;
                let started = w.started;
                self.bytes_attempted += bytes;
                // An injected ENOSPC window fails every write landing
                // inside it, occupancy notwithstanding.
                let res = if ctx.now() < self.enospc_until {
                    self.disk.force_enospc(file).and(Err(WriteError::NoSpace))
                } else {
                    self.disk.write(file, bytes)
                };
                match res {
                    Err(WriteError::NoSpace) => {
                        // Collision: DiskBuffer already deleted the
                        // partial file and counted it. The producer
                        // only learns at close time (NFS semantics),
                        // so the failure lands when the write would
                        // have finished.
                        simgrid::trace::emit(
                            &self.trace,
                            ctx.now(),
                            client as i64,
                            NO_ID,
                            TraceEv::Enospc,
                        );
                        self.active.remove(&(client, token));
                        let at = (started + self.params.write_time).max(ctx.now());
                        ctx.schedule_completion(at, client, token, CmdResult::fail());
                    }
                    Err(_) => {
                        self.active.remove(&(client, token));
                        out.push(Completion {
                            client,
                            token,
                            result: CmdResult::fail(),
                        });
                    }
                    Ok(()) => {
                        if remaining == 0 {
                            self.disk.complete(file).expect("file is writable");
                            self.files_produced += 1;
                            self.active.remove(&(client, token));
                            out.push(Completion {
                                client,
                                token,
                                result: CmdResult::ok(""),
                            });
                        } else {
                            ctx.schedule(
                                ctx.now() + self.params.write_time / self.params.chunks as u64,
                                BufferEv::WriteChunk {
                                    client,
                                    token,
                                    remaining: remaining - 1,
                                },
                            );
                        }
                    }
                }
            }
            BufferEv::ConsumerTick => {
                if self.consumer_busy {
                    return out;
                }
                match self.disk.oldest_complete() {
                    Some((id, size)) => {
                        self.consumer_busy = true;
                        // Congestion: producer write traffic (including
                        // rejected collision bytes) shares the
                        // filesystem with the consumer's read.
                        let (t0, b0) = self.io_snapshot;
                        let dt = ctx.now().saturating_since(t0).as_secs_f64();
                        let write_rate = if dt > 0.25 {
                            let r = (self.bytes_attempted - b0) as f64 / dt;
                            self.io_snapshot = (ctx.now(), self.bytes_attempted);
                            r
                        } else {
                            0.0
                        };
                        let slowdown = 1.0 + write_rate / self.params.io_capacity as f64;
                        let read_time = Dur::from_secs_f64(
                            size as f64 / self.params.consumer_rate as f64 * slowdown,
                        );
                        ctx.schedule(ctx.now() + read_time, BufferEv::ConsumerDone { id });
                    }
                    None => {
                        ctx.schedule(
                            ctx.now() + self.params.consumer_poll,
                            BufferEv::ConsumerTick,
                        );
                    }
                }
            }
            BufferEv::ConsumerDone { id } => {
                let size = self.disk.delete(id).expect("consumed file existed");
                self.files_consumed += 1;
                self.bytes_consumed += size;
                self.consumer_busy = false;
                ctx.schedule(ctx.now(), BufferEv::ConsumerTick);
            }
            BufferEv::Sample => {
                self.sample(ctx.now());
                ctx.schedule(ctx.now() + self.params.sample_every, BufferEv::Sample);
            }
        }
        out
    }

    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, BufferEv>,
        _client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)> {
        let think = if success {
            Dur::ZERO
        } else {
            self.params.failure_think
        };
        let seed = self.rng.next_u64();
        let vm = unit_vm(&self.script, self.params.discipline, ftsh::Env::new(), seed);
        Some((vm, ctx.now() + think))
    }
}

/// Results of a buffer run.
#[derive(Debug)]
pub struct BufferOutcome {
    /// Files drained by the consumer over the whole run.
    pub files_consumed: u64,
    /// Bytes drained.
    pub bytes_consumed: u64,
    /// Files completed by producers.
    pub files_produced: u64,
    /// Mid-write ENOSPC collisions.
    pub collisions: u64,
    /// Ethernet deferrals.
    pub deferrals: u64,
    /// Timeline of cumulative consumption.
    pub consumed_series: Series,
    /// Timeline of cumulative collisions.
    pub collision_series: Series,
    /// Timeline of buffer occupancy.
    pub occupancy_series: Series,
    /// Events popped from this run's own queue (per-run engine work).
    pub events_popped: u64,
    /// Past-scheduled events the queue clamped forward to `now`.
    pub queue_clamps: u64,
}

impl BufferOutcome {
    /// Files consumed within `[from, to]`, from the sampled series.
    pub fn consumed_between(&self, from: Time, to: Time) -> f64 {
        let v = |t: Time| {
            self.consumed_series
                .points
                .iter()
                .take_while(|&&(x, _)| x <= t.as_secs_f64())
                .last()
                .map(|&(_, y)| y)
                .unwrap_or(0.0)
        };
        v(to) - v(from)
    }
}

/// Run the scenario for `duration` of virtual time.
pub fn run_buffer(params: BufferParams, duration: Dur) -> BufferOutcome {
    run_buffer_traced(params, duration, None)
}

/// [`run_buffer`] with an optional structured-trace sink: every
/// producer VM plus the buffer world record into it (attempt spans,
/// backoffs, space probes, deferrals, ENOSPC collisions).
pub fn run_buffer_traced(
    params: BufferParams,
    duration: Dur,
    trace: Option<SharedSink>,
) -> BufferOutcome {
    let mut world = BufferWorld::new(params.clone());
    world.trace.clone_from(&trace);
    let rng = SimRng::new(params.seed ^ 0xD15C);
    let vms: Vec<Vm> = (0..params.n_producers)
        .map(|c| {
            unit_vm(
                &world.script,
                params.discipline,
                ftsh::Env::new(),
                rng.fork(c as u64).next_u64(),
            )
        })
        .collect();
    let plan = world.fault_plan.clone();
    let mut driver = SimDriver::new(world, vms);
    if let Some(sink) = trace {
        driver.set_trace(sink);
    }
    if plan.injections().next().is_some() {
        driver.arm_faults(plan);
    }
    driver.schedule_world(Time::ZERO, BufferEv::ConsumerTick);
    driver.schedule_world(Time::ZERO, BufferEv::Sample);
    driver.run_until(Time::ZERO + duration);
    let events_popped = driver.events_popped();
    let queue_clamps = driver.clamps();
    if queue_clamps > 0 {
        simgrid::trace::emit(
            &driver.trace().cloned(),
            driver.now(),
            simgrid::trace::NO_ID,
            simgrid::trace::NO_ID,
            simgrid::trace::TraceEv::QueueClamps {
                count: queue_clamps,
            },
        );
    }
    let w = &driver.world;
    BufferOutcome {
        files_consumed: w.files_consumed,
        bytes_consumed: w.bytes_consumed,
        files_produced: w.files_produced,
        collisions: w.disk.collisions(),
        deferrals: w.deferrals,
        consumed_series: w.consumed_series.clone(),
        collision_series: w.collision_series.clone(),
        occupancy_series: w.occupancy_series.clone(),
        events_popped,
        queue_clamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(discipline: Discipline, n: usize, secs: u64) -> BufferOutcome {
        let params = BufferParams {
            n_producers: n,
            discipline,
            ..BufferParams::default()
        };
        run_buffer(params, Dur::from_secs(secs))
    }

    #[test]
    fn producers_fill_and_consumer_drains() {
        let o = quick(Discipline::Aloha, 4, 60);
        assert!(o.files_produced > 20, "produced {}", o.files_produced);
        assert!(o.files_consumed > 10, "consumed {}", o.files_consumed);
        assert!(o.bytes_consumed > 0);
    }

    #[test]
    fn no_collisions_while_buffer_is_ample() {
        // 4 producers x ~0.5 MB/s vs 120 MB: no pressure inside 60 s.
        let o = quick(Discipline::Fixed, 4, 60);
        assert_eq!(o.collisions, 0);
    }

    #[test]
    fn heavy_fixed_load_collides() {
        let o = quick(Discipline::Fixed, 40, 300);
        assert!(o.collisions > 50, "collisions {}", o.collisions);
    }

    #[test]
    fn ethernet_avoids_collisions_under_load() {
        let e = quick(Discipline::Ethernet, 40, 300);
        let f = quick(Discipline::Fixed, 40, 300);
        assert!(
            e.collisions * 10 < f.collisions.max(1),
            "ethernet {} vs fixed {}",
            e.collisions,
            f.collisions
        );
        assert!(e.deferrals > 0, "carrier sense must engage");
    }

    #[test]
    fn ethernet_throughput_beats_fixed_under_load() {
        let e = quick(Discipline::Ethernet, 40, 300);
        let f = quick(Discipline::Fixed, 40, 300);
        assert!(
            e.files_consumed > f.files_consumed,
            "ethernet {} vs fixed {}",
            e.files_consumed,
            f.files_consumed
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Discipline::Aloha, 10, 120);
        let b = quick(Discipline::Aloha, 10, 120);
        assert_eq!(a.files_consumed, b.files_consumed);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn consumed_between_reads_series() {
        let o = quick(Discipline::Aloha, 4, 120);
        let whole = o.consumed_between(Time::ZERO, Time::from_secs(120));
        assert!((whole - o.files_consumed as f64).abs() <= 3.0);
        let half = o.consumed_between(Time::from_secs(60), Time::from_secs(120));
        assert!(half <= whole);
    }
}
