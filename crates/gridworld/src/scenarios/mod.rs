//! The paper's three evaluation scenarios, end to end.

pub mod blackhole;
pub mod buffer;
pub mod submit;
