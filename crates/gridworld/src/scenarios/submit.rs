//! Scenario 1 — job submission (Figures 1–3).
//!
//! N submitters run `condor_submit` against one Condor schedd. The
//! contended resource is the kernel file-descriptor table: every
//! running `condor_submit` *attempt* pins descriptors (stdio, the job
//! file, libraries, its socket) for its lifetime, accepted submissions
//! keep them pinned while queued at the schedd, and the schedd itself
//! needs a burst of transient descriptors to service each submission.
//! When that burst cannot be allocated the schedd dies — failing every
//! connected client at once, the "broadcast jam" visible as upward FD
//! spikes in Figure 2 — and restarts after a downtime.
//!
//! Attempt lifecycle: allocate FDs (or fail to even start), one second
//! of client-side startup, then connect. A down schedd or a full
//! accept backlog refuses the connection; otherwise the submission
//! queues and the single-threaded schedd services it in FIFO order,
//! pausing briefly for bookkeeping between services — the window in
//! which aggressive clients can steal the descriptors it needs.
//!
//! The Ethernet client reads the free-descriptor count
//! (`cut -f2 /proc/sys/fs/file-nr`) and defers below a threshold of
//! 1000, which keeps the whole system out of the crash region.
//!
//! Service time grows mildly with the number of submitter processes to
//! model CPU competition (§5: the Ethernet client keeps "about 50
//! percent of peak performance under load, due to competition for
//! managed resources, such as the CPU").

use crate::driver::{ClientId, CommandWorld, Completion, Ctx, ExecOutcome, SimDriver};
use crate::scripts::{submit_script, unit_vm};
use ftsh::vm::{CmdResult, CmdToken, CommandSpec, Vm};
use ftsh::Script;
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::{SharedSink, TraceEv, NO_ID};
use simgrid::{FdTable, Series, SimRng};
use std::collections::{HashMap, VecDeque};

/// Parameters of the submission scenario. Defaults reproduce the
/// paper's setup (see DESIGN.md, experiments E1–E3).
#[derive(Clone, Debug)]
pub struct SubmitParams {
    /// Number of concurrent submitters (the x-axis of Figure 1).
    pub n_clients: usize,
    /// Client discipline.
    pub discipline: Discipline,
    /// Kernel FD table size (the paper's figures top out near 8000).
    pub fd_capacity: u64,
    /// Descriptors pinned by one running submission attempt.
    pub fds_per_attempt: u64,
    /// Transient descriptors the schedd needs while servicing one
    /// submission; failing to get them kills the schedd.
    pub schedd_service_fds: u64,
    /// Client-side startup time of `condor_submit` before it connects.
    pub attempt_startup: Dur,
    /// Maximum connections the schedd will hold (accept backlog);
    /// beyond this, connections are refused quickly.
    pub backlog: usize,
    /// Base time to service one submission on an idle machine.
    pub base_service: Dur,
    /// CPU competition: service time scales by `1 + n_clients / this`.
    pub cpu_scale: f64,
    /// How quickly a refused/failed attempt reports back.
    pub connect_fail_delay: Dur,
    /// Bookkeeping gap between services: the window in which clients
    /// can steal the schedd's descriptors.
    pub service_gap: Dur,
    /// Schedd restart downtime after a crash.
    pub restart_downtime: Dur,
    /// Ethernet carrier-sense threshold (free FDs).
    pub threshold: u64,
    /// Pause after a successful unit before submitting the next job.
    pub success_think: Dur,
    /// Pause after a failed unit before starting over (the Fixed
    /// client repeats "without delay").
    pub failure_think: Dur,
    /// Cost of the carrier-sense probe itself.
    pub probe_cost: Dur,
    /// Clients start uniformly spread over this span.
    pub start_stagger: Dur,
    /// Metrics sampling interval for the timeline figures.
    pub sample_every: Dur,
    /// Master seed.
    pub seed: u64,
    /// Override the discipline's backoff policy (for ablations such as
    /// removing the random spreading factor).
    pub backoff_override: Option<retry::BackoffPolicy>,
    /// Fault plan for this run. `None` ⇒ [`builtin_fault_plan`]: the
    /// scenario's stock failure physics, nothing injected.
    ///
    /// [`builtin_fault_plan`]: SubmitParams::builtin_fault_plan
    pub fault_plan: Option<FaultPlan>,
}

impl SubmitParams {
    /// The scenario's built-in failure physics expressed as a fault
    /// plan: the schedd crashes on transient-FD starvation
    /// (`schedd_service_fds`) and refuses submissions beyond `backlog`.
    /// Custom plans replace this wholesale, so every built-in knob is
    /// a [`FaultSpec`] parameter.
    pub fn builtin_fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with(FaultSpec::physics(FaultKind::ScheddCrashOnStarvation {
            service_fds: self.schedd_service_fds as u32,
            backlog: self.backlog,
        }))
    }
}

impl Default for SubmitParams {
    fn default() -> SubmitParams {
        SubmitParams {
            n_clients: 400,
            discipline: Discipline::Ethernet,
            fd_capacity: 8000,
            fds_per_attempt: 20,
            schedd_service_fds: 50,
            attempt_startup: Dur::from_secs(1),
            backlog: 1000,
            base_service: Dur::from_millis(300),
            cpu_scale: 400.0,
            connect_fail_delay: Dur::from_millis(200),
            service_gap: Dur::from_millis(50),
            restart_downtime: Dur::from_secs(10),
            threshold: 1000,
            success_think: Dur::from_secs(1),
            failure_think: Dur::ZERO,
            probe_cost: Dur::from_millis(10),
            start_stagger: Dur::from_secs(10),
            sample_every: Dur::from_secs(5),
            seed: 0x5eed,
            backoff_override: None,
            fault_plan: None,
        }
    }
}

/// Scenario events.
#[derive(Debug)]
pub enum SubmitEv {
    /// A submission attempt finished its client-side startup and is
    /// ready to connect.
    AttemptReady {
        /// Owning client.
        client: ClientId,
        /// Its command token.
        token: CmdToken,
    },
    /// The submission being serviced finished (valid only for the
    /// matching service sequence number).
    ServiceDone {
        /// Sequence number of the service this event belongs to.
        seq: u64,
    },
    /// The bookkeeping gap ended: pick up the next queued submission.
    ServiceStart,
    /// The schedd comes back up after a crash.
    Restart,
    /// Periodic metrics sample.
    Sample,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SubState {
    /// Client-side startup in progress (holds attempt FDs).
    Starting,
    /// Connected, waiting in the schedd's FIFO.
    Queued,
    /// Being serviced.
    Serving,
}

/// The schedd + FD-table world.
pub struct SubmitWorld {
    params: SubmitParams,
    /// The effective fault plan (custom or built-in physics).
    fault_plan: FaultPlan,
    /// Transient FDs per service, read from the plan's crash physics.
    service_fds: u64,
    /// Accept backlog, read from the plan's crash physics.
    backlog: usize,
    script: Script,
    rng: SimRng,
    fds: FdTable,
    schedd_up: bool,
    /// Live submission attempts and where they are.
    subs: HashMap<(ClientId, CmdToken), SubState>,
    /// FIFO of connected submissions waiting for service.
    queue: VecDeque<(ClientId, CmdToken)>,
    /// When each live submission connected (for sojourn stats).
    enqueued_at: HashMap<(ClientId, CmdToken), Time>,
    /// Sojourn (connect-to-served) times of completed submissions, in
    /// seconds.
    pub sojourns: Vec<f64>,
    serving: Option<(ClientId, CmdToken)>,
    service_seq: u64,
    transient_held: bool,
    gap_pending: bool,
    /// Completed (serviced) job submissions — the paper's throughput
    /// metric.
    pub jobs_submitted: u64,
    /// Schedd crashes observed.
    pub crashes: u64,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Refused or FD-starved attempts.
    pub failed_connects: u64,
    /// Timeline of available FDs.
    pub fd_series: Series,
    /// Timeline of cumulative jobs submitted.
    pub jobs_series: Series,
    /// Structured-trace sink for scenario-level events (crashes,
    /// probes, deferrals); `None` ⇒ no records, no cost.
    trace: Option<SharedSink>,
    /// Interned probe outputs keyed by the free-FD count: the same
    /// handful of counts is reported millions of times, so the probe
    /// path reuses one `Istr` per distinct value instead of formatting
    /// a fresh `String` each time.
    probe_out: HashMap<u64, ftsh::Istr>,
}

impl SubmitWorld {
    fn new(params: SubmitParams) -> SubmitWorld {
        let script = submit_script(params.discipline, params.threshold);
        let fault_plan = params
            .fault_plan
            .clone()
            .unwrap_or_else(|| params.builtin_fault_plan());
        let (service_fds, backlog) = fault_plan
            .crash_physics()
            .map(|(f, b)| (u64::from(f), b))
            .unwrap_or((params.schedd_service_fds, params.backlog));
        SubmitWorld {
            fault_plan,
            service_fds,
            backlog,
            rng: SimRng::new(params.seed),
            fds: FdTable::new(params.fd_capacity),
            schedd_up: true,
            subs: HashMap::new(),
            queue: VecDeque::new(),
            enqueued_at: HashMap::new(),
            sojourns: Vec::new(),
            serving: None,
            service_seq: 0,
            transient_held: false,
            gap_pending: false,
            jobs_submitted: 0,
            crashes: 0,
            deferrals: 0,
            failed_connects: 0,
            fd_series: Series::new("available FDs"),
            jobs_series: Series::new("jobs submitted"),
            trace: None,
            probe_out: HashMap::new(),
            script,
            params,
        }
    }

    fn service_time(&self) -> Dur {
        let factor = 1.0 + self.params.n_clients as f64 / self.params.cpu_scale;
        self.params.base_service.mul_f64(factor)
    }

    /// Drop a submission's descriptors and bookkeeping.
    fn release_sub(&mut self, conn: (ClientId, CmdToken)) {
        if self.subs.remove(&conn).is_some() {
            self.fds.release(self.params.fds_per_attempt);
        }
        self.enqueued_at.remove(&conn);
    }

    /// Begin servicing the head of the queue. On transient-FD
    /// starvation the schedd crashes; the resulting mass failures are
    /// appended to `out`.
    fn start_service(&mut self, ctx: &mut Ctx<'_, SubmitEv>, out: &mut Vec<Completion>) {
        debug_assert!(self.serving.is_none());
        let Some(head) = self.queue.pop_front() else {
            return;
        };
        self.serving = Some(head);
        self.subs.insert(head, SubState::Serving);
        if self.fds.alloc(self.service_fds).is_err() {
            self.crash(ctx, out);
            return;
        }
        self.transient_held = true;
        self.service_seq += 1;
        ctx.schedule(
            ctx.now() + self.service_time(),
            SubmitEv::ServiceDone {
                seq: self.service_seq,
            },
        );
    }

    /// The schedd dies: every connected client fails at once (the
    /// broadcast jam) and all of their descriptors return to the table.
    fn crash(&mut self, ctx: &mut Ctx<'_, SubmitEv>, out: &mut Vec<Completion>) {
        self.crash_after(ctx, out, self.params.restart_downtime);
    }

    /// [`crash`](Self::crash) with an explicit downtime — injected
    /// [`FaultKind::ScheddKill`] faults may override the default.
    fn crash_after(&mut self, ctx: &mut Ctx<'_, SubmitEv>, out: &mut Vec<Completion>, down: Dur) {
        self.crashes += 1;
        simgrid::trace::emit(&self.trace, ctx.now(), NO_ID, NO_ID, TraceEv::ScheddCrash);
        self.schedd_up = false;
        self.gap_pending = false;
        self.service_seq += 1; // invalidate any pending ServiceDone
        if self.transient_held {
            self.fds.release(self.service_fds);
            self.transient_held = false;
        }
        if let Some(conn) = self.serving.take() {
            self.release_sub(conn);
            out.push(Completion {
                client: conn.0,
                token: conn.1,
                result: CmdResult::fail(),
            });
        }
        let queued: Vec<_> = self.queue.drain(..).collect();
        for conn in queued {
            self.release_sub(conn);
            out.push(Completion {
                client: conn.0,
                token: conn.1,
                result: CmdResult::fail(),
            });
        }
        ctx.schedule(ctx.now() + down, SubmitEv::Restart);
    }

    fn sample(&mut self, now: Time) {
        self.fd_series.push(now, self.fds.free() as f64);
        self.jobs_series.push(now, self.jobs_submitted as f64);
    }
}

impl CommandWorld for SubmitWorld {
    type Ev = SubmitEv;

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_, SubmitEv>,
        client: ClientId,
        token: CmdToken,
        spec: &CommandSpec,
    ) -> ExecOutcome {
        match spec.program() {
            // The carrier-sense probe: report free descriptors.
            "cut" => {
                let free = self.fds.free();
                simgrid::trace::emit(
                    &self.trace,
                    ctx.now(),
                    client as i64,
                    NO_ID,
                    TraceEv::CarrierSense { free },
                );
                if free < self.params.threshold {
                    self.deferrals += 1;
                    simgrid::trace::emit(
                        &self.trace,
                        ctx.now(),
                        client as i64,
                        NO_ID,
                        TraceEv::Deferral,
                    );
                }
                // Interned per distinct count, with no trailing
                // newline so the VM's capture fast path can bind the
                // handle itself instead of re-trimming into a copy.
                let out = self
                    .probe_out
                    .entry(free)
                    .or_insert_with(|| ftsh::Istr::from(free.to_string()))
                    .clone();
                ExecOutcome::At(ctx.now() + self.params.probe_cost, CmdResult::ok(out))
            }
            "condor_submit" => {
                // The attempt's own descriptors: without them the
                // process cannot even be loaded and run.
                if self.fds.alloc(self.params.fds_per_attempt).is_err() {
                    self.failed_connects += 1;
                    return ExecOutcome::At(
                        ctx.now() + self.params.connect_fail_delay,
                        CmdResult::fail(),
                    );
                }
                self.subs.insert((client, token), SubState::Starting);
                ctx.schedule(
                    ctx.now() + self.params.attempt_startup,
                    SubmitEv::AttemptReady { client, token },
                );
                ExecOutcome::Held
            }
            _ => ExecOutcome::Now(CmdResult::fail()),
        }
    }

    fn cancelled(&mut self, ctx: &mut Ctx<'_, SubmitEv>, client: ClientId, token: CmdToken) {
        let conn = (client, token);
        match self.subs.get(&conn) {
            None => {}
            Some(SubState::Starting) => self.release_sub(conn),
            Some(SubState::Queued) => {
                self.queue.retain(|&c| c != conn);
                self.release_sub(conn);
            }
            Some(SubState::Serving) => {
                self.serving = None;
                self.service_seq += 1;
                if self.transient_held {
                    self.fds.release(self.service_fds);
                    self.transient_held = false;
                }
                self.release_sub(conn);
                if !self.gap_pending {
                    self.gap_pending = true;
                    ctx.schedule(ctx.now() + self.params.service_gap, SubmitEv::ServiceStart);
                }
            }
        }
    }

    fn inject_fault(&mut self, ctx: &mut Ctx<'_, SubmitEv>, kind: &FaultKind) -> Vec<Completion> {
        let mut out = Vec::new();
        match kind {
            FaultKind::ScheddKill { downtime } if self.schedd_up => {
                let down = downtime.unwrap_or(self.params.restart_downtime);
                self.crash_after(ctx, &mut out, down);
            }
            FaultKind::ScheddRestart => {
                self.schedd_up = true;
                if self.serving.is_none() && !self.gap_pending {
                    self.start_service(ctx, &mut out);
                }
            }
            _ => {}
        }
        out
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, SubmitEv>, ev: SubmitEv) -> Vec<Completion> {
        let mut out = Vec::new();
        match ev {
            SubmitEv::AttemptReady { client, token } => {
                let conn = (client, token);
                if self.subs.get(&conn) != Some(&SubState::Starting) {
                    return out; // cancelled while starting up
                }
                if !self.schedd_up || self.queue.len() >= self.backlog {
                    // Connection refused.
                    self.failed_connects += 1;
                    self.release_sub(conn);
                    out.push(Completion {
                        client,
                        token,
                        result: CmdResult::fail(),
                    });
                    return out;
                }
                self.subs.insert(conn, SubState::Queued);
                self.queue.push_back(conn);
                self.enqueued_at.insert(conn, ctx.now());
                if self.serving.is_none() && !self.gap_pending {
                    self.start_service(ctx, &mut out);
                }
            }
            SubmitEv::ServiceDone { seq } => {
                if seq != self.service_seq || self.serving.is_none() {
                    return out; // stale: service aborted or schedd died
                }
                let conn = self.serving.take().expect("checked");
                if self.transient_held {
                    self.fds.release(self.service_fds);
                    self.transient_held = false;
                }
                if let Some(&t0) = self.enqueued_at.get(&conn) {
                    self.sojourns
                        .push(ctx.now().saturating_since(t0).as_secs_f64());
                }
                self.release_sub(conn);
                self.jobs_submitted += 1;
                out.push(Completion {
                    client: conn.0,
                    token: conn.1,
                    result: CmdResult::ok(""),
                });
                self.gap_pending = true;
                ctx.schedule(ctx.now() + self.params.service_gap, SubmitEv::ServiceStart);
            }
            SubmitEv::ServiceStart => {
                self.gap_pending = false;
                if self.schedd_up && self.serving.is_none() {
                    self.start_service(ctx, &mut out);
                }
            }
            SubmitEv::Restart => {
                self.schedd_up = true;
            }
            SubmitEv::Sample => {
                self.sample(ctx.now());
                ctx.schedule(ctx.now() + self.params.sample_every, SubmitEv::Sample);
            }
        }
        out
    }

    fn unit_done(
        &mut self,
        ctx: &mut Ctx<'_, SubmitEv>,
        _client: ClientId,
        success: bool,
    ) -> Option<(Vm, Time)> {
        let think = if success {
            self.params.success_think
        } else {
            self.params.failure_think
        };
        let seed = self.rng.next_u64();
        let mut vm = unit_vm(&self.script, self.params.discipline, ftsh::Env::new(), seed);
        if let Some(p) = self.params.backoff_override {
            vm.set_default_backoff(p);
        }
        Some((vm, ctx.now() + think))
    }
}

/// Results of one submission run.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Jobs fully serviced by the schedd.
    pub jobs_submitted: u64,
    /// Times the schedd crashed from descriptor starvation.
    pub crashes: u64,
    /// Carrier-sense deferrals (Ethernet only).
    pub deferrals: u64,
    /// Refused or FD-starved attempts.
    pub failed_connects: u64,
    /// Lowest free-FD level seen.
    pub min_free_fds: u64,
    /// Timeline of free descriptors (sampled).
    pub fd_series: Series,
    /// Timeline of cumulative submissions (sampled).
    pub jobs_series: Series,
    /// Aggregated ftsh log summary across all finished work units
    /// (attempts, backoffs, kills).
    pub client_totals: ftsh::LogSummary,
    /// Median connect-to-served latency in seconds (None if no job
    /// completed).
    pub sojourn_p50: Option<f64>,
    /// 95th-percentile connect-to-served latency in seconds.
    pub sojourn_p95: Option<f64>,
    /// Events popped from this run's own queue (per-run engine work).
    pub events_popped: u64,
    /// Past-scheduled events the queue clamped forward to `now`
    /// (nonzero means scenario or driver code asked for an instant
    /// already in the past).
    pub queue_clamps: u64,
}

/// Run the scenario for `duration` of virtual time.
///
/// ```
/// use gridworld::{run_submission, SubmitParams};
/// use retry::{Discipline, Dur};
///
/// let o = run_submission(
///     SubmitParams {
///         n_clients: 5,
///         discipline: Discipline::Aloha,
///         ..SubmitParams::default()
///     },
///     Dur::from_secs(30),
/// );
/// assert!(o.jobs_submitted > 0);
/// assert_eq!(o.crashes, 0);
/// ```
pub fn run_submission(params: SubmitParams, duration: Dur) -> SubmitOutcome {
    run_submission_traced(params, duration, None)
}

/// [`run_submission`] with an optional structured-trace sink: every
/// client VM plus the schedd world record into it (attempt spans,
/// backoffs, probes, deferrals, crashes).
pub fn run_submission_traced(
    params: SubmitParams,
    duration: Dur,
    trace: Option<SharedSink>,
) -> SubmitOutcome {
    let mut world = SubmitWorld::new(params.clone());
    world.trace.clone_from(&trace);
    let mut rng = SimRng::new(params.seed ^ 0xC11E);
    let vms: Vec<Vm> = (0..params.n_clients)
        .map(|c| {
            let mut vm = unit_vm(
                &world.script,
                params.discipline,
                ftsh::Env::new(),
                rng.fork(c as u64).next_u64(),
            );
            if let Some(p) = params.backoff_override {
                vm.set_default_backoff(p);
            }
            vm
        })
        .collect();
    let starts: Vec<Time> = (0..params.n_clients)
        .map(|_| {
            Time::ZERO
                + Dur::from_secs_f64(rng.uniform(0.0, params.start_stagger.as_secs_f64().max(1e-9)))
        })
        .collect();
    let plan = world.fault_plan.clone();
    let mut driver = SimDriver::with_starts(world, vms, starts);
    if let Some(sink) = trace {
        driver.set_trace(sink);
    }
    if plan.injections().next().is_some() {
        driver.arm_faults(plan);
    }
    driver.schedule_world(Time::ZERO, SubmitEv::Sample);
    driver.run_until(Time::ZERO + duration);
    let events_popped = driver.events_popped();
    let queue_clamps = driver.clamps();
    if queue_clamps > 0 {
        simgrid::trace::emit(
            &driver.trace().cloned(),
            driver.now(),
            NO_ID,
            NO_ID,
            TraceEv::QueueClamps {
                count: queue_clamps,
            },
        );
    }
    let totals = driver.log_totals;
    let w = &driver.world;
    let mut sojourns = w.sojourns.clone();
    let p50 = simgrid::percentile(&mut sojourns, 0.5);
    let p95 = simgrid::percentile(&mut sojourns, 0.95);
    SubmitOutcome {
        jobs_submitted: w.jobs_submitted,
        crashes: w.crashes,
        deferrals: w.deferrals,
        failed_connects: w.failed_connects,
        min_free_fds: w.fds.min_free_seen(),
        fd_series: w.fd_series.clone(),
        jobs_series: w.jobs_series.clone(),
        client_totals: totals,
        sojourn_p50: p50,
        sojourn_p95: p95,
        events_popped,
        queue_clamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(discipline: Discipline, n: usize) -> SubmitOutcome {
        let params = SubmitParams {
            n_clients: n,
            discipline,
            ..SubmitParams::default()
        };
        run_submission(params, Dur::from_secs(120))
    }

    #[test]
    fn low_load_all_disciplines_submit() {
        for d in Discipline::ALL {
            let o = quick(d, 20);
            assert!(o.jobs_submitted > 50, "{d}: {} jobs", o.jobs_submitted);
            assert_eq!(o.crashes, 0, "{d} must not crash the schedd at n=20");
        }
    }

    #[test]
    fn fixed_overload_crashes_schedd_to_near_zero() {
        let o = quick(Discipline::Fixed, 450);
        assert!(o.crashes >= 2, "crash loop expected, got {}", o.crashes);
        let healthy = quick(Discipline::Fixed, 100).jobs_submitted;
        assert!(
            o.jobs_submitted * 4 < healthy,
            "fixed should collapse: {} vs healthy {}",
            o.jobs_submitted,
            healthy
        );
    }

    #[test]
    fn ethernet_overload_keeps_schedd_alive() {
        let o = quick(Discipline::Ethernet, 450);
        assert_eq!(o.crashes, 0, "carrier sense must prevent crashes");
        assert!(
            o.min_free_fds >= 300,
            "free FDs held near threshold, saw {}",
            o.min_free_fds
        );
        assert!(o.jobs_submitted > 100, "{} jobs", o.jobs_submitted);
        assert!(o.deferrals > 0);
    }

    #[test]
    fn ethernet_beats_aloha_beats_fixed_under_overload() {
        let e = quick(Discipline::Ethernet, 450).jobs_submitted;
        let a = quick(Discipline::Aloha, 450).jobs_submitted;
        let f = quick(Discipline::Fixed, 450).jobs_submitted;
        assert!(e > a, "ethernet {e} <= aloha {a}");
        assert!(a > f, "aloha {a} <= fixed {f}");
    }

    #[test]
    fn aloha_fd_timeline_recovers_after_crashes() {
        // The Figure 2 sawtooth: after the initial exhaustion the
        // backoff spreads clients out and free FDs rise again.
        let o = quick(Discipline::Aloha, 450);
        assert!(o.crashes >= 1, "aloha must crash at 450: {}", o.crashes);
        let late_max = o
            .fd_series
            .points
            .iter()
            .filter(|&&(t, _)| t > 20.0)
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        assert!(
            late_max > 2000.0,
            "free FDs should spike upward after crashes, max {late_max}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Discipline::Aloha, 100);
        let b = quick(Discipline::Aloha, 100);
        assert_eq!(a.jobs_submitted, b.jobs_submitted);
        assert_eq!(a.fd_series, b.fd_series);
    }

    #[test]
    fn sojourn_latency_grows_with_load() {
        let light = quick(Discipline::Ethernet, 20);
        let heavy = quick(Discipline::Ethernet, 450);
        let (l, h) = (light.sojourn_p50.unwrap(), heavy.sojourn_p50.unwrap());
        assert!(
            h > 5.0 * l,
            "queueing under load: light p50 {l:.2}s vs heavy p50 {h:.2}s"
        );
        assert!(heavy.sojourn_p95.unwrap() >= h);
    }

    #[test]
    fn aggregated_log_shows_backoff_under_overload() {
        let a = quick(Discipline::Aloha, 450);
        assert!(a.client_totals.attempts > a.jobs_submitted);
        assert!(
            a.client_totals.total_backoff > retry::Dur::from_mins(10),
            "population-wide backoff time: {}",
            a.client_totals.total_backoff
        );
        let f = quick(Discipline::Fixed, 450);
        assert_eq!(f.client_totals.backoffs, 0, "fixed clients never back off");
    }

    #[test]
    fn samples_cover_the_window() {
        let o = quick(Discipline::Ethernet, 50);
        assert!(o.fd_series.len() >= 23, "samples: {}", o.fd_series.len());
        assert_eq!(o.fd_series.len(), o.jobs_series.len());
    }
}
