//! Parallel fan-out of independent sweep points across OS threads.
//!
//! The multi-point figures (1, 4, 5 and the ablations) run one
//! discrete-event simulation per `(discipline, population)` point, and
//! the points share nothing: each builds its own world, VM population
//! and seeded RNG stream. [`map`] exploits that independence by
//! fanning the points over `std::thread::scope` workers while
//! preserving input order in the output, so a parallel sweep is
//! bit-identical to a sequential one — per-point determinism is a
//! property of the point's seed, not of scheduling.
//!
//! Worker count defaults to the machine's available parallelism
//! (capped by the number of points) and can be pinned with the
//! `EG_SWEEP_THREADS` environment variable; `EG_SWEEP_THREADS=1`
//! forces the sequential baseline the perf harness compares against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// The worker count [`map`] would use for `n_items` points: available
/// parallelism capped by the item count, overridden by
/// `EG_SWEEP_THREADS` when set.
///
/// An unusable override (not a number, or zero) falls back to the
/// default — but warns once on stderr naming the rejected value, so a
/// typo like `EG_SWEEP_THREADS=two` cannot silently benchmark the
/// wrong configuration.
pub fn configured_threads(n_items: usize) -> usize {
    let default = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let n = match std::env::var("EG_SWEEP_THREADS") {
        Ok(v) => match parse_thread_override(&v) {
            Some(t) => t,
            None => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: ignoring EG_SWEEP_THREADS={v:?}: \
                         expected a positive integer, using default ({default})"
                    );
                });
                default
            }
        },
        Err(_) => default,
    };
    n.min(n_items).max(1)
}

/// Parse an `EG_SWEEP_THREADS` value: a positive integer, or `None`
/// for anything unusable (non-numeric, zero).
pub fn parse_thread_override(v: &str) -> Option<usize> {
    match v.trim().parse::<usize>() {
        Ok(t) if t > 0 => Some(t),
        _ => None,
    }
}

/// Apply `f` to every item, fanning across [`configured_threads`]
/// scoped threads. Output order matches input order exactly.
pub fn map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    map_with_threads(configured_threads(items.len()), items, f)
}

/// [`map`] with an explicit worker count (1 = run on this thread).
pub fn map_with_threads<I, O, F>(threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut failed: Vec<(usize, String)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(items.len()))
            .map(|_| {
                scope.spawn(|| {
                    // Work-stealing by index: uneven point costs (a 500-
                    // client run vs a 5-client run) balance themselves.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return Ok(local);
                        }
                        // Catch a panicking point so we can report
                        // *which* point died, not just that a worker
                        // did.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || f(&items[i]),
                        )) {
                            Ok(out) => local.push((i, out)),
                            Err(payload) => return Err((i, panic_message(payload.as_ref()))),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h
                .join()
                .expect("sweep worker cannot panic: points are caught")
            {
                Ok(outs) => {
                    for (i, out) in outs {
                        slots[i] = Some(out);
                    }
                }
                Err(fail) => failed.push(fail),
            }
        }
    });
    if !failed.is_empty() {
        failed.sort_by_key(|&(i, _)| i);
        let (i, msg) = &failed[0];
        panic!(
            "sweep point {i} of {n} panicked: {msg}{more}",
            n = items.len(),
            more = if failed.len() > 1 {
                format!(" ({} more point(s) also panicked)", failed.len() - 1)
            } else {
                String::new()
            },
        );
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index was claimed exactly once"))
        .collect()
}

/// Best-effort rendering of a panic payload (the `&str`/`String` cases
/// `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = map_with_threads(8, &items, |&i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |&i: &u64| {
            // A little arithmetic per item so threads interleave.
            (0..1000u64).fold(i, |a, b| a.wrapping_mul(31).wrapping_add(b))
        };
        assert_eq!(
            map_with_threads(1, &items, f),
            map_with_threads(6, &items, f)
        );
    }

    #[test]
    fn single_item_runs_inline() {
        let out = map_with_threads(8, &[42], |&i: &i32| i + 1);
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = map_with_threads(4, &[], |&i: &i32| i);
        assert!(out.is_empty());
    }

    #[test]
    fn configured_threads_is_capped_by_items() {
        assert_eq!(configured_threads(1), 1);
        assert!(configured_threads(1000) >= 1);
    }

    #[test]
    fn thread_override_rejects_garbage() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 2 "), Some(2));
        assert_eq!(parse_thread_override("two"), None);
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("-1"), None);
    }

    #[test]
    #[should_panic(expected = "sweep point 3 of 8 panicked: point 3 exploded")]
    fn panicking_point_is_identified() {
        let items: Vec<usize> = (0..8).collect();
        let _ = map_with_threads(4, &items, |&i| {
            assert!(i != 3, "point {i} exploded");
            i
        });
    }

    #[test]
    fn first_failing_point_wins_the_report() {
        let items: Vec<usize> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            map_with_threads(4, &items, |&i| {
                assert!(i % 2 != 1, "odd point {i}");
                i
            })
        });
        let payload = res.expect_err("sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(
            msg.starts_with("sweep point 1 of 16 panicked: odd point 1"),
            "unexpected message: {msg}"
        );
    }
}
