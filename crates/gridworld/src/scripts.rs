//! The ftsh scripts the simulated clients run — transcribed from §5 of
//! the paper, one per scenario and discipline.
//!
//! The three disciplines are "minor variations on scripts written with
//! ftsh" (§5): the Fixed client is the Aloha script run with no
//! backoff (`BackoffPolicy::None`), and the Ethernet client adds a
//! carrier-sense prelude.

use ftsh::{parse, Env, Script, Vm};
use retry::{BackoffPolicy, Discipline};

/// Submission scenario (§5, Figures 1–3). The Aloha client is:
///
/// ```text
/// try for 5 minutes
///   condor_submit submit.job
/// end
/// ```
pub fn submit_aloha() -> Script {
    parse(
        "try for 5 minutes\n\
           condor_submit submit.job\n\
         end\n",
    )
    .expect("static script parses")
}

/// The Ethernet submission client "senses the carrier" by reading the
/// free file-descriptor count and deferring below the threshold:
///
/// ```text
/// try for 5 minutes
///   cut -f2 /proc/sys/fs/file-nr -> n
///   if ${n} .lt. <threshold>
///     failure
///   else
///     condor_submit submit.job
///   end
/// end
/// ```
pub fn submit_ethernet(threshold: u64) -> Script {
    parse(&format!(
        "try for 5 minutes\n\
           cut -f2 /proc/sys/fs/file-nr -> n\n\
           if ${{n}} .lt. {threshold}\n\
             failure\n\
           else\n\
             condor_submit submit.job\n\
           end\n\
         end\n",
    ))
    .expect("static script parses")
}

/// Producer scenario (§5, Figures 4–5). Aloha producer for one output
/// file: generate it, then retry writing it into the shared buffer.
pub fn buffer_aloha() -> Script {
    parse(
        "make-output -> size\n\
         try for 5 minutes\n\
           write-output ${size}\n\
         end\n",
    )
    .expect("static script parses")
}

/// Ethernet producer: estimate the space incomplete files will need
/// (average of the completed ones) and defer when none would remain.
pub fn buffer_ethernet() -> Script {
    parse(
        "make-output -> size\n\
         try for 5 minutes\n\
           estimate-space -> free\n\
           if ${free} .lt. ${size}\n\
             failure\n\
           else\n\
             write-output ${size}\n\
           end\n\
         end\n",
    )
    .expect("static script parses")
}

/// Reader scenario (§5, Figures 6–7). The Aloha reader picks servers in
/// the (shuffled) order `h1 h2 h3` and gives each data transfer 60
/// seconds — "a good round number" chosen on an unsatisfactory basis:
///
/// ```text
/// try for 900 seconds
///   forany host in ${h1} ${h2} ${h3}
///     try for 60 seconds
///       wget http://${host}/data
///     end
///   end
/// end
/// ```
pub fn reader_aloha() -> Script {
    parse(
        "try for 900 seconds\n\
           forany host in ${h1} ${h2} ${h3}\n\
             try for 60 seconds\n\
               wget http://${host}/data\n\
             end\n\
           end\n\
         end\n",
    )
    .expect("static script parses")
}

/// The Ethernet reader first fetches a well-known one-byte flag file
/// with a tight limit; only a live server earns the real transfer.
pub fn reader_ethernet() -> Script {
    parse(
        "try for 900 seconds\n\
           forany host in ${h1} ${h2} ${h3}\n\
             try for 5 seconds\n\
               wget http://${host}/flag\n\
             end\n\
             try for 60 seconds\n\
               wget http://${host}/data\n\
             end\n\
           end\n\
         end\n",
    )
    .expect("static script parses")
}

/// Build a VM for one work unit under a discipline: the discipline's
/// backoff policy is installed as the VM default (Fixed ⇒ no delay).
pub fn unit_vm(script: &Script, discipline: Discipline, env: Env, seed: u64) -> Vm {
    let mut vm = Vm::with_env_seed(script, env, seed);
    vm.set_default_backoff(discipline.backoff());
    vm
}

/// The script for the submission scenario under a discipline.
pub fn submit_script(discipline: Discipline, threshold: u64) -> Script {
    match discipline {
        Discipline::Ethernet => submit_ethernet(threshold),
        Discipline::Aloha | Discipline::Fixed => submit_aloha(),
    }
}

/// The script for the buffer scenario under a discipline.
pub fn buffer_script(discipline: Discipline) -> Script {
    match discipline {
        Discipline::Ethernet => buffer_ethernet(),
        Discipline::Aloha | Discipline::Fixed => buffer_aloha(),
    }
}

/// The script for the reader scenario under a discipline (the paper
/// compares only Aloha and Ethernet here; Fixed degenerates to Aloha
/// without backoff).
pub fn reader_script(discipline: Discipline) -> Script {
    match discipline {
        Discipline::Ethernet => reader_ethernet(),
        Discipline::Aloha | Discipline::Fixed => reader_aloha(),
    }
}

/// Default Fixed-policy helper: scripts run with no delay between
/// retries.
pub fn fixed_backoff() -> BackoffPolicy {
    BackoffPolicy::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::pretty;

    #[test]
    fn all_scripts_parse_and_roundtrip() {
        for s in [
            submit_aloha(),
            submit_ethernet(1000),
            buffer_aloha(),
            buffer_ethernet(),
            reader_aloha(),
            reader_ethernet(),
        ] {
            let printed = pretty(&s);
            let again = parse(&printed).expect("pretty output reparses");
            assert_eq!(s, again);
        }
    }

    #[test]
    fn ethernet_scripts_contain_carrier_sense() {
        let p = pretty(&submit_ethernet(1000));
        assert!(p.contains(".lt. 1000"));
        assert!(p.contains("file-nr"));
        let p = pretty(&buffer_ethernet());
        assert!(p.contains("estimate-space"));
        let p = pretty(&reader_ethernet());
        assert!(p.contains("/flag"));
    }

    #[test]
    fn discipline_script_selection() {
        assert_eq!(
            submit_script(Discipline::Fixed, 1000),
            submit_script(Discipline::Aloha, 1000),
            "fixed runs the aloha script (minus backoff)"
        );
        assert_ne!(
            submit_script(Discipline::Ethernet, 1000),
            submit_script(Discipline::Aloha, 1000)
        );
    }
}
