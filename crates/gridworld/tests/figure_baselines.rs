//! Regression gate for the physics-as-plan refactor: moving the
//! submit scenario's crash threshold (and the other scenario physics)
//! into built-in `FaultPlan`s must not move a single job. These are
//! the paper-scale headline numbers EXPERIMENTS.md quotes.

use gridworld::figures::{fig2_aloha_timeline, fig3_ethernet_timeline, Scale};
use simgrid::SeriesSet;

fn jobs_submitted(set: &SeriesSet) -> f64 {
    set.series
        .iter()
        .find(|s| s.name == "Jobs Submitted")
        .and_then(|s| s.last())
        .expect("timeline has a Jobs Submitted series")
}

#[test]
fn fig2_fig3_job_counts_survive_default_plan() {
    let fig2 = fig2_aloha_timeline(Scale::Full, 2003);
    assert_eq!(jobs_submitted(&fig2), 2524.0, "Aloha jobs by t=1800");
    let fig3 = fig3_ethernet_timeline(Scale::Full, 2003);
    assert_eq!(jobs_submitted(&fig3), 2690.0, "Ethernet jobs by t=1800");
}
