//! Regression gate for the figure pipeline: scenario physics moves
//! (the physics-as-plan refactor) and interpreter swaps (the bytecode
//! backend) must not move a single job or a single serialized byte.
//! These are the paper-scale headline numbers EXPERIMENTS.md quotes,
//! plus byte-level pins on the quick-series JSON, checked under both
//! `EG_FTSH_VM` backends.

use ftsh::VmKind;
use gridworld::figures::{
    fig1_submission_scalability, fig2_aloha_timeline, fig3_ethernet_timeline, fig6_aloha_reader,
    Scale,
};
use simgrid::SeriesSet;

const BOTH_BACKENDS: [VmKind; 2] = [VmKind::Tree, VmKind::Bytecode];

fn jobs_submitted(set: &SeriesSet) -> f64 {
    set.series
        .iter()
        .find(|s| s.name == "Jobs Submitted")
        .and_then(|s| s.last())
        .expect("timeline has a Jobs Submitted series")
}

/// FNV-1a over the serialized series — a stable fingerprint that pins
/// every byte of the artifact without embedding kilobytes of JSON.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn fig2_fig3_job_counts_survive_default_plan_on_both_backends() {
    for kind in BOTH_BACKENDS {
        kind.set_process_default();
        let fig2 = fig2_aloha_timeline(Scale::Full, 2003);
        assert_eq!(
            jobs_submitted(&fig2),
            2524.0,
            "Aloha jobs by t=1800 ({kind:?})"
        );
        let fig3 = fig3_ethernet_timeline(Scale::Full, 2003);
        assert_eq!(
            jobs_submitted(&fig3),
            2690.0,
            "Ethernet jobs by t=1800 ({kind:?})"
        );
    }
}

#[test]
fn fig1_fig6_quick_json_bytes_are_pinned_on_both_backends() {
    // Pinned FNV-1a of `SeriesSet::to_json()` at Quick scale, seed
    // 2003. If a legitimate physics change moves these, re-derive with
    // the printed actual values.
    const FIG1_PIN: u64 = 0x83af_ef57_6513_337e;
    const FIG6_PIN: u64 = 0xa4f5_29c1_c356_9ef3;
    for kind in BOTH_BACKENDS {
        kind.set_process_default();
        let fig1 = fnv1a(
            fig1_submission_scalability(Scale::Quick, 2003)
                .to_json()
                .as_bytes(),
        );
        let fig6 = fnv1a(fig6_aloha_reader(Scale::Quick, 2003).to_json().as_bytes());
        assert_eq!(
            fig1, FIG1_PIN,
            "fig1 quick JSON moved ({kind:?}): actual {fig1:#018x}"
        );
        assert_eq!(
            fig6, FIG6_PIN,
            "fig6 quick JSON moved ({kind:?}): actual {fig6:#018x}"
        );
    }
}
