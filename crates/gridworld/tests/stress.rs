//! Failure injection and boundary stress for the scenario worlds:
//! extreme parameters must neither panic nor violate resource
//! invariants, and the documented shapes must be robust to them.

use gridworld::{
    run_blackhole, run_buffer, run_submission, BlackHoleParams, BufferParams, SubmitParams,
};
use retry::{Discipline, Dur};

#[test]
fn submit_zero_stagger_thundering_herd() {
    // Everyone arrives in the same instant; carrier sense can only
    // react sequentially. The run must survive and the FD table can
    // never be over-allocated (FdTable would panic on violation).
    for d in Discipline::ALL {
        let o = run_submission(
            SubmitParams {
                n_clients: 450,
                discipline: d,
                start_stagger: Dur::ZERO,
                ..SubmitParams::default()
            },
            Dur::from_secs(60),
        );
        // Whatever happened, accounting stayed sane (min_free is a
        // u64 and the table asserts conservation internally).
        assert!(o.min_free_fds <= 8000);
    }
}

#[test]
fn submit_tiny_fd_table_survives() {
    // With almost no descriptors the carrier-sense window (probe to
    // allocation) is wide relative to capacity, so even Ethernet can
    // mis-sense and crash the schedd occasionally — the paper's
    // "acquisition protocol is permitted to occasionally fail". The
    // run must stay sane and keep some throughput between crashes.
    let o = run_submission(
        SubmitParams {
            n_clients: 50,
            discipline: Discipline::Ethernet,
            fd_capacity: 100,
            threshold: 90,
            ..SubmitParams::default()
        },
        Dur::from_secs(120),
    );
    assert!(o.crashes < 12, "crash storms bounded: {}", o.crashes);
    assert!(o.jobs_submitted > 0, "some work still lands");
}

#[test]
fn submit_huge_downtime_still_recovers() {
    let o = run_submission(
        SubmitParams {
            n_clients: 450,
            discipline: Discipline::Aloha,
            restart_downtime: Dur::from_secs(60),
            ..SubmitParams::default()
        },
        Dur::from_secs(300),
    );
    assert!(o.jobs_submitted > 0, "work continues between crash epochs");
}

#[test]
fn buffer_one_byte_files_and_tiny_buffer() {
    let o = run_buffer(
        BufferParams {
            n_producers: 10,
            discipline: Discipline::Fixed,
            capacity: 1024,
            max_file: 512,
            ..BufferParams::default()
        },
        Dur::from_secs(60),
    );
    // Extreme contention: collisions happen, accounting holds
    // (DiskBuffer asserts used <= capacity internally).
    assert!(o.files_produced + o.collisions > 0);
}

#[test]
fn buffer_single_producer_never_collides() {
    let o = run_buffer(
        BufferParams {
            n_producers: 1,
            discipline: Discipline::Fixed,
            ..BufferParams::default()
        },
        Dur::from_secs(120),
    );
    assert_eq!(o.collisions, 0, "1 producer at 0.5 MB/s vs 1 MB/s drain");
    assert!(o.files_consumed > 50);
}

#[test]
fn buffer_consumer_faster_than_producers_is_clean() {
    let o = run_buffer(
        BufferParams {
            n_producers: 2,
            discipline: Discipline::Aloha,
            consumer_rate: 100 << 20,
            ..BufferParams::default()
        },
        Dur::from_secs(60),
    );
    assert_eq!(o.collisions, 0);
    // Everything produced is (eventually) consumed.
    assert!(o.files_consumed + 2 >= o.files_produced);
}

#[test]
fn blackhole_flag_slower_than_probe_limit_defers_everything() {
    // If even the healthy servers are so slow the 5 s probe cannot
    // complete (bandwidth 0.1 B/s), Ethernet readers defer forever and
    // finish no transfers — but terminate cleanly.
    let o = run_blackhole(
        BlackHoleParams {
            discipline: Discipline::Ethernet,
            bandwidth: 1,
            flag_size: 100,
            ..BlackHoleParams::default()
        },
        Dur::from_secs(300),
    );
    assert_eq!(o.transfers, 0);
    assert!(o.deferrals > 0);
}

#[test]
fn blackhole_many_clients_single_server() {
    let o = run_blackhole(
        BlackHoleParams {
            n_clients: 10,
            discipline: Discipline::Ethernet,
            servers: vec!["only".into()],
            black_holes: vec![],
            ..BlackHoleParams::default()
        },
        Dur::from_secs(300),
    );
    // One 10 MB/s server, 100 MB files: ~10 s each, so ~30 transfers
    // minus queue-timeout losses.
    assert!(o.transfers >= 15, "transfers {}", o.transfers);
}

#[test]
fn blackhole_zero_clients_is_a_noop() {
    let o = run_blackhole(
        BlackHoleParams {
            n_clients: 0,
            ..BlackHoleParams::default()
        },
        Dur::from_secs(10),
    );
    assert_eq!(o.transfers, 0);
    assert_eq!(o.collisions, 0);
}

#[test]
fn submit_zero_clients_is_a_noop() {
    let o = run_submission(
        SubmitParams {
            n_clients: 0,
            ..SubmitParams::default()
        },
        Dur::from_secs(10),
    );
    assert_eq!(o.jobs_submitted, 0);
}

#[test]
fn submit_ten_thousand_clients_smoke() {
    // fig1x territory: two orders of magnitude past the paper's 100s
    // axis. Carrier sense must keep the schedd alive, work must still
    // land, and nothing may schedule into the past at this scale.
    let o = run_submission(
        SubmitParams {
            n_clients: 10_000,
            discipline: Discipline::Ethernet,
            start_stagger: Dur::from_secs(60),
            ..SubmitParams::default()
        },
        Dur::from_secs(90),
    );
    assert!(o.jobs_submitted > 0, "work lands at 10k clients");
    assert_eq!(o.crashes, 0, "carrier sense holds at 10k clients");
    assert_eq!(o.queue_clamps, 0, "no past-scheduling at scale");
}

#[test]
fn all_scenarios_deterministic_under_stress() {
    let run = || {
        run_submission(
            SubmitParams {
                n_clients: 450,
                discipline: Discipline::Fixed,
                start_stagger: Dur::ZERO,
                ..SubmitParams::default()
            },
            Dur::from_secs(60),
        )
        .jobs_submitted
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Golden determinism: exact values for pinned seeds at quick scale.
// These catch accidental drift in the models; update them consciously
// when a model change is intended, and re-check EXPERIMENTS.md.
// ---------------------------------------------------------------------

#[test]
fn golden_submission_quick() {
    let o = run_submission(
        SubmitParams {
            n_clients: 100,
            discipline: Discipline::Aloha,
            seed: 2003,
            ..SubmitParams::default()
        },
        Dur::from_secs(60),
    );
    let p = run_submission(
        SubmitParams {
            n_clients: 100,
            discipline: Discipline::Aloha,
            seed: 2003,
            ..SubmitParams::default()
        },
        Dur::from_secs(60),
    );
    // Bitwise repeatability plus a sanity corridor for the magnitude.
    assert_eq!(o.jobs_submitted, p.jobs_submitted);
    assert_eq!(o.failed_connects, p.failed_connects);
    assert!(
        (80..220).contains(&o.jobs_submitted),
        "quick-scale corridor: {}",
        o.jobs_submitted
    );
}

#[test]
fn golden_blackhole_quick() {
    let run = || {
        run_blackhole(
            BlackHoleParams {
                discipline: Discipline::Ethernet,
                seed: 2003,
                ..BlackHoleParams::default()
            },
            Dur::from_secs(300),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.deferrals, b.deferrals);
    assert!((30..70).contains(&a.transfers), "corridor: {}", a.transfers);
}
