//! Same-seed determinism gate: regenerating a figure twice — once on
//! a sequential sweep, once across worker threads — must produce
//! byte-identical series JSON *and* byte-identical structured-trace
//! JSONL. This is what makes traces trustworthy post-mortem evidence:
//! the schedule of the sweep must never leak into the bytes.
//!
//! A single `#[test]` owns the `EG_SWEEP_THREADS` environment variable
//! for its whole run, so no other test can race it.

use gridworld::figures::{by_name_full, by_name_with_plan, Scale};
use retry::{Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::to_jsonl;
use simgrid::TraceSummary;

/// One scenario of each kind, covering both engine paths: parallel
/// sweeps (fig1 = submit, fig5 = buffer) and single runs (fig7 =
/// reader, the paper's Ethernet black-hole figure), plus both
/// coordinated workloads (fig8 = all-reduce under a kill+restart,
/// fig9 = DAG under an ENOSPC window + kill) whose built-in fault
/// plans must land on identical virtual instants under any schedule.
const GATE_FIGURES: [&str; 5] = ["fig1", "fig5", "fig7", "fig8", "fig9"];

fn regenerate(name: &str, threads: &str) -> (String, String, u64) {
    std::env::set_var("EG_SWEEP_THREADS", threads);
    let run = by_name_full(name, Scale::Quick, 0xDE7E_0007, true).expect("known figure");
    let trace = run.trace.expect("tracing was requested");
    (run.set.to_json(), to_jsonl(&trace), run.events_popped)
}

#[test]
fn figures_are_bit_identical_across_sweep_schedules() {
    for name in GATE_FIGURES {
        let (series_seq, trace_seq, events_seq) = regenerate(name, "1");
        let (series_par, trace_par, events_par) = regenerate(name, "4");
        assert_eq!(
            series_seq, series_par,
            "{name}: series JSON must not depend on the sweep schedule"
        );
        assert_eq!(
            trace_seq, trace_par,
            "{name}: trace JSONL must not depend on the sweep schedule"
        );
        assert_eq!(
            events_seq, events_par,
            "{name}: per-run event counts must not depend on the sweep schedule"
        );
        assert!(
            !trace_seq.is_empty(),
            "{name}: a traced figure must actually record something"
        );
    }

    // The gate holds with a non-trivial fault plan armed: timed kills
    // and seeded message loss must land on identical virtual instants
    // regardless of the sweep schedule, and every injection must leave
    // a structured record behind.
    let mut plan = FaultPlan::new(0xFA);
    // Quick-scale fig1 simulates a 90 s window: everything lands early.
    plan.specs.push(FaultSpec::repeating(
        Time::from_secs(15),
        Dur::from_secs(25),
        3,
        FaultKind::ScheddKill {
            downtime: Some(Dur::from_secs(8)),
        },
    ));
    plan.specs.push(FaultSpec::once(
        Time::from_secs(10),
        FaultKind::MsgLoss {
            channel: "condor_submit".into(),
            probability: 0.4,
            duration: Dur::from_secs(30),
        },
    ));
    let regen_faulted = |threads: &str| {
        std::env::set_var("EG_SWEEP_THREADS", threads);
        let run = by_name_with_plan("fig1", Scale::Quick, 0xDE7E_0007, true, Some(&plan))
            .expect("known figure");
        (run.set.to_json(), to_jsonl(&run.trace.expect("traced")))
    };
    let (fseries_seq, ftrace_seq) = regen_faulted("1");
    let (fseries_par, ftrace_par) = regen_faulted("4");
    assert_eq!(
        fseries_seq, fseries_par,
        "fig1+faults: series JSON must not depend on the sweep schedule"
    );
    assert_eq!(
        ftrace_seq, ftrace_par,
        "fig1+faults: trace JSONL must not depend on the sweep schedule"
    );
    assert!(
        ftrace_seq.contains("\"ev\":\"fault\""),
        "armed injections must appear in the structured trace"
    );
    assert_ne!(
        fseries_seq,
        regenerate("fig1", "1").0,
        "the aggressive plan must actually perturb the figure"
    );

    // Shard invariance: the event kernel's shard count is a layout
    // choice, not a schedule choice. Regenerating a figure under
    // EG_SIM_SHARDS=1/2/4 must yield byte-identical series JSON and
    // trace JSONL — the cross-shard merge orders by (time, global
    // sequence), which no shard assignment can perturb.
    for name in GATE_FIGURES {
        std::env::set_var("EG_SWEEP_THREADS", "2");
        let mut runs = Vec::new();
        for shards in ["1", "2", "4"] {
            std::env::set_var("EG_SIM_SHARDS", shards);
            let run = by_name_full(name, Scale::Quick, 0xDE7E_0007, true).expect("known figure");
            runs.push((
                shards,
                run.set.to_json(),
                to_jsonl(&run.trace.expect("traced")),
                run.events_popped,
            ));
        }
        std::env::remove_var("EG_SIM_SHARDS");
        let (_, series_one, trace_one, events_one) = &runs[0];
        for (shards, series, trace, events) in &runs[1..] {
            assert_eq!(
                series_one, series,
                "{name}: series JSON must not depend on EG_SIM_SHARDS={shards}"
            );
            assert_eq!(
                trace_one, trace,
                "{name}: trace JSONL must not depend on EG_SIM_SHARDS={shards}"
            );
            assert_eq!(
                events_one, events,
                "{name}: events popped must not depend on EG_SIM_SHARDS={shards}"
            );
        }
    }

    // The analyzer reproduces Figure 7's deferral count from the trace
    // alone: the last value of the figure's "Deferrals" series equals
    // the number of deferral records.
    let (series, trace, _) = regenerate("fig7", "2");
    let run = simgrid::trace::from_jsonl(&trace).expect("round-trip");
    let summary = TraceSummary::from_records(&run);
    let deferrals_in_series: f64 = {
        // Parse the final y of the "Deferrals" series out of the JSON
        // we just serialized — crude but dependency-free.
        let tail = series
            .split("\"name\":\"Deferrals\"")
            .nth(1)
            .expect("fig7 has a Deferrals series");
        let points = tail.split("]]").next().expect("points array");
        points
            .rsplit(',')
            .next()
            .and_then(|v| v.trim_end_matches(']').parse::<f64>().ok())
            .expect("final deferral count")
    };
    assert_eq!(
        summary.deferrals as f64, deferrals_in_series,
        "post-mortem deferral count must match the figure series"
    );
}
