//! # gridd — the paper's contended grid services on a real socket
//!
//! Everything before this crate reproduced "The Ethernet Approach to
//! Grid Computing" against a virtual clock. `gridd` serves the same
//! contended resources — an overloadable schedd, a file server that
//! can black-hole or run out of space, a free-space estimator that can
//! lie — from a real multi-threaded TCP daemon, so whole populations
//! of real Ethernet/Aloha/Fixed ftsh clients can collide on real
//! wall-clock.
//!
//! * [`proto`] — the length-prefixed wire protocol (`submit`, `put`,
//!   `get`, `df`, `stats`);
//! * [`poll`] — the readiness layer: epoll wrapper, timer wheel,
//!   cross-thread waker, listener-backlog widening;
//! * [`server`] — the daemon: epoll event loops over per-connection
//!   state machines, a timer wheel for every delay (service holds,
//!   latency stalls, black-hole swallows, deadlines), token-bucket
//!   service slots, crash physics, and
//!   [`simgrid::faults::FaultPlan`]-driven misbehaviour;
//! * [`client`] — [`GridClient`] (one connection per operation, behind
//!   the `gridctl` binary ftsh scripts drive) and [`GridConn`] (one
//!   persistent connection batching many verbs, behind the live
//!   arena's client swarm).

#![warn(missing_docs)]

pub mod client;
pub mod poll;
pub mod proto;
pub mod server;

pub use client::{GridClient, GridConn, GridError};
pub use proto::{ErrCode, Request, Response};
pub use server::{start, ClientSnapshot, GriddConfig, GriddHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use retry::{Dur, Time};
    use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
    use std::time::Duration;

    fn quick_config() -> GriddConfig {
        GriddConfig {
            slots: 2,
            service: Duration::from_millis(30),
            crash_overloads: 3,
            downtime: Duration::from_millis(300),
            deadline: Duration::from_secs(2),
            ..GriddConfig::default()
        }
    }

    #[test]
    fn submit_put_get_df_roundtrip() {
        let h = start(quick_config()).unwrap();
        let c = GridClient::new(h.addr().to_string(), 0);
        let free = c.df().unwrap();
        assert_eq!(free, 2);
        let id = c.submit("job-a").unwrap();
        assert!(id.starts_with("job-a@"), "{id}");
        c.put("f.txt", b"payload").unwrap();
        assert_eq!(c.get("f.txt").unwrap(), b"payload");
        assert!(matches!(
            c.get("missing"),
            Err(GridError::Server(ErrCode::NotFound, _))
        ));
        h.shutdown();
    }

    #[test]
    fn stat_senses_free_while_misses_queue() {
        // A nonzero miss cost makes blind gets hold the file server;
        // stat answers from the directory cache regardless.
        let mut cfg = quick_config();
        cfg.file_service = Duration::from_millis(5);
        cfg.file_miss_service = Duration::from_millis(120);
        let h = start(cfg).unwrap();
        let c = GridClient::new(h.addr().to_string(), 0);

        assert!(!c.stat("partial").unwrap());
        let t0 = std::time::Instant::now();
        assert!(matches!(
            c.get("partial"),
            Err(GridError::Server(ErrCode::NotFound, _))
        ));
        let miss = t0.elapsed();
        assert!(miss >= Duration::from_millis(100), "miss took {miss:?}");

        // A put queued behind two misses waits for the FIFO to drain.
        let addr = h.addr().to_string();
        let pollers: Vec<_> = (1..3u32)
            .map(|k| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let p = GridClient::new(addr, k);
                    let _ = p.get("partial");
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let t1 = std::time::Instant::now();
        c.put("partial", b"v").unwrap();
        assert!(
            t1.elapsed() >= Duration::from_millis(60),
            "put skipped the queue: {:?}",
            t1.elapsed()
        );
        for p in pollers {
            p.join().unwrap();
        }
        assert!(c.stat("partial").unwrap());
        assert_eq!(c.get("partial").unwrap(), b"v");

        let (clients, _) = h.snapshot();
        let me = clients.iter().find(|r| r.client == 0).unwrap();
        assert_eq!(me.df_calls, 2, "stat counts as a carrier-sense read");
        h.shutdown();
    }

    #[test]
    fn overload_crashes_the_schedd_and_df_sees_it() {
        let mut cfg = quick_config();
        cfg.slots = 1;
        cfg.service = Duration::from_millis(500);
        cfg.crash_overloads = 2;
        let h = start(cfg).unwrap();
        let addr = h.addr().to_string();
        // Occupy the only slot from a second thread.
        let bg = {
            let addr = addr.clone();
            std::thread::spawn(move || GridClient::new(addr, 1).submit("hog"))
        };
        std::thread::sleep(Duration::from_millis(100));
        let c = GridClient::new(addr.clone(), 0);
        // First overloaded submit: busy. Second: crash.
        assert!(matches!(
            c.submit("j1"),
            Err(GridError::Server(ErrCode::Busy, _))
        ));
        assert!(matches!(
            c.submit("j2"),
            Err(GridError::Server(ErrCode::Down, _))
        ));
        // Carrier sense reads zero while the schedd is down.
        assert_eq!(c.df().unwrap(), 0);
        // The in-flight job was lost in the crash.
        assert!(matches!(
            bg.join().unwrap(),
            Err(GridError::Server(ErrCode::Down, _))
        ));
        // After downtime the schedd is back with a full pool.
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(c.df().unwrap(), 1);
        assert!(c.submit("j3").is_ok());
        h.shutdown();
    }

    #[test]
    fn fault_plan_drives_enospc_and_lies() {
        let mut cfg = quick_config();
        cfg.plan = FaultPlan::new(11)
            .with(FaultSpec::once(
                Time::ZERO,
                FaultKind::EnospcWindow {
                    duration: Dur::from_secs(3600),
                },
            ))
            .with(FaultSpec::once(
                Time::ZERO,
                FaultKind::FreeSpaceLie {
                    delta_bytes: 40,
                    duration: Dur::from_secs(3600),
                },
            ));
        let h = start(cfg).unwrap();
        let c = GridClient::new(h.addr().to_string(), 3);
        assert!(matches!(
            c.put("x", b"data"),
            Err(GridError::Server(ErrCode::Enospc, _))
        ));
        // 2 real free slots + a 40-slot lie.
        assert_eq!(c.df().unwrap(), 42);
        h.shutdown();
    }

    #[test]
    fn forced_schedd_kill_window_rejects_submits() {
        let mut cfg = quick_config();
        cfg.plan = FaultPlan::new(5).with(FaultSpec::once(
            Time::ZERO,
            FaultKind::ScheddKill {
                downtime: Some(Dur::from_secs(3600)),
            },
        ));
        let h = start(cfg).unwrap();
        let c = GridClient::new(h.addr().to_string(), 0);
        assert!(matches!(
            c.submit("j"),
            Err(GridError::Server(ErrCode::Down, _))
        ));
        assert_eq!(c.df().unwrap(), 0);
        // The file server is a different service: still up.
        c.put("f", b"ok").unwrap();
        h.shutdown();
    }

    /// Regression: a forced `schedd-kill` window opening mid-service
    /// must lose the in-service job (`submit_lost`), not complete it
    /// as `submit_ok`; and the window closing must hand back a *full*
    /// slot pool with the overload streak cleared. Before the fix the
    /// forced window never bumped the crash epoch, so the job's
    /// service timer fired after the "crash" and happily reported
    /// success — and the slot it consumed stayed consumed.
    #[test]
    fn forced_kill_loses_in_service_job_and_refills_slot_pool() {
        let mut cfg = quick_config();
        cfg.service = Duration::from_millis(500);
        // Kill window [150ms, 450ms): opens while the victim job is
        // in service, closes before its service timer fires.
        cfg.plan = FaultPlan::new(7).with(FaultSpec::once(
            Time::from_micros(150_000),
            FaultKind::ScheddKill {
                downtime: Some(Dur::from_millis(300)),
            },
        ));
        let h = start(cfg).unwrap();
        let addr = h.addr().to_string();
        let victim = {
            let addr = addr.clone();
            std::thread::spawn(move || GridClient::new(addr, 1).submit("victim"))
        };
        std::thread::sleep(Duration::from_millis(250)); // inside the window
        let c = GridClient::new(addr, 0);
        assert_eq!(c.df().unwrap(), 0, "window must read as down");
        assert!(matches!(
            c.submit("rejected"),
            Err(GridError::Server(ErrCode::Down, _))
        ));
        // The victim was mid-service when the window opened: its
        // completion lands in a later crash epoch and is lost.
        match victim.join().unwrap() {
            Err(GridError::Server(ErrCode::Down, msg)) => {
                assert!(msg.contains("lost"), "want a lost-job message, got {msg}");
            }
            other => panic!("victim must lose its job, got {other:?}"),
        }
        // The window has exited by now (victim joined at ~500ms): the
        // slot pool must be back to full strength, including the slot
        // the lost job was holding.
        assert_eq!(c.df().unwrap(), 2, "slot pool must refill after the window");
        let (clients, crashes) = h.snapshot();
        assert_eq!(crashes, 1, "the forced window counts as one crash");
        let victim_row = clients.iter().find(|s| s.client == 1).unwrap();
        assert_eq!(victim_row.submit_lost, 1, "{victim_row:?}");
        assert_eq!(victim_row.submit_ok, 0, "{victim_row:?}");
        h.shutdown();
    }

    /// Regression: shutdown must not wait out in-flight service holds.
    /// A job parked on a 30-second service timer would have pinned the
    /// old thread-per-connection server; the event loop drops deferred
    /// work and joins within a bounded grace period.
    #[test]
    fn shutdown_is_bounded_with_inflight_service() {
        let mut cfg = quick_config();
        cfg.slots = 1;
        cfg.service = Duration::from_secs(30);
        let h = start(cfg).unwrap();
        let addr = h.addr().to_string();
        let bg = std::thread::spawn(move || GridClient::new(addr, 2).submit("parked"));
        std::thread::sleep(Duration::from_millis(150)); // let it reach service
        let t0 = std::time::Instant::now();
        h.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown must interrupt the 30s service hold, took {:?}",
            t0.elapsed()
        );
        // The parked client sees its connection die, not a success.
        assert!(bg.join().unwrap().is_err());
    }

    #[test]
    fn persistent_conn_batches_many_verbs() {
        let h = start(quick_config()).unwrap();
        let mut conn = GridConn::connect(h.addr().to_string(), 9, Duration::from_secs(5)).unwrap();
        // Many verbs over one socket: the server's state machine must
        // frame each response back on the same connection.
        assert_eq!(conn.df().unwrap(), 2);
        conn.put("batch.txt", b"over one socket").unwrap();
        assert_eq!(conn.get("batch.txt").unwrap(), b"over one socket");
        let id = conn.submit("batched-job").unwrap();
        assert!(id.starts_with("batched-job@"), "{id}");
        // A server-side error must not poison the stream...
        assert!(matches!(
            conn.get("missing"),
            Err(GridError::Server(ErrCode::NotFound, _))
        ));
        assert!(conn.alive());
        assert_eq!(conn.df().unwrap(), 2);
        let json = conn.stats().unwrap();
        assert!(json.contains("\"submit_ok\""), "{json}");
        h.shutdown();
    }

    #[test]
    fn stats_verb_emits_metrics_json() {
        let h = start(quick_config()).unwrap();
        let c = GridClient::new(h.addr().to_string(), 5);
        c.submit("j").unwrap();
        c.df().unwrap();
        let json = c.stats().unwrap();
        assert!(
            json.contains("\"title\":\"gridd per-client counters\""),
            "{json}"
        );
        assert!(json.contains("\"submit_ok\""));
        assert!(json.contains("\"df_calls\""));
        assert!(json.contains("[[5,1]]"), "client 5 counted once: {json}");
        h.shutdown();
    }

    #[test]
    fn black_hole_swallows_file_requests() {
        let mut cfg = quick_config();
        cfg.deadline = Duration::from_millis(300);
        cfg.plan = FaultPlan::new(1).with(FaultSpec::once(
            Time::ZERO,
            FaultKind::ServerBlackHole {
                server: "yyy".into(),
                enable: true,
            },
        ));
        let h = start(cfg).unwrap();
        let c = GridClient::new(h.addr().to_string(), 0).with_timeout(Duration::from_millis(500));
        let t0 = std::time::Instant::now();
        let out = c.get("anything");
        assert!(matches!(out, Err(GridError::Io(_))), "{out:?}");
        assert!(t0.elapsed() >= Duration::from_millis(250));
        // The schedd is a different service: still answering.
        assert!(c.df().is_ok());
        h.shutdown();
    }
}
