//! Readiness and timers for the event-driven server core: a thin safe
//! wrapper over Linux `epoll` (via the workspace's raw `libc` shim), a
//! two-level timer wheel, and a cross-thread waker.
//!
//! The old server pinned one OS thread per connection and *slept*
//! through every service time, latency spike, and black-hole window —
//! which caps the daemon near the worker-pool size. Everything here
//! exists so that a connection is just a few hundred bytes of state
//! and a wait is just a wheel entry: the [`Epoll`] instance says which
//! sockets can make progress, the [`TimerWheel`] says which deferred
//! completions are due, and one thread multiplexes thousands of both.

use std::io::{self, Read as _, Write as _};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

// ----------------------------------------------------------------- epoll

/// One readiness record from [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// Error or hang-up: the peer is gone or the fd is broken.
    pub hangup: bool,
}

/// A Linux epoll instance. Level-triggered, close-on-exec.
pub struct Epoll {
    fd: RawFd,
}

fn interest_bits(read: bool, write: bool) -> u32 {
    let mut bits = libc::EPOLLRDHUP;
    if read {
        bits |= libc::EPOLLIN;
    }
    if write {
        bits |= libc::EPOLLOUT;
    }
    bits
}

impl Epoll {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(
        &self,
        op: libc::c_int,
        fd: RawFd,
        token: u64,
        read: bool,
        write: bool,
    ) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest_bits(read, write),
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `token` and the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, read, write)
    }

    /// Change `fd`'s interest set.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, read, write)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let rc = unsafe { libc::epoll_ctl(self.fd, libc::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait for readiness, at most `timeout` (`None`: indefinitely).
    /// Fills `out` (cleared first) and returns how many records landed.
    /// `EINTR` is reported as zero events, not an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        const CAP: usize = 256;
        let mut raw = [libc::epoll_event { events: 0, u64: 0 }; CAP];
        let timeout_ms: libc::c_int = match timeout {
            None => -1,
            // Round up so we never wake before a timer's deadline.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as libc::c_int,
        };
        let n =
            unsafe { libc::epoll_wait(self.fd, raw.as_mut_ptr(), CAP as libc::c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(libc::EINTR) {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.u64,
                readable: bits & libc::EPOLLIN != 0,
                writable: bits & libc::EPOLLOUT != 0,
                hangup: bits & (libc::EPOLLERR | libc::EPOLLHUP | libc::EPOLLRDHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// Put `fd` into non-blocking mode.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { libc::fcntl(fd, libc::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = unsafe { libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Widen a listening socket's kernel accept backlog (std's `bind`
/// hard-codes 128, which a thousand-client stampede overflows).
pub fn widen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    let rc = unsafe { libc::listen(fd, backlog) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ----------------------------------------------------------------- waker

/// Cross-thread wake-up for an epoll loop: one end is registered in
/// the loop ([`Waker::fd`] of the receiving half), the other is poked
/// from any thread.
pub struct Waker {
    tx: UnixStream,
}

/// The loop-side half of a [`Waker`]: register [`WakeRx::fd`] for
/// readability and [`WakeRx::drain`] it when it fires.
pub struct WakeRx {
    rx: UnixStream,
}

/// A connected waker pair.
pub fn waker() -> io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeRx { rx }))
}

impl Waker {
    /// Wake the loop. A full pipe means a wake is already pending, so
    /// `WouldBlock` is success.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl WakeRx {
    /// The fd to register for readability.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consume all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

// ----------------------------------------------------------- timer wheel

/// Milliseconds per wheel tick.
const TICK_MS: u64 = 1;
/// Near-window slots (must be a power of two): ~4 s of 1 ms ticks.
const WHEEL_SLOTS: usize = 4096;

struct FarEntry<T> {
    tick: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest tick.
        (other.tick, other.seq).cmp(&(self.tick, self.seq))
    }
}

/// A two-level timer wheel: a ring of 1 ms slots covering the next
/// ~4 s (service holds, latency stalls, backoff sleeps) and an
/// overflow heap for everything farther out (connection deadlines,
/// kill windows), cascaded into the ring as the cursor approaches.
/// Timers never fire early; ties fire in schedule order.
pub struct TimerWheel<T> {
    epoch: Instant,
    ring: Vec<Vec<(u64, u64, T)>>, // (absolute tick, seq, item)
    cursor: u64,                   // next tick not yet fired
    far: std::collections::BinaryHeap<FarEntry<T>>,
    seq: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel whose tick 0 is `epoch` (usually the loop's start).
    pub fn new(epoch: Instant) -> TimerWheel<T> {
        TimerWheel {
            epoch,
            ring: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            far: std::collections::BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Pending timer count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_ceil(&self, at: Instant) -> u64 {
        let us = at.saturating_duration_since(self.epoch).as_micros() as u64;
        us.div_ceil(TICK_MS * 1000)
    }

    /// Schedule `item` to fire at `at` (never earlier; instants already
    /// in the past fire on the next [`TimerWheel::advance`]).
    pub fn schedule(&mut self, at: Instant, item: T) {
        let tick = self.tick_ceil(at).max(self.cursor);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if tick < self.cursor + WHEEL_SLOTS as u64 {
            self.ring[(tick as usize) & (WHEEL_SLOTS - 1)].push((tick, seq, item));
        } else {
            self.far.push(FarEntry { tick, seq, item });
        }
    }

    /// Fire every timer due at or before `now`, in deadline order
    /// (schedule order within a tick), appending the items to `fired`.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<T>) {
        let target =
            now.saturating_duration_since(self.epoch).as_micros() as u64 / (TICK_MS * 1000);
        while self.cursor <= target {
            let slot = (self.cursor as usize) & (WHEEL_SLOTS - 1);
            if !self.ring[slot].is_empty() {
                // All entries in a slot share the tick (the window is
                // narrower than the ring), but keep the guard exact.
                let due: Vec<(u64, u64, T)> = {
                    let v = &mut self.ring[slot];
                    let mut taken = Vec::with_capacity(v.len());
                    let mut keep = Vec::new();
                    for e in v.drain(..) {
                        if e.0 <= target {
                            taken.push(e);
                        } else {
                            keep.push(e);
                        }
                    }
                    *v = keep;
                    taken
                };
                for (_, _, item) in due {
                    self.len -= 1;
                    fired.push(item);
                }
            }
            self.cursor += 1;
            // Cascade far timers that now fall inside the near window.
            while let Some(top) = self.far.peek() {
                if top.tick >= self.cursor + WHEEL_SLOTS as u64 {
                    break;
                }
                let e = self.far.pop().expect("peeked entry");
                if e.tick <= target {
                    self.len -= 1;
                    fired.push(e.item);
                } else {
                    self.ring[(e.tick as usize) & (WHEEL_SLOTS - 1)].push((e.tick, e.seq, e.item));
                }
            }
        }
    }

    /// The next deadline at or after `now`, or `None` when the wheel is
    /// empty. Drives the epoll wait timeout.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for off in 0..WHEEL_SLOTS as u64 {
            let tick = self.cursor + off;
            let slot = (tick as usize) & (WHEEL_SLOTS - 1);
            if self.ring[slot].iter().any(|(t, _, _)| *t == tick) {
                best = Some(tick);
                break;
            }
        }
        if let Some(far) = self.far.peek() {
            best = Some(best.map_or(far.tick, |b| b.min(far.tick)));
        }
        best.map(|tick| self.epoch + Duration::from_millis(tick * TICK_MS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_in_deadline_order_and_never_early() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u32> = TimerWheel::new(t0);
        w.schedule(t0 + Duration::from_millis(30), 3);
        w.schedule(t0 + Duration::from_millis(10), 1);
        w.schedule(t0 + Duration::from_millis(20), 2);
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(5), &mut fired);
        assert!(fired.is_empty(), "nothing due yet");
        w.advance(t0 + Duration::from_millis(21), &mut fired);
        assert_eq!(fired, vec![1, 2]);
        w.advance(t0 + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_timers_cascade_into_the_ring() {
        let t0 = Instant::now();
        let mut w: TimerWheel<&str> = TimerWheel::new(t0);
        // Far beyond the ~4 s near window.
        w.schedule(t0 + Duration::from_secs(30), "far");
        w.schedule(t0 + Duration::from_millis(50), "near");
        assert_eq!(w.len(), 2);
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_secs(10), &mut fired);
        assert_eq!(fired, vec!["near"]);
        w.advance(t0 + Duration::from_secs(31), &mut fired);
        assert_eq!(fired, vec!["near", "far"]);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(t0);
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(100), &mut fired);
        w.schedule(t0 + Duration::from_millis(10), 9); // already past
        w.advance(t0 + Duration::from_millis(101), &mut fired);
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_entry() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(t0);
        assert!(w.next_deadline().is_none());
        w.schedule(t0 + Duration::from_secs(30), 1);
        let far_only = w.next_deadline().unwrap();
        assert!(far_only >= t0 + Duration::from_secs(30));
        w.schedule(t0 + Duration::from_millis(40), 2);
        let near = w.next_deadline().unwrap();
        assert!(near >= t0 + Duration::from_millis(40));
        assert!(near <= t0 + Duration::from_millis(42));
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(t0);
        let at = t0 + Duration::from_millis(7);
        for k in 0..10 {
            w.schedule(at, k);
        }
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(8), &mut fired);
        assert_eq!(fired, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn waker_wakes_an_epoll_wait() {
        let (tx, rx) = waker().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(rx.fd(), 77, true, false).unwrap();
        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);
        tx.wake();
        tx.wake(); // coalesces
        assert_eq!(ep.wait(&mut out, Some(Duration::from_secs(1))).unwrap(), 1);
        assert_eq!(out[0].token, 77);
        assert!(out[0].readable);
        rx.drain();
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);
    }
}
