//! A small synchronous client for the gridd protocol.
//!
//! Two styles:
//!
//! * [`GridClient`] — one TCP connection per operation. The daemon's
//!   fault plan can reset connections at will (`msg-loss`), so a fresh
//!   connect per verb keeps every operation independently retryable —
//!   exactly what an ftsh `try` block wants to wrap.
//! * [`GridConn`] — one persistent connection batching many verbs.
//!   This is what the 1000-client live arena uses: connection setup is
//!   paid once, then requests and responses stream over the same
//!   socket. A transport error poisons the connection; the caller
//!   reconnects (and the arena counts the reconnect), which keeps the
//!   retry story identical to the per-op client.

use crate::proto::{read_frame, write_frame, ErrCode, ProtoError, Request, Response};
use std::io::{self};
use std::net::TcpStream;
use std::time::Duration;

/// How a grid operation can fail.
#[derive(Debug)]
pub enum GridError {
    /// Transport-level failure (refused, reset, deadline).
    Io(io::Error),
    /// The daemon answered with an error response.
    Server(ErrCode, String),
    /// The daemon answered gibberish.
    Proto(ProtoError),
    /// The daemon answered with the wrong response kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "transport: {e}"),
            GridError::Server(code, msg) => write!(f, "{code}: {msg}"),
            GridError::Proto(e) => write!(f, "protocol: {e}"),
            GridError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<io::Error> for GridError {
    fn from(e: io::Error) -> GridError {
        GridError::Io(e)
    }
}

/// A handle on one gridd endpoint for one client identity.
pub struct GridClient {
    addr: String,
    client: u32,
    timeout: Duration,
}

impl GridClient {
    /// A client labelled `client` talking to `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, client: u32) -> GridClient {
        GridClient {
            addr: addr.into(),
            client,
            timeout: Duration::from_secs(10),
        }
    }

    /// Override the per-operation deadline (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> GridClient {
        self.timeout = timeout;
        self
    }

    fn call(&self, req: &Request) -> Result<Response, GridError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_frame(&mut stream, &req.encode())?;
        let payload = read_frame(&mut stream)?;
        let resp = Response::decode(&payload).map_err(GridError::Proto)?;
        if let Response::Err { code, msg } = resp {
            return Err(GridError::Server(code, msg));
        }
        Ok(resp)
    }

    /// Submit a job; returns the job id the schedd assigned.
    pub fn submit(&self, job: &str) -> Result<String, GridError> {
        match self.call(&Request::Submit {
            client: self.client,
            job: job.into(),
        })? {
            Response::Ok { info } => Ok(info),
            _ => Err(GridError::Unexpected("submit wants ok")),
        }
    }

    /// Store `data` under `name` on the file server.
    pub fn put(&self, name: &str, data: &[u8]) -> Result<(), GridError> {
        match self.call(&Request::Put {
            client: self.client,
            name: name.into(),
            data: data.to_vec(),
        })? {
            Response::Ok { .. } => Ok(()),
            _ => Err(GridError::Unexpected("put wants ok")),
        }
    }

    /// Fetch the file stored under `name`.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, GridError> {
        match self.call(&Request::Get {
            client: self.client,
            name: name.into(),
        })? {
            Response::Data { data } => Ok(data),
            _ => Err(GridError::Unexpected("get wants data")),
        }
    }

    /// Free schedd capacity right now (the carrier-sense read).
    pub fn df(&self) -> Result<u64, GridError> {
        match self.call(&Request::Df {
            client: self.client,
        })? {
            Response::Free { slots } => Ok(slots),
            _ => Err(GridError::Unexpected("df wants free")),
        }
    }

    /// Does `name` exist on the file server right now? The file
    /// server's carrier-sense read: free, never queued behind file
    /// service.
    pub fn stat(&self, name: &str) -> Result<bool, GridError> {
        match self.call(&Request::Stat {
            client: self.client,
            name: name.into(),
        })? {
            Response::Free { slots } => Ok(slots > 0),
            _ => Err(GridError::Unexpected("stat wants free")),
        }
    }

    /// The daemon's per-client counters as metrics JSON.
    pub fn stats(&self) -> Result<String, GridError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            _ => Err(GridError::Unexpected("stats wants stats")),
        }
    }
}

/// A persistent connection to one gridd endpoint.
///
/// Unlike [`GridClient`], which dials per verb, `GridConn` holds one
/// TCP stream and pipelines request/response pairs over it. Any
/// transport error leaves the stream in an unknown framing state, so
/// the first error poisons the connection: every later call returns
/// [`GridError::Io`] until the caller makes a fresh [`GridConn`].
pub struct GridConn {
    stream: Option<TcpStream>,
    client: u32,
}

impl GridConn {
    /// Dial `addr` once; subsequent verbs reuse the connection.
    pub fn connect(
        addr: impl AsRef<str>,
        client: u32,
        timeout: Duration,
    ) -> Result<GridConn, GridError> {
        let stream = TcpStream::connect(addr.as_ref())?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(GridConn {
            stream: Some(stream),
            client,
        })
    }

    /// Whether the connection is still usable (no transport error yet).
    pub fn alive(&self) -> bool {
        self.stream.is_some()
    }

    fn call(&mut self, req: &Request) -> Result<Response, GridError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(GridError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection poisoned by an earlier transport error",
            )));
        };
        let r = (|| -> Result<Response, GridError> {
            write_frame(stream, &req.encode())?;
            let payload = read_frame(stream)?;
            Response::decode(&payload).map_err(GridError::Proto)
        })();
        match r {
            // Server-side errors keep the stream's framing intact; only
            // transport/protocol faults poison the connection.
            Ok(Response::Err { code, msg }) => Err(GridError::Server(code, msg)),
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Submit a job; returns the job id the schedd assigned.
    pub fn submit(&mut self, job: &str) -> Result<String, GridError> {
        match self.call(&Request::Submit {
            client: self.client,
            job: job.into(),
        })? {
            Response::Ok { info } => Ok(info),
            _ => Err(GridError::Unexpected("submit wants ok")),
        }
    }

    /// Store `data` under `name` on the file server.
    pub fn put(&mut self, name: &str, data: &[u8]) -> Result<(), GridError> {
        match self.call(&Request::Put {
            client: self.client,
            name: name.into(),
            data: data.to_vec(),
        })? {
            Response::Ok { .. } => Ok(()),
            _ => Err(GridError::Unexpected("put wants ok")),
        }
    }

    /// Fetch the file stored under `name`.
    pub fn get(&mut self, name: &str) -> Result<Vec<u8>, GridError> {
        match self.call(&Request::Get {
            client: self.client,
            name: name.into(),
        })? {
            Response::Data { data } => Ok(data),
            _ => Err(GridError::Unexpected("get wants data")),
        }
    }

    /// Free schedd capacity right now (the carrier-sense read).
    pub fn df(&mut self) -> Result<u64, GridError> {
        match self.call(&Request::Df {
            client: self.client,
        })? {
            Response::Free { slots } => Ok(slots),
            _ => Err(GridError::Unexpected("df wants free")),
        }
    }

    /// Does `name` exist on the file server right now? The file
    /// server's carrier-sense read: free, never queued behind file
    /// service.
    pub fn stat(&mut self, name: &str) -> Result<bool, GridError> {
        match self.call(&Request::Stat {
            client: self.client,
            name: name.into(),
        })? {
            Response::Free { slots } => Ok(slots > 0),
            _ => Err(GridError::Unexpected("stat wants free")),
        }
    }

    /// The daemon's per-client counters as metrics JSON.
    pub fn stats(&mut self) -> Result<String, GridError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            _ => Err(GridError::Unexpected("stats wants stats")),
        }
    }
}
