//! The gridd wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — travels as one *frame*: a
//! 4-byte big-endian payload length followed by that many payload
//! bytes. The first payload byte is a verb/status tag; the rest is a
//! fixed field sequence for that tag (strings and blobs are themselves
//! u32-length-prefixed). One request frame yields exactly one response
//! frame on the same connection; clients may then reuse or drop the
//! connection.
//!
//! Frames are capped at [`MAX_FRAME`] so a hostile or confused peer
//! cannot make the daemon allocate unboundedly — the length word is
//! validated *before* any buffer is sized.
//!
//! ## Verbs
//!
//! | verb     | request fields            | success response       |
//! |----------|---------------------------|------------------------|
//! | `submit` | client id, job name       | `ok` (job id)          |
//! | `put`    | client id, file name, data| `ok` (bytes stored)    |
//! | `get`    | client id, file name      | `data` (file contents) |
//! | `df`     | client id                 | `free` (free slots)    |
//! | `stats`  | —                         | `stats` (metrics JSON) |
//!
//! Failures come back as `err` with an [`ErrCode`] and a message.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload, in bytes. Large enough for any
/// corpus file transfer, small enough that a bad length word cannot
/// balloon the daemon's memory.
pub const MAX_FRAME: usize = 1 << 20;

/// A request frame, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job to the schedd.
    Submit {
        /// Caller's client index (labels per-client counters).
        client: u32,
        /// Job name (free-form; echoed in the job id).
        job: String,
    },
    /// Store a file on the file server.
    Put {
        /// Caller's client index.
        client: u32,
        /// File name.
        name: String,
        /// File contents.
        data: Vec<u8>,
    },
    /// Fetch a file from the file server.
    Get {
        /// Caller's client index.
        client: u32,
        /// File name.
        name: String,
    },
    /// Free-capacity query — the carrier-sense channel.
    Df {
        /// Caller's client index.
        client: u32,
    },
    /// Does a file exist? The file server's carrier-sense channel:
    /// answered from the directory cache, never queued behind file
    /// service, so sensing is free where a blind `get` miss is an
    /// expensive scan.
    Stat {
        /// Caller's client index.
        client: u32,
        /// File name.
        name: String,
    },
    /// Dump per-client counters as `simgrid::metrics` JSON.
    Stats,
}

/// A response frame, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The verb succeeded; `info` is verb-specific (job id, byte count).
    Ok {
        /// Verb-specific detail.
        info: String,
    },
    /// File contents (for `get`).
    Data {
        /// The bytes stored under the requested name.
        data: Vec<u8>,
    },
    /// Free capacity (for `df`).
    Free {
        /// Free schedd slots right now (possibly a lie under a
        /// `free-space-lie` fault window).
        slots: u64,
    },
    /// Per-client counters (for `stats`).
    Stats {
        /// A `simgrid::metrics::SeriesSet` JSON document.
        json: String,
    },
    /// The verb failed.
    Err {
        /// Machine-readable failure class.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
}

/// Failure classes a [`Response::Err`] can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The schedd is down (crashed or under a `schedd-kill` window).
    Down,
    /// No free capacity right now; retrying later may succeed.
    Busy,
    /// Refused outright (backlog full, sense below threshold).
    Refused,
    /// The file server has no space (`enospc` window).
    Enospc,
    /// No such file.
    NotFound,
    /// Malformed request.
    Bad,
}

impl ErrCode {
    /// Stable wire tag / display name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Down => "down",
            ErrCode::Busy => "busy",
            ErrCode::Refused => "refused",
            ErrCode::Enospc => "enospc",
            ErrCode::NotFound => "not-found",
            ErrCode::Bad => "bad",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrCode::Down => 0,
            ErrCode::Busy => 1,
            ErrCode::Refused => 2,
            ErrCode::Enospc => 3,
            ErrCode::NotFound => 4,
            ErrCode::Bad => 5,
        }
    }

    fn from_u8(b: u8) -> Result<ErrCode, ProtoError> {
        Ok(match b {
            0 => ErrCode::Down,
            1 => ErrCode::Busy,
            2 => ErrCode::Refused,
            3 => ErrCode::Enospc,
            4 => ErrCode::NotFound,
            5 => ErrCode::Bad,
            other => return Err(ProtoError::BadTag(other)),
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Decoding failures.
#[derive(Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Unknown verb/status/error tag byte.
    BadTag(u8),
    /// Payload ended before the declared fields.
    Truncated,
    /// Payload has bytes beyond the declared fields.
    TrailingBytes,
    /// A length word exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// A string field is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadTag(b) => write!(f, "unknown tag byte {b}"),
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::TrailingBytes => write!(f, "payload has trailing bytes"),
            ProtoError::TooLarge(n) => write!(f, "length {n} exceeds frame cap {MAX_FRAME}"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- frames

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. Validates the length word against
/// [`MAX_FRAME`] before allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::TooLarge(n),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Append one frame (length word + payload) to `out` without flushing
/// anywhere — the event loop's write path owns the socket.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// An incremental frame decoder for non-blocking sockets: bytes arrive
/// in whatever chunks the kernel hands over, [`FrameBuf::extend`]
/// accumulates them, and [`FrameBuf::next_frame`] yields each complete
/// payload as soon as its last byte lands. The length word is
/// validated against [`MAX_FRAME`] *before* the payload is buffered,
/// so a hostile peer cannot balloon memory with a lying header.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Feed freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to one frame.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame payload, `Ok(None)` while one is
    /// still partial, or an error for an over-cap length word.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let n = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if n > MAX_FRAME {
            return Err(ProtoError::TooLarge(n));
        }
        if avail.len() < 4 + n {
            return Ok(None);
        }
        let payload = avail[4..4 + n].to_vec();
        self.pos += 4 + n;
        Ok(Some(payload))
    }
}

// ------------------------------------------------------------- encoding

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(ProtoError::TooLarge(n));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtoError::BadUtf8)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

const REQ_SUBMIT: u8 = 1;
const REQ_PUT: u8 = 2;
const REQ_GET: u8 = 3;
const REQ_DF: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_STAT: u8 = 6;

const RESP_OK: u8 = 0x80;
const RESP_DATA: u8 = 0x81;
const RESP_FREE: u8 = 0x82;
const RESP_STATS: u8 = 0x83;
const RESP_ERR: u8 = 0x84;

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Submit { client, job } => {
                b.push(REQ_SUBMIT);
                put_u32(&mut b, *client);
                put_str(&mut b, job);
            }
            Request::Put { client, name, data } => {
                b.push(REQ_PUT);
                put_u32(&mut b, *client);
                put_str(&mut b, name);
                put_bytes(&mut b, data);
            }
            Request::Get { client, name } => {
                b.push(REQ_GET);
                put_u32(&mut b, *client);
                put_str(&mut b, name);
            }
            Request::Df { client } => {
                b.push(REQ_DF);
                put_u32(&mut b, *client);
            }
            Request::Stat { client, name } => {
                b.push(REQ_STAT);
                put_u32(&mut b, *client);
                put_str(&mut b, name);
            }
            Request::Stats => b.push(REQ_STATS),
        }
        b
    }

    /// Decode a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(buf);
        let req = match c.u8()? {
            REQ_SUBMIT => Request::Submit {
                client: c.u32()?,
                job: c.string()?,
            },
            REQ_PUT => Request::Put {
                client: c.u32()?,
                name: c.string()?,
                data: c.bytes()?,
            },
            REQ_GET => Request::Get {
                client: c.u32()?,
                name: c.string()?,
            },
            REQ_DF => Request::Df { client: c.u32()? },
            REQ_STAT => Request::Stat {
                client: c.u32()?,
                name: c.string()?,
            },
            REQ_STATS => Request::Stats,
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(req)
    }

    /// The client index this request carries, if any.
    pub fn client(&self) -> Option<u32> {
        match self {
            Request::Submit { client, .. }
            | Request::Put { client, .. }
            | Request::Get { client, .. }
            | Request::Df { client }
            | Request::Stat { client, .. } => Some(*client),
            Request::Stats => None,
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Ok { info } => {
                b.push(RESP_OK);
                put_str(&mut b, info);
            }
            Response::Data { data } => {
                b.push(RESP_DATA);
                put_bytes(&mut b, data);
            }
            Response::Free { slots } => {
                b.push(RESP_FREE);
                put_u64(&mut b, *slots);
            }
            Response::Stats { json } => {
                b.push(RESP_STATS);
                put_str(&mut b, json);
            }
            Response::Err { code, msg } => {
                b.push(RESP_ERR);
                b.push(code.to_u8());
                put_str(&mut b, msg);
            }
        }
        b
    }

    /// Decode a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(buf);
        let resp = match c.u8()? {
            RESP_OK => Response::Ok { info: c.string()? },
            RESP_DATA => Response::Data { data: c.bytes()? },
            RESP_FREE => Response::Free { slots: c.u64()? },
            RESP_STATS => Response::Stats { json: c.string()? },
            RESP_ERR => Response::Err {
                code: ErrCode::from_u8(c.u8()?)?,
                msg: c.string()?,
            },
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let enc = r.encode();
        assert_eq!(Request::decode(&enc), Ok(r));
    }

    fn roundtrip_resp(r: Response) {
        let enc = r.encode();
        assert_eq!(Response::decode(&enc), Ok(r));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Submit {
            client: 3,
            job: "job-3-17".into(),
        });
        roundtrip_req(Request::Put {
            client: 0,
            name: "out.txt".into(),
            data: b"hello\nworld\n".to_vec(),
        });
        roundtrip_req(Request::Get {
            client: 9,
            name: "out.txt".into(),
        });
        roundtrip_req(Request::Df { client: 7 });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok {
            info: "job-3-17@42".into(),
        });
        roundtrip_resp(Response::Data {
            data: vec![0, 1, 2, 255],
        });
        roundtrip_resp(Response::Free { slots: 12 });
        roundtrip_resp(Response::Stats {
            json: "{\"title\":\"x\"}".into(),
        });
        roundtrip_resp(Response::Err {
            code: ErrCode::Enospc,
            msg: "buffer full".into(),
        });
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let req = Request::Put {
            client: 1,
            name: "n".into(),
            data: vec![7; 1000],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut r = &wire[..];
        let payload = read_frame(&mut r).unwrap();
        assert_eq!(Request::decode(&payload), Ok(req));
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_length_word_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let enc = Request::Submit {
            client: 1,
            job: "j".into(),
        }
        .encode();
        assert_eq!(
            Request::decode(&enc[..enc.len() - 1]),
            Err(ProtoError::Truncated)
        );
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(Request::decode(&extra), Err(ProtoError::TrailingBytes));
        assert_eq!(Request::decode(&[99]), Err(ProtoError::BadTag(99)));
    }

    #[test]
    fn frame_buf_reassembles_byte_dribbles() {
        // Two pipelined requests, delivered one byte at a time.
        let reqs = [
            Request::Submit {
                client: 2,
                job: "drip".into(),
            },
            Request::Df { client: 2 },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            frame_into(&mut wire, &r.encode());
        }
        let mut fb = FrameBuf::new();
        let mut seen = Vec::new();
        for b in wire {
            fb.extend(&[b]);
            while let Some(payload) = fb.next_frame().unwrap() {
                seen.push(Request::decode(&payload).unwrap());
            }
        }
        assert_eq!(seen, reqs);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_rejects_lying_length_before_buffering() {
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(fb.next_frame(), Err(ProtoError::TooLarge(_))));
    }

    #[test]
    fn frame_buf_compacts_consumed_prefix() {
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        frame_into(&mut wire, &Request::Stats.encode());
        for _ in 0..2000 {
            fb.extend(&wire);
            assert!(fb.next_frame().unwrap().is_some());
        }
        // Consumed bytes must not accumulate forever.
        assert!(fb.buf.len() < 16 * 1024, "buffer grew to {}", fb.buf.len());
    }

    #[test]
    fn err_codes_roundtrip() {
        for code in [
            ErrCode::Down,
            ErrCode::Busy,
            ErrCode::Refused,
            ErrCode::Enospc,
            ErrCode::NotFound,
            ErrCode::Bad,
        ] {
            assert_eq!(ErrCode::from_u8(code.to_u8()), Ok(code));
            assert!(!code.as_str().is_empty());
        }
    }
}
