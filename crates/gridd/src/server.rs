//! The daemon: an event-driven TCP server emulating the paper's
//! contended grid services on a real socket.
//!
//! The server core is readiness-based: each worker thread runs one
//! epoll event loop ([`GriddConfig::threads`], default 1 — a single
//! loop multiplexes thousands of connections) over non-blocking
//! sockets. A connection is a small state machine — an incremental
//! frame decoder ([`crate::proto::FrameBuf`]), an outgoing byte buffer
//! that survives partial writes, and at most one *deferred* operation.
//! Everything the old thread-per-connection server expressed as
//! `thread::sleep` is a timer-wheel completion instead:
//!
//! * a `submit`'s service time is a [`TimerEv::ServiceDone`] entry —
//!   the slot returns and the response is written when it fires;
//! * an injected latency spike parks the decoded request until a
//!   [`TimerEv::Resume`] entry fires;
//! * a black-holed file verb is swallowed by a [`TimerEv::Swallow`]
//!   entry that closes the connection without answering;
//! * per-connection deadlines are [`TimerEv::Deadline`] entries, so an
//!   idle or stalled peer is reaped without pinning anything.
//!
//! Accept is backpressure-aware: beyond [`GriddConfig::backlog`]
//! concurrent connections, new arrivals are dropped on the floor —
//! exactly the refusal an overloaded schedd hands real clients.
//!
//! ## Contention physics
//!
//! The schedd is a token bucket of [`GriddConfig::slots`] service
//! slots. A `submit` takes a slot for [`GriddConfig::service`] of real
//! wall-clock; with no slot free the submission is refused and the
//! schedd's *overload pressure* rises — enough consecutive overloaded
//! submissions ([`GriddConfig::crash_overloads`]) crash it, losing
//! every in-flight job and taking the service down for
//! [`GriddConfig::downtime`]. `df` reports the free-slot count (zero
//! while down) and never blocks: it is the carrier-sense channel, so
//! an Ethernet client can defer instead of becoming part of the
//! stampede that crashes the schedd. Aloha clients discover the
//! contention by failing.
//!
//! ## Fault plans
//!
//! The same [`simgrid::faults::FaultPlan`] JSON that drives the
//! simulator drives the daemon, mapped onto wall-clock windows
//! relative to server start: `schedd-kill` forces downtime (closed
//! early by `schedd-restart`), `enospc` fails `put`, `free-space-lie`
//! skews `df`, `black-hole` makes the file server swallow `put`/`get`
//! without answering, `msg-loss` resets connections before the reply,
//! and `latency-spike` stalls responses. Physics kinds configure
//! constants (`schedd-crash-on-starvation`'s backlog bounds the
//! connection cap); `clock-skew`/`cmd-fail-first` are VM-side and
//! ignored here.
//!
//! A forced `schedd-kill` has the *simulator's* loss accounting: the
//! kill instant advances the schedd's crash epoch, so every job in
//! service when the window opens completes as `submit_lost` (the
//! broadcast jam), and the slot pool comes back full — overload
//! pressure cleared — when the window exits.

use crate::poll::{set_nonblocking, waker, Epoll, Event, TimerWheel, WakeRx, Waker};
use crate::proto::{frame_into, ErrCode, FrameBuf, Request, Response};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::{Series, SeriesSet, SimRng};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. `Default` gives a small, crashy schedd good
/// for exercising the disciplines quickly.
#[derive(Clone, Debug)]
pub struct GriddConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Event-loop count. `0`: use `EG_GRIDD_THREADS`, default 1 (one
    /// epoll loop comfortably serves thousands of connections).
    pub threads: usize,
    /// Concurrent-connection cap; beyond it new connections are
    /// dropped (the overloaded schedd refusing service).
    pub backlog: usize,
    /// Schedd service-slot pool (token bucket capacity).
    pub slots: u64,
    /// How long one submission holds a slot.
    pub service: Duration,
    /// Consecutive no-slot submissions that crash the schedd.
    pub crash_overloads: u32,
    /// How long a crashed schedd stays down (also the default for
    /// `schedd-kill` specs without an explicit downtime).
    pub downtime: Duration,
    /// Per-connection deadline: an idle or stalled peer is closed
    /// after this long without progress.
    pub deadline: Duration,
    /// File-server capacity in bytes; `put` beyond it reports ENOSPC.
    pub disk_bytes: usize,
    /// File-server service time of a `put` or a `get` that hits. The
    /// file server is a single-server FIFO per event loop: while one
    /// operation is in service, later ones queue behind it. Zero
    /// (the default) answers inline, the historical behavior.
    pub file_service: Duration,
    /// File-server service time of a `get` miss — the exhaustive
    /// directory scan a blind poll pays. With a nonzero miss cost a
    /// polling stampede congests the FIFO for everyone, which is what
    /// the coordinated-workload arena measures. Zero = inline.
    pub file_miss_service: Duration,
    /// The adversarial schedule (and physics constants).
    pub plan: FaultPlan,
}

impl Default for GriddConfig {
    fn default() -> GriddConfig {
        GriddConfig {
            listen: "127.0.0.1:0".into(),
            threads: 0,
            backlog: 4096,
            slots: 4,
            service: Duration::from_millis(150),
            crash_overloads: 6,
            downtime: Duration::from_millis(1500),
            deadline: Duration::from_secs(10),
            disk_bytes: 16 << 20,
            file_service: Duration::ZERO,
            file_miss_service: Duration::ZERO,
            plan: FaultPlan::default(),
        }
    }
}

impl GriddConfig {
    /// Resolve the event-loop count: explicit config, else
    /// `EG_GRIDD_THREADS`, else 1.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::env::var("EG_GRIDD_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(1)
    }
}

/// One half-open wall-clock window (relative to server start).
#[derive(Clone, Copy, Debug)]
struct Window {
    start: Duration,
    end: Duration,
}

impl Window {
    fn contains(&self, t: Duration) -> bool {
        t >= self.start && t < self.end
    }
}

/// The plan compiled onto the wall clock.
#[derive(Default)]
struct Windows {
    /// Forced schedd downtime (`schedd-kill`, truncated by restarts),
    /// coalesced into disjoint windows sorted by start.
    sched_down: Vec<Window>,
    /// `put` fails with ENOSPC.
    enospc: Vec<Window>,
    /// `df` estimates are skewed by this many slots.
    df_lie: Vec<(Window, i64)>,
    /// File server swallows requests without answering.
    black_hole: Vec<Window>,
    /// Connections reset with this probability before the reply.
    msg_loss: Vec<(Window, f64)>,
    /// Responses delayed by this much.
    latency: Vec<(Window, Duration)>,
}

const FOREVER: Duration = Duration::from_secs(u32::MAX as u64);

/// Every wall-clock occurrence of a (possibly repeating) spec. The
/// arithmetic runs in u128 microseconds and saturates, so a
/// long-period repeating spec can never overflow (`Duration * u32`
/// panics; this does not).
fn occurrences(spec: &FaultSpec) -> Vec<Duration> {
    let first = u128::from(spec.at.as_micros());
    let (period, count) = match spec.every {
        None => (0u128, 1u64),
        Some(every) => (every.to_std().as_micros(), u64::from(spec.count.max(1))),
    };
    (0..count)
        .map(|k| {
            let us = first.saturating_add(period.saturating_mul(u128::from(k)));
            Duration::from_micros(u64::try_from(us).unwrap_or(u64::MAX))
        })
        .collect()
}

/// Coalesce possibly-overlapping windows into a disjoint, sorted set.
fn coalesce(mut windows: Vec<Window>) -> Vec<Window> {
    windows.sort_by_key(|w| w.start);
    let mut out: Vec<Window> = Vec::with_capacity(windows.len());
    for w in windows {
        match out.last_mut() {
            Some(prev) if w.start <= prev.end => prev.end = prev.end.max(w.end),
            _ => out.push(w),
        }
    }
    out
}

impl Windows {
    fn compile(plan: &FaultPlan, default_downtime: Duration) -> Windows {
        let mut w = Windows::default();
        // schedd-kill opens a downtime window; the next schedd-restart
        // occurrence inside it closes it early. Collect all kill/
        // restart instants first, then pair them up in time order.
        let mut kills: Vec<(Duration, Duration)> = Vec::new(); // (at, downtime)
        let mut restarts: Vec<Duration> = Vec::new();
        // black-hole enables open a window closed by the next disable.
        let mut bh_events: Vec<(Duration, bool)> = Vec::new();
        for spec in &plan.specs {
            match &spec.kind {
                FaultKind::ScheddKill { downtime } => {
                    let d = downtime.map(|d| d.to_std()).unwrap_or(default_downtime);
                    for at in occurrences(spec) {
                        kills.push((at, d));
                    }
                }
                FaultKind::ScheddRestart => restarts.extend(occurrences(spec)),
                FaultKind::EnospcWindow { duration } => {
                    for at in occurrences(spec) {
                        w.enospc.push(Window {
                            start: at,
                            end: at + duration.to_std(),
                        });
                    }
                }
                FaultKind::FreeSpaceLie {
                    delta_bytes,
                    duration,
                } => {
                    for at in occurrences(spec) {
                        w.df_lie.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            *delta_bytes,
                        ));
                    }
                }
                FaultKind::ServerBlackHole { enable, .. } => {
                    for at in occurrences(spec) {
                        bh_events.push((at, *enable));
                    }
                }
                FaultKind::MsgLoss {
                    probability,
                    duration,
                    ..
                } => {
                    for at in occurrences(spec) {
                        w.msg_loss.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            *probability,
                        ));
                    }
                }
                FaultKind::LatencySpike {
                    extra, duration, ..
                } => {
                    for at in occurrences(spec) {
                        w.latency.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            extra.to_std(),
                        ));
                    }
                }
                // VM-side or construction-time physics — not windows.
                // `ClientKill` targets a sim client, which the live
                // daemon does not model either.
                FaultKind::ClockSkew { .. }
                | FaultKind::CmdFailFirst { .. }
                | FaultKind::ScheddCrashOnStarvation { .. }
                | FaultKind::EnospcAtCapacity { .. }
                | FaultKind::BlackHoleServers { .. }
                | FaultKind::ClientKill { .. } => {}
            }
        }
        restarts.sort();
        let mut down = Vec::with_capacity(kills.len());
        for (at, downtime) in kills {
            let natural_end = at.saturating_add(downtime);
            let end = restarts
                .iter()
                .copied()
                .find(|&r| r > at && r < natural_end)
                .unwrap_or(natural_end);
            down.push(Window { start: at, end });
        }
        w.sched_down = coalesce(down);
        bh_events.sort_by_key(|(at, _)| *at);
        let mut open: Option<Duration> = None;
        for (at, enable) in bh_events {
            match (enable, open) {
                (true, None) => open = Some(at),
                (false, Some(start)) => {
                    w.black_hole.push(Window { start, end: at });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            w.black_hole.push(Window {
                start,
                end: FOREVER,
            });
        }
        w
    }

    fn sched_forced_down(&self, t: Duration) -> bool {
        self.sched_down.iter().any(|w| w.contains(t))
    }

    /// How many forced kill windows have *opened* by `t`. Added to the
    /// overload crash count this makes the schedd's effective crash
    /// epoch: a job accepted before a kill and completing after it sees
    /// a different epoch and is accounted `submit_lost` — the same
    /// broadcast-jam accounting the simulator applies.
    fn forced_starts(&self, t: Duration) -> u64 {
        self.sched_down.iter().take_while(|w| w.start <= t).count() as u64
    }

    fn enospc_active(&self, t: Duration) -> bool {
        self.enospc.iter().any(|w| w.contains(t))
    }

    fn df_delta(&self, t: Duration) -> i64 {
        self.df_lie
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, d)| *d)
            .sum()
    }

    fn black_hole_until(&self, t: Duration) -> Option<Duration> {
        self.black_hole
            .iter()
            .find(|w| w.contains(t))
            .map(|w| w.end)
    }

    fn loss_probability(&self, t: Duration) -> f64 {
        self.msg_loss
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }

    fn extra_latency(&self, t: Duration) -> Duration {
        self.latency
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Per-client counters, dumped by the `stats` verb.
#[derive(Clone, Default)]
struct ClientCounters {
    submit_ok: u64,
    submit_busy: u64,
    submit_down: u64,
    submit_lost: u64,
    put_ok: u64,
    put_err: u64,
    get_ok: u64,
    get_err: u64,
    df_calls: u64,
    resets: u64,
}

/// Mutable daemon state shared by the event loops.
struct Shared {
    free_slots: u64,
    overload: u32,
    /// Overload-crash count; the *effective* epoch adds the number of
    /// forced kill windows opened so far (see `Windows::forced_starts`).
    crash_epoch: u64,
    down_until: Option<Instant>,
    /// True while the most recent `sched_down` check saw a forced kill
    /// window; the falling edge refills the slot pool.
    forced_active: bool,
    crashes: u64,
    jobs: u64,
    files: HashMap<String, Vec<u8>>,
    disk_used: usize,
    clients: HashMap<u32, ClientCounters>,
    rng: SimRng,
}

impl Shared {
    fn client(&mut self, id: u32) -> &mut ClientCounters {
        self.clients.entry(id).or_default()
    }
}

struct Inner {
    cfg: GriddConfig,
    max_conns: usize,
    windows: Windows,
    start: Instant,
    state: Mutex<Shared>,
    stop: AtomicBool,
    active_conns: AtomicUsize,
}

impl Inner {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The schedd's effective crash epoch right now: overload crashes
    /// plus forced kill-window starts. Monotonic; a submit completes
    /// `submit_ok` iff the epoch is unchanged across its service time.
    fn effective_epoch(&self, st: &Shared, elapsed: Duration) -> u64 {
        st.crash_epoch + self.windows.forced_starts(elapsed)
    }

    /// Is the schedd down at `elapsed`? Applies the lazy state
    /// transitions: a crash-driven downtime that has elapsed — or a
    /// forced kill window that has closed — restarts the schedd with a
    /// full slot pool and cleared overload pressure.
    fn sched_down(&self, st: &mut Shared, elapsed: Duration) -> bool {
        if self.windows.sched_forced_down(elapsed) {
            st.forced_active = true;
            return true;
        }
        if st.forced_active {
            // Forced window exited: restart with a full pool. (In-service
            // jobs accepted before the kill still return their slot when
            // their timer fires; the cap in `finish_submit` absorbs it.)
            st.forced_active = false;
            st.down_until = None;
            st.free_slots = self.cfg.slots;
            st.overload = 0;
            return false;
        }
        match st.down_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                // Downtime over: restart with a full slot pool.
                st.down_until = None;
                st.free_slots = self.cfg.slots;
                st.overload = 0;
                false
            }
            None => false,
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`GriddHandle::shutdown`].
pub struct GriddHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    wakers: Vec<Waker>,
    loops: Vec<JoinHandle<()>>,
}

/// A point-in-time copy of one client's counters (see the `stats`
/// verb for the JSON form).
#[derive(Clone, Debug, Default)]
pub struct ClientSnapshot {
    /// Client index the counters belong to.
    pub client: u32,
    /// Jobs accepted and serviced to completion.
    pub submit_ok: u64,
    /// Submissions refused for lack of a free slot.
    pub submit_busy: u64,
    /// Submissions rejected while the schedd was down.
    pub submit_down: u64,
    /// Jobs accepted but lost to a mid-service crash (overload-driven
    /// or a forced `schedd-kill` window opening).
    pub submit_lost: u64,
    /// Carrier-sense reads (`df`/`sense`).
    pub df_calls: u64,
    /// Connections reset by injected message loss.
    pub resets: u64,
    /// Successful file stores.
    pub put_ok: u64,
    /// Failed file stores (ENOSPC, windows included).
    pub put_err: u64,
    /// Successful file reads.
    pub get_ok: u64,
    /// Failed file reads.
    pub get_err: u64,
}

impl GriddHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time per-client counters plus the global schedd crash
    /// count — overload crashes *and* forced kill windows opened, the
    /// same accounting the simulator uses — the structured twin of the
    /// `stats` verb.
    pub fn snapshot(&self) -> (Vec<ClientSnapshot>, u64) {
        let elapsed = self.inner.elapsed();
        let st = self.inner.state.lock().expect("state lock");
        let mut clients: Vec<ClientSnapshot> = st
            .clients
            .iter()
            .map(|(&client, c)| ClientSnapshot {
                client,
                submit_ok: c.submit_ok,
                submit_busy: c.submit_busy,
                submit_down: c.submit_down,
                submit_lost: c.submit_lost,
                df_calls: c.df_calls,
                resets: c.resets,
                put_ok: c.put_ok,
                put_err: c.put_err,
                get_ok: c.get_ok,
                get_err: c.get_err,
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        let crashes = st.crashes + self.inner.windows.forced_starts(elapsed);
        (clients, crashes)
    }

    /// Stop every event loop and join it. In-flight connections are
    /// interrupted (their deferred operations are dropped), so
    /// shutdown completes within a bounded grace period no matter how
    /// stalled or mid-service the peers are.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
        for t in self.loops.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the event loops, and serve until [`GriddHandle::shutdown`].
pub fn start(cfg: GriddConfig) -> io::Result<GriddHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // std's bind hard-codes a 128-entry kernel accept queue; a
    // thousand-client arena overflows that between two poll rounds.
    let _ = crate::poll::widen_backlog(listener.as_raw_fd(), 4096);
    // The plan's starvation physics, when present, bounds the
    // concurrent-connection cap the way the sim's schedd backlog
    // bounds submissions.
    let max_conns = cfg
        .plan
        .crash_physics()
        .map(|(_, backlog)| backlog.max(1))
        .unwrap_or(cfg.backlog);
    let threads = cfg.resolved_threads();
    let windows = Windows::compile(&cfg.plan, cfg.downtime);
    let rng = cfg.plan.rng();
    let inner = Arc::new(Inner {
        max_conns,
        windows,
        start: Instant::now(),
        state: Mutex::new(Shared {
            free_slots: cfg.slots,
            overload: 0,
            crash_epoch: 0,
            down_until: None,
            forced_active: false,
            crashes: 0,
            jobs: 0,
            files: HashMap::new(),
            disk_used: 0,
            clients: HashMap::new(),
            rng,
        }),
        cfg,
        stop: AtomicBool::new(false),
        active_conns: AtomicUsize::new(0),
    });

    let mut wakers = Vec::with_capacity(threads);
    let mut loops = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (wake_tx, wake_rx) = waker()?;
        let lst = listener.try_clone()?;
        let lp = EventLoop::new(inner.clone(), lst, wake_rx)?;
        wakers.push(wake_tx);
        loops.push(std::thread::spawn(move || lp.run()));
    }

    Ok(GriddHandle {
        addr,
        inner,
        wakers,
        loops,
    })
}

// ------------------------------------------------------------ event loop

/// Token values reserved for non-connection fds.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// A deferred operation owned by one connection. At most one is
/// pending per connection; frame parsing pauses (and read interest
/// drops, for natural TCP backpressure) until it resolves.
enum Pending {
    /// Nothing deferred; frames are processed as they complete.
    None,
    /// An injected latency spike holds the decoded request.
    Stall {
        req: Request,
        /// Server time the request arrived (fault windows are judged
        /// at arrival, exactly like the blocking server did).
        elapsed: Duration,
    },
    /// A submit holds a service slot; the response is written when the
    /// service timer fires.
    Service,
    /// A black-holed file verb: the timer closes the connection
    /// without ever answering.
    Swallow,
}

/// Timer-wheel completions.
enum TimerEv {
    /// Per-connection deadline patrol.
    Deadline { idx: usize, gen: u64 },
    /// Latency stall elapsed: process the held request.
    Resume { idx: usize, gen: u64 },
    /// A submit's service time elapsed. Fires even if the connection
    /// died mid-service: the slot must return and the job must be
    /// accounted either way.
    ServiceDone {
        idx: usize,
        gen: u64,
        client: u32,
        epoch: u64,
        job_id: String,
    },
    /// Black-hole swallow: close without answering.
    Swallow { idx: usize, gen: u64 },
    /// A queued file-server operation finished service: deliver its
    /// precomputed response (dropped if the connection died).
    FileDone {
        idx: usize,
        gen: u64,
        resp: Response,
    },
}

/// One connection's state: incremental reader, partial-progress
/// writer, and the deferred-operation slot.
struct Conn {
    stream: TcpStream,
    gen: u64,
    frames: FrameBuf,
    out: Vec<u8>,
    out_pos: usize,
    pending: Pending,
    last_activity: Instant,
    want_write: bool,
    /// Close once the outgoing buffer drains (protocol error path).
    closing: bool,
}

struct EventLoop {
    inner: Arc<Inner>,
    epoll: Epoll,
    listener: TcpListener,
    wake: WakeRx,
    conns: Vec<Option<Conn>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    timers: TimerWheel<TimerEv>,
    /// The file server's FIFO horizon (per event loop): server time
    /// until which the file server is busy with earlier operations.
    file_busy_until: Duration,
}

impl EventLoop {
    fn new(inner: Arc<Inner>, listener: TcpListener, wake: WakeRx) -> io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        epoll.add(wake.fd(), TOKEN_WAKER, true, false)?;
        let timers = TimerWheel::new(inner.start);
        Ok(EventLoop {
            inner,
            epoll,
            listener,
            wake,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            timers,
            file_busy_until: Duration::ZERO,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<TimerEv> = Vec::new();
        loop {
            if self.inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            self.timers.advance(now, &mut fired);
            for ev in fired.drain(..) {
                self.on_timer(ev);
            }
            let timeout = self
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()));
            if self.epoll.wait(&mut events, timeout).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.on_accept_ready(),
                    TOKEN_WAKER => self.wake.drain(),
                    idx => {
                        let idx = idx as usize;
                        if ev.writable {
                            self.try_flush(idx);
                        }
                        if ev.readable {
                            self.on_readable(idx);
                        }
                        if ev.hangup && !ev.readable {
                            // Nothing left to read and the peer is
                            // gone: reap now rather than at deadline.
                            self.close_conn(idx);
                        }
                    }
                }
            }
        }
        // Teardown: interrupt every in-flight connection.
        for idx in 0..self.conns.len() {
            self.close_conn(idx);
        }
    }

    // ---------------------------------------------------------- accept

    fn on_accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Backpressure: beyond the cap the connection is
                    // dropped, which the client observes as a reset —
                    // the overloaded schedd refusing service.
                    let prev = self.inner.active_conns.fetch_add(1, Ordering::SeqCst);
                    if prev >= self.inner.max_conns {
                        self.inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                        drop(stream);
                        continue;
                    }
                    if self.register(stream).is_err() {
                        self.inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) -> io::Result<()> {
        let _ = stream.set_nodelay(true);
        set_nonblocking(stream.as_raw_fd())?;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        self.gens[idx] += 1;
        let gen = self.gens[idx];
        let now = Instant::now();
        self.epoll
            .add(stream.as_raw_fd(), idx as u64, true, false)?;
        self.conns[idx] = Some(Conn {
            stream,
            gen,
            frames: FrameBuf::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: Pending::None,
            last_activity: now,
            want_write: false,
            closing: false,
        });
        self.timers.schedule(
            now + self.inner.cfg.deadline,
            TimerEv::Deadline { idx, gen },
        );
        Ok(())
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            drop(conn);
            self.free.push(idx);
            self.inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn conn_live(&self, idx: usize, gen: u64) -> bool {
        matches!(self.conns.get(idx), Some(Some(c)) if c.gen == gen)
    }

    // ------------------------------------------------------------ read

    fn on_readable(&mut self, idx: usize) {
        let mut scratch = [0u8; 16 * 1024];
        let dead = {
            let Some(Some(conn)) = self.conns.get_mut(idx) else {
                return;
            };
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => break true,
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.frames.extend(&scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break true,
                }
            }
        };
        if dead {
            self.close_conn(idx);
            return;
        }
        self.drain_frames(idx);
    }

    /// Decode and process every complete frame, stopping while a
    /// deferred operation is pending (the remainder stays buffered;
    /// read interest drops so TCP backpressure reaches the peer).
    fn drain_frames(&mut self, idx: usize) {
        loop {
            let frame = {
                let Some(Some(conn)) = self.conns.get_mut(idx) else {
                    return;
                };
                if conn.closing || !matches!(conn.pending, Pending::None) {
                    break;
                }
                conn.frames.next_frame()
            };
            match frame {
                Ok(Some(payload)) => match Request::decode(&payload) {
                    Ok(req) => {
                        let elapsed = self.inner.elapsed();
                        self.process_request(idx, req, elapsed);
                    }
                    Err(e) => {
                        self.protocol_error(idx, &e.to_string());
                        break;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    self.protocol_error(idx, &e.to_string());
                    break;
                }
            }
        }
        self.update_interest(idx);
    }

    /// Answer a malformed frame with `bad`, then close once the reply
    /// drains (the closing flag is raised *before* the flush so a fast
    /// socket cannot race past it).
    fn protocol_error(&mut self, idx: usize, msg: &str) {
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };
        conn.closing = true;
        frame_into(
            &mut conn.out,
            &Response::Err {
                code: ErrCode::Bad,
                msg: msg.to_string(),
            }
            .encode(),
        );
        self.try_flush(idx);
    }

    // --------------------------------------------------------- process

    /// Stage one: apply the latency-spike window. A stalled request
    /// parks in [`Pending::Stall`] until its [`TimerEv::Resume`] fires.
    fn process_request(&mut self, idx: usize, req: Request, elapsed: Duration) {
        let extra = self.inner.windows.extra_latency(elapsed);
        if !extra.is_zero() {
            let Some(Some(conn)) = self.conns.get_mut(idx) else {
                return;
            };
            let gen = conn.gen;
            conn.pending = Pending::Stall { req, elapsed };
            self.timers.schedule(
                Instant::now() + extra.min(self.inner.cfg.deadline),
                TimerEv::Resume { idx, gen },
            );
            return;
        }
        self.process_now(idx, req, elapsed);
    }

    /// Stage two: message loss, then the verb itself.
    fn process_now(&mut self, idx: usize, req: Request, elapsed: Duration) {
        // Injected loss resets the connection *instead of* replying —
        // a dropped message.
        let p = self.inner.windows.loss_probability(elapsed);
        if p > 0.0 {
            let lost = {
                let mut st = self.inner.state.lock().expect("state lock");
                let lost = st.rng.chance(p);
                if lost {
                    if let Some(c) = req.client() {
                        st.client(c).resets += 1;
                    }
                }
                lost
            };
            if lost {
                self.close_conn(idx);
                return;
            }
        }
        match req {
            Request::Submit { client, job } => self.submit(idx, client, &job, elapsed),
            Request::Put { client, name, data } => {
                self.file_put(idx, client, &name, &data, elapsed);
            }
            Request::Get { client, name } => self.file_get(idx, client, &name, elapsed),
            Request::Stat { client, name } => {
                let resp = self.file_stat(client, &name);
                self.respond(idx, &resp);
            }
            Request::Df { client } => {
                let resp = self.df(client, elapsed);
                self.respond(idx, &resp);
            }
            Request::Stats => {
                let resp = Response::Stats {
                    json: stats_json(&self.inner),
                };
                self.respond(idx, &resp);
            }
        }
    }

    fn submit(&mut self, idx: usize, client: u32, job: &str, elapsed: Duration) {
        enum Outcome {
            Reject(Response),
            Accept { epoch: u64, job_id: String },
        }
        let outcome = {
            let inner = self.inner.clone();
            let mut st = inner.state.lock().expect("state lock");
            if inner.sched_down(&mut st, elapsed) {
                st.client(client).submit_down += 1;
                Outcome::Reject(Response::Err {
                    code: ErrCode::Down,
                    msg: "schedd is down".into(),
                })
            } else if st.free_slots == 0 {
                st.overload += 1;
                if st.overload >= inner.cfg.crash_overloads {
                    // The stampede starved the schedd: it crashes, every
                    // in-flight job is lost, and the service goes dark.
                    st.overload = 0;
                    st.crash_epoch += 1;
                    st.crashes += 1;
                    st.down_until = Some(Instant::now() + inner.cfg.downtime);
                    st.client(client).submit_down += 1;
                    Outcome::Reject(Response::Err {
                        code: ErrCode::Down,
                        msg: "schedd crashed under load".into(),
                    })
                } else {
                    st.client(client).submit_busy += 1;
                    Outcome::Reject(Response::Err {
                        code: ErrCode::Busy,
                        msg: "no free service slots".into(),
                    })
                }
            } else {
                st.free_slots -= 1;
                // A grant relieves pressure but does not erase it:
                // sustained overload still accumulates toward a crash
                // even while slots churn.
                st.overload = st.overload.saturating_sub(1);
                st.jobs += 1;
                let epoch = inner.effective_epoch(&st, elapsed);
                Outcome::Accept {
                    epoch,
                    job_id: format!("{job}@{}", st.jobs),
                }
            }
        };
        match outcome {
            Outcome::Reject(resp) => self.respond(idx, &resp),
            Outcome::Accept { epoch, job_id } => {
                // Hold the slot for the service time — as a timer
                // completion, not a sleeping worker. This is where
                // concurrent aggressive clients collide on a real clock.
                let gen = match self.conns.get_mut(idx) {
                    Some(Some(conn)) => {
                        conn.pending = Pending::Service;
                        conn.gen
                    }
                    // Connection already gone: the slot is still held;
                    // schedule the completion against a generation that
                    // can never match so the accounting happens anyway.
                    _ => 0,
                };
                self.timers.schedule(
                    Instant::now() + self.inner.cfg.service,
                    TimerEv::ServiceDone {
                        idx,
                        gen,
                        client,
                        epoch,
                        job_id,
                    },
                );
                self.update_interest(idx);
            }
        }
    }

    fn df(&mut self, client: u32, elapsed: Duration) -> Response {
        let mut st = self.inner.state.lock().expect("state lock");
        st.client(client).df_calls += 1;
        let free = if self.inner.sched_down(&mut st, elapsed) {
            0
        } else {
            st.free_slots
        };
        // An active free-space lie skews the estimate — the attack on
        // carrier sense itself.
        let delta = self.inner.windows.df_delta(elapsed);
        let lied = (free as i64).saturating_add(delta).max(0) as u64;
        Response::Free { slots: lied }
    }

    /// Black-hole a file verb: schedule the swallow (bounded by the
    /// connection deadline so the client's wait is bounded too) and
    /// never answer. Returns true when the verb was swallowed.
    fn black_hole(&mut self, idx: usize, elapsed: Duration) -> bool {
        if let Some(end) = self.inner.windows.black_hole_until(elapsed) {
            let remaining = end.saturating_sub(elapsed);
            let Some(Some(conn)) = self.conns.get_mut(idx) else {
                return true;
            };
            let gen = conn.gen;
            conn.pending = Pending::Swallow;
            self.timers.schedule(
                Instant::now() + remaining.min(self.inner.cfg.deadline),
                TimerEv::Swallow { idx, gen },
            );
            return true;
        }
        false
    }

    fn file_put(&mut self, idx: usize, client: u32, name: &str, data: &[u8], elapsed: Duration) {
        if self.black_hole(idx, elapsed) {
            return;
        }
        let resp = {
            let mut st = self.inner.state.lock().expect("state lock");
            if self.inner.windows.enospc_active(elapsed) {
                st.client(client).put_err += 1;
                Response::Err {
                    code: ErrCode::Enospc,
                    msg: "no space left on device (fault window)".into(),
                }
            } else {
                let old = st.files.get(name).map(|d| d.len()).unwrap_or(0);
                let used_after = st.disk_used - old + data.len();
                if used_after > self.inner.cfg.disk_bytes {
                    st.client(client).put_err += 1;
                    Response::Err {
                        code: ErrCode::Enospc,
                        msg: "no space left on device".into(),
                    }
                } else {
                    st.disk_used = used_after;
                    st.files.insert(name.to_string(), data.to_vec());
                    st.client(client).put_ok += 1;
                    Response::Ok {
                        info: format!("{} bytes", data.len()),
                    }
                }
            }
        };
        self.finish_file(idx, resp, self.inner.cfg.file_service, elapsed);
    }

    fn file_get(&mut self, idx: usize, client: u32, name: &str, elapsed: Duration) {
        if self.black_hole(idx, elapsed) {
            return;
        }
        let resp = {
            let mut st = self.inner.state.lock().expect("state lock");
            match st.files.get(name).cloned() {
                Some(data) => {
                    st.client(client).get_ok += 1;
                    (Response::Data { data }, self.inner.cfg.file_service)
                }
                None => {
                    st.client(client).get_err += 1;
                    (
                        Response::Err {
                            code: ErrCode::NotFound,
                            msg: format!("no such file: {name}"),
                        },
                        self.inner.cfg.file_miss_service,
                    )
                }
            }
        };
        self.finish_file(idx, resp.0, resp.1, elapsed);
    }

    /// `stat` — the file server's carrier-sense channel: does the file
    /// exist right now? Answered from the directory cache, never
    /// queued behind file service and never black-holed, so sensing
    /// stays free while committed work pays the FIFO. Counted with the
    /// other carrier-sense reads.
    fn file_stat(&mut self, client: u32, name: &str) -> Response {
        let mut st = self.inner.state.lock().expect("state lock");
        st.client(client).df_calls += 1;
        let exists = u64::from(st.files.contains_key(name));
        Response::Free { slots: exists }
    }

    /// Deliver a file-server response after its service time: the file
    /// server is a single-server FIFO, so the operation starts when
    /// every earlier one finished and holds the server for `dur`. The
    /// zero-cost idle path answers inline (the historical behavior).
    fn finish_file(&mut self, idx: usize, resp: Response, dur: Duration, elapsed: Duration) {
        if dur.is_zero() && self.file_busy_until <= elapsed {
            self.respond(idx, &resp);
            return;
        }
        let start = self.file_busy_until.max(elapsed);
        let done = start + dur;
        self.file_busy_until = done;
        let gen = match self.conns.get(idx) {
            Some(Some(conn)) => conn.gen,
            _ => 0,
        };
        self.timers.schedule(
            Instant::now() + done.saturating_sub(elapsed),
            TimerEv::FileDone { idx, gen, resp },
        );
    }

    // ---------------------------------------------------------- timers

    fn on_timer(&mut self, ev: TimerEv) {
        match ev {
            TimerEv::Deadline { idx, gen } => self.on_deadline(idx, gen),
            TimerEv::Resume { idx, gen } => self.on_resume(idx, gen),
            TimerEv::FileDone { idx, gen, resp } => {
                if self.conn_live(idx, gen) {
                    self.respond(idx, &resp);
                }
            }
            TimerEv::Swallow { idx, gen } => {
                if self.conn_live(idx, gen) {
                    self.close_conn(idx);
                }
            }
            TimerEv::ServiceDone {
                idx,
                gen,
                client,
                epoch,
                job_id,
            } => self.on_service_done(idx, gen, client, epoch, &job_id),
        }
    }

    fn on_deadline(&mut self, idx: usize, gen: u64) {
        if !self.conn_live(idx, gen) {
            return;
        }
        let deadline = self.inner.cfg.deadline;
        let (rearm_at, close) = {
            let conn = self.conns[idx].as_ref().expect("live conn");
            if !matches!(conn.pending, Pending::None) {
                // Server-side work in progress; the peer is allowed to
                // wait through it.
                (Instant::now() + deadline, false)
            } else {
                let due = conn.last_activity + deadline;
                if Instant::now() >= due {
                    (due, true)
                } else {
                    (due, false)
                }
            }
        };
        if close {
            self.close_conn(idx);
            return;
        }
        self.timers
            .schedule(rearm_at, TimerEv::Deadline { idx, gen });
    }

    fn on_resume(&mut self, idx: usize, gen: u64) {
        if !self.conn_live(idx, gen) {
            return;
        }
        let conn = self.conns[idx].as_mut().expect("live conn");
        let pending = std::mem::replace(&mut conn.pending, Pending::None);
        if let Pending::Stall { req, elapsed } = pending {
            self.process_now(idx, req, elapsed);
            // The stalled verb may itself have deferred again (service
            // hold, swallow); otherwise resume frame processing.
            self.drain_frames(idx);
        } else {
            // Anything else here is a logic error; restore it.
            self.conns[idx].as_mut().expect("live conn").pending = pending;
        }
    }

    fn on_service_done(&mut self, idx: usize, gen: u64, client: u32, epoch: u64, job_id: &str) {
        // The slot returns and the job is accounted whether or not the
        // submitter's connection survived its own service time.
        let resp = {
            let inner = self.inner.clone();
            let mut st = inner.state.lock().expect("state lock");
            st.free_slots = (st.free_slots + 1).min(inner.cfg.slots);
            let now_epoch = inner.effective_epoch(&st, inner.elapsed());
            if now_epoch != epoch {
                // A crash (overload or forced kill window) happened
                // while this job was in service: it is gone.
                st.client(client).submit_lost += 1;
                Response::Err {
                    code: ErrCode::Down,
                    msg: "job lost in schedd crash".into(),
                }
            } else {
                st.client(client).submit_ok += 1;
                Response::Ok {
                    info: job_id.to_string(),
                }
            }
        };
        if self.conn_live(idx, gen) {
            let conn = self.conns[idx].as_mut().expect("live conn");
            if matches!(conn.pending, Pending::Service) {
                conn.pending = Pending::None;
            }
            self.respond(idx, &resp);
            self.drain_frames(idx);
        }
    }

    // ----------------------------------------------------------- write

    /// Queue a response frame and push as much as the socket takes.
    fn respond(&mut self, idx: usize, resp: &Response) {
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };
        frame_into(&mut conn.out, &resp.encode());
        self.try_flush(idx);
    }

    fn try_flush(&mut self, idx: usize) {
        enum Flush {
            Drained(bool), // payload: close-after-drain flag
            Blocked,
            Dead,
        }
        let res = {
            let Some(Some(conn)) = self.conns.get_mut(idx) else {
                return;
            };
            loop {
                if conn.out_pos >= conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    conn.want_write = false;
                    break Flush::Drained(conn.closing);
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => break Flush::Dead,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        conn.want_write = true;
                        break Flush::Blocked;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Flush::Dead,
                }
            }
        };
        match res {
            Flush::Dead => self.close_conn(idx),
            Flush::Blocked => self.update_interest(idx),
            Flush::Drained(true) => self.close_conn(idx),
            Flush::Drained(false) => self.update_interest(idx),
        }
    }

    /// Reconcile epoll interest with the connection's state: read while
    /// no operation is deferred, write while bytes are queued.
    fn update_interest(&mut self, idx: usize) {
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };
        let read = matches!(conn.pending, Pending::None) && !conn.closing;
        let write = conn.want_write;
        let _ = self
            .epoll
            .modify(conn.stream.as_raw_fd(), idx as u64, read, write);
    }
}

/// Render the counters as a `simgrid::metrics::SeriesSet` — the same
/// JSON shape every figure emits, so downstream tooling needs nothing
/// new. One series per counter, one point per client `(client, count)`;
/// the `schedd_crashes` series carries the global crash count at x=0.
fn stats_json(inner: &Inner) -> String {
    let elapsed = inner.elapsed();
    let st = inner.state.lock().expect("state lock");
    let mut set = SeriesSet::new("gridd per-client counters", "client", "count");
    let mut ids: Vec<u32> = st.clients.keys().copied().collect();
    ids.sort_unstable();
    type Getter = fn(&ClientCounters) -> u64;
    let counters: [(&str, Getter); 10] = [
        ("submit_ok", |c| c.submit_ok),
        ("submit_busy", |c| c.submit_busy),
        ("submit_down", |c| c.submit_down),
        ("submit_lost", |c| c.submit_lost),
        ("put_ok", |c| c.put_ok),
        ("put_err", |c| c.put_err),
        ("get_ok", |c| c.get_ok),
        ("get_err", |c| c.get_err),
        ("df_calls", |c| c.df_calls),
        ("resets", |c| c.resets),
    ];
    for (name, get) in counters {
        let mut s = Series::new(name);
        for &id in &ids {
            s.push_xy(id as f64, get(&st.clients[&id]) as f64);
        }
        set.add(s);
    }
    let mut crashes = Series::new("schedd_crashes");
    crashes.push_xy(
        0.0,
        (st.crashes + inner.windows.forced_starts(elapsed)) as f64,
    );
    set.add(crashes);
    set.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::{Dur, Time};

    fn plan_with(specs: Vec<FaultSpec>) -> FaultPlan {
        let mut p = FaultPlan::new(7);
        p.specs = specs;
        p
    }

    #[test]
    fn windows_expand_repeats_and_pair_black_holes() {
        let plan = plan_with(vec![
            FaultSpec::repeating(
                Time::from_secs(1),
                Dur::from_secs(10),
                3,
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(2)),
                },
            ),
            FaultSpec::once(
                Time::from_secs(5),
                FaultKind::ServerBlackHole {
                    server: "yyy".into(),
                    enable: true,
                },
            ),
            FaultSpec::once(
                Time::from_secs(8),
                FaultKind::ServerBlackHole {
                    server: "yyy".into(),
                    enable: false,
                },
            ),
        ]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.sched_down.len(), 3);
        assert!(w.sched_forced_down(Duration::from_secs(12)));
        assert!(!w.sched_forced_down(Duration::from_secs(4)));
        assert_eq!(w.black_hole.len(), 1);
        assert_eq!(
            w.black_hole_until(Duration::from_secs(6)),
            Some(Duration::from_secs(8))
        );
        assert_eq!(w.black_hole_until(Duration::from_secs(9)), None);
    }

    #[test]
    fn restart_truncates_kill_window() {
        let plan = plan_with(vec![
            FaultSpec::once(
                Time::from_secs(1),
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(10)),
                },
            ),
            FaultSpec::once(Time::from_secs(3), FaultKind::ScheddRestart),
        ]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert!(w.sched_forced_down(Duration::from_secs(2)));
        assert!(!w.sched_forced_down(Duration::from_secs(4)));
    }

    #[test]
    fn unterminated_black_hole_stays_open() {
        let plan = plan_with(vec![FaultSpec::once(
            Time::from_secs(2),
            FaultKind::ServerBlackHole {
                server: "yyy".into(),
                enable: true,
            },
        )]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert!(w.black_hole_until(Duration::from_secs(1)).is_none());
        assert!(w.black_hole_until(Duration::from_secs(1000)).is_some());
    }

    #[test]
    fn lie_windows_sum_and_clamp() {
        let plan = plan_with(vec![FaultSpec::once(
            Time::from_secs(0),
            FaultKind::FreeSpaceLie {
                delta_bytes: -100,
                duration: Dur::from_secs(5),
            },
        )]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.df_delta(Duration::from_secs(1)), -100);
        assert_eq!(w.df_delta(Duration::from_secs(6)), 0);
    }

    #[test]
    fn occurrences_saturate_instead_of_panicking() {
        // A long-period repeating spec whose later occurrences would
        // overflow `Duration * u32` (the old arithmetic panicked here).
        let spec = FaultSpec::repeating(
            Time::from_micros(u64::MAX - 10),
            Dur::from_micros(u64::MAX / 2),
            1000,
            FaultKind::ScheddRestart,
        );
        let all = occurrences(&spec);
        assert_eq!(all.len(), 1000);
        assert_eq!(all[0], Duration::from_micros(u64::MAX - 10));
        // Every subsequent occurrence saturates at the u64 ceiling.
        assert_eq!(*all.last().unwrap(), Duration::from_micros(u64::MAX));
        assert!(all.windows(2).all(|p| p[0] <= p[1]), "monotonic");
    }

    #[test]
    fn occurrences_boundary_is_exact_below_saturation() {
        let spec = FaultSpec::repeating(
            Time::from_secs(10),
            Dur::from_secs(3600),
            100_000,
            FaultKind::ScheddRestart,
        );
        let all = occurrences(&spec);
        assert_eq!(all.len(), 100_000);
        assert_eq!(all[99_999], Duration::from_secs(10 + 3600 * 99_999));
    }

    #[test]
    fn forced_starts_counts_window_openings() {
        let plan = plan_with(vec![FaultSpec::repeating(
            Time::from_secs(1),
            Dur::from_secs(10),
            3,
            FaultKind::ScheddKill {
                downtime: Some(Dur::from_secs(2)),
            },
        )]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.forced_starts(Duration::from_millis(500)), 0);
        assert_eq!(w.forced_starts(Duration::from_secs(1)), 1);
        assert_eq!(w.forced_starts(Duration::from_secs(5)), 1);
        assert_eq!(w.forced_starts(Duration::from_secs(11)), 2);
        assert_eq!(w.forced_starts(Duration::from_secs(100)), 3);
    }

    #[test]
    fn overlapping_kill_windows_coalesce() {
        let plan = plan_with(vec![
            FaultSpec::once(
                Time::from_secs(1),
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(5)),
                },
            ),
            FaultSpec::once(
                Time::from_secs(3),
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(5)),
                },
            ),
        ]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.sched_down.len(), 1, "overlap coalesces into one window");
        assert!(w.sched_forced_down(Duration::from_secs(7)));
        assert!(!w.sched_forced_down(Duration::from_secs(8)));
        // One coalesced window = one broadcast jam.
        assert_eq!(w.forced_starts(Duration::from_secs(10)), 1);
    }
}
